"""Figure 5 — GreedyMR any-time convergence.

Runs GreedyMR on all three datasets, records the value after every
MapReduce iteration, and reports the fraction of iterations needed to
reach 95% of the final value — the paper measures 28.91% (flickr-small),
44.18% (flickr-large), and 29.35% (yahoo-answers).
"""

from repro.experiments import anytime_experiment

from .conftest import run_once


def test_fig5_greedymr_anytime_convergence(benchmark, report):
    rows, text = run_once(benchmark, lambda: anytime_experiment())
    report(text)
    assert len(rows) == 3
    for row in rows:
        # convergence happens well before the end, as in the paper
        assert 0.0 < row["fraction measured"] <= 0.7
        assert row["iterations"] >= 3
