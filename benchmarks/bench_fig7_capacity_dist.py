"""Figure 7 — the distribution of capacities.

Prints capacity distributions per dataset under the §4/§6 formulas.
Expected shapes: heavy-tailed consumer capacities everywhere (power-law
activity × α); heavy-tailed flickr item capacities (favorites), with
flickr-large markedly more skewed than flickr-small (the paper's
explanation for its violation/quality anomalies); constant question
capacities on yahoo-answers.
"""

from repro.experiments import capacity_distribution_experiment

from .conftest import run_once


def test_fig7_capacity_distributions(benchmark, report):
    data, text = run_once(
        benchmark, lambda: capacity_distribution_experiment()
    )
    report(text)
    ya_items = data["yahoo-answers"]["items"]["summary"]
    assert ya_items["min"] == ya_items["max"]  # constant b(q)
    small = data["flickr-small"]["items"]["summary"]
    large = data["flickr-large"]["items"]["summary"]
    assert large["top1_share"] > small["top1_share"]  # skew ordering
    for name in data:
        consumers = data[name]["consumers"]["summary"]
        assert consumers["max"] > consumers["p50"]  # heavy tail
