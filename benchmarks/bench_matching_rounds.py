"""Full-state vs delta iteration benchmark for the matching layer.

Runs GreedyMR (the Figure-5 any-time workload) and StackMR on a
flickr-small Problem-1 instance on both iteration planes and records
the numbers to ``benchmarks/BENCH_matching.json``:

* **per-round** wall-clock and shuffled records/bytes for GreedyMR —
  the delta plane's frontier shrinks as the Figure-5 curve flattens,
  the full-state plane re-ships everything every round;
* **totals** — wall-clock (best of N), shuffled records, shuffled
  bytes (keys + pickled values, from a separate metered run), and the
  delta plane's quiescent ratio;
* the **speedup ratios** the CI smoke gates on.

The two planes are asserted bit-identical (matchings, value history,
rounds) before anything is timed or written — a benchmark of a wrong
answer is worthless.

Usage::

    python benchmarks/bench_matching_rounds.py             # full run
    python benchmarks/bench_matching_rounds.py --quick     # small scale
    python benchmarks/bench_matching_rounds.py --write     # update JSON
    python benchmarks/bench_matching_rounds.py --quick --check-regression

``--check-regression`` (the CI smoke) gates on the **shuffle ratio** —
full-state shuffled records over delta shuffled records — against the
committed JSON, failing on a >10% drop.  Unlike wall-clock (the quick
runs are tens of milliseconds, where scheduling noise dominates), the
shuffle ratio is deterministic: it moves only when the delta protocol
itself ships more records, which is exactly the regression the gate
exists to catch.  Wall-clock speedups are still measured and recorded
for the humans.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.datasets import load_dataset  # noqa: E402
from repro.mapreduce import Counters, MapReduceRuntime  # noqa: E402
from repro.matching import (  # noqa: E402
    greedy_mr_b_matching,
    stack_mr_b_matching,
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_matching.json"
)


def _flickr_graph(scale: float, sigma: float):
    dataset = load_dataset("flickr-small", seed=1, scale=scale)
    return dataset.graph(sigma=sigma, alpha=2.0)


def _best_of(repeats: int, fn) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _greedy_round_trace(graph, delta: bool) -> Dict:
    """One instrumented run: per-round wall/records/bytes + result."""
    runtime = MapReduceRuntime(counters=Counters(), meter_bytes=True)
    counters = runtime.counters
    rounds: List[Dict] = []
    previous = {"records": 0, "bytes": 0, "time": time.perf_counter()}

    def on_round_end(_state, _round_number):
        now = time.perf_counter()
        records = counters.get("runtime", "shuffle.records")
        shuffled = counters.get("greedy-round", "shuffle.bytes")
        rounds.append(
            {
                "seconds": round(now - previous["time"], 6),
                "shuffled_records": records - previous["records"],
                "shuffled_bytes": shuffled - previous["bytes"],
            }
        )
        previous.update(
            {"records": records, "bytes": shuffled, "time": now}
        )

    result = greedy_mr_b_matching(
        graph, runtime=runtime, delta=delta, on_round_end=on_round_end
    )
    quiescent = counters.get("runtime", "iteration.quiescent_records")
    resident = counters.get("runtime", "iteration.resident_records")
    return {
        "result": result,
        "rounds": rounds,
        "shuffled_records": counters.get("runtime", "shuffle.records"),
        "shuffled_bytes": counters.get("greedy-round", "shuffle.bytes"),
        "quiescent_ratio": round(quiescent / resident, 4)
        if resident
        else 0.0,
    }


def bench_greedy(scale: float, sigma: float, repeats: int) -> Dict:
    graph = _flickr_graph(scale, sigma)
    traces = {
        delta: _greedy_round_trace(graph, delta)
        for delta in (False, True)
    }
    full, lean = traces[False]["result"], traces[True]["result"]
    assert sorted(full.matching.edges()) == sorted(lean.matching.edges())
    assert full.value_history == lean.value_history
    assert (full.rounds, full.mr_jobs) == (lean.rounds, lean.mr_jobs)

    timings = {}
    for delta in (False, True):
        timings[delta] = _best_of(
            repeats,
            lambda delta=delta: greedy_mr_b_matching(
                graph,
                runtime=MapReduceRuntime(counters=Counters()),
                delta=delta,
            ),
        )
    full_trace, lean_trace = traces[False], traces[True]
    return {
        "workload": "flickr-small greedy_mr (Figure 5)",
        "scale": scale,
        "sigma": sigma,
        "nodes": len(graph.capacities()),
        "edges": graph.num_edges,
        "rounds": full.rounds,
        "matching_value": full.value,
        "full_seconds": round(timings[False], 4),
        "delta_seconds": round(timings[True], 4),
        "speedup": round(timings[False] / timings[True], 2),
        "full_shuffled_records": full_trace["shuffled_records"],
        "delta_shuffled_records": lean_trace["shuffled_records"],
        "full_shuffled_bytes": full_trace["shuffled_bytes"],
        "delta_shuffled_bytes": lean_trace["shuffled_bytes"],
        "shuffle_ratio": round(
            full_trace["shuffled_records"]
            / max(1, lean_trace["shuffled_records"]),
            2,
        ),
        "quiescent_ratio": lean_trace["quiescent_ratio"],
        "per_round": {
            "full": full_trace["rounds"],
            "delta": lean_trace["rounds"],
        },
    }


def bench_stack(scale: float, sigma: float, repeats: int) -> Dict:
    graph = _flickr_graph(scale, sigma)
    results = {}
    counters = {}
    for delta in (False, True):
        runtime = MapReduceRuntime(counters=Counters())
        results[delta] = stack_mr_b_matching(
            graph, seed=7, runtime=runtime, delta=delta
        )
        counters[delta] = runtime.counters
    full, lean = results[False], results[True]
    assert sorted(full.matching.edges()) == sorted(lean.matching.edges())
    assert full.duals == lean.duals
    assert (full.rounds, full.mr_jobs) == (lean.rounds, lean.mr_jobs)
    timings = {}
    for delta in (False, True):
        timings[delta] = _best_of(
            repeats,
            lambda delta=delta: stack_mr_b_matching(
                graph,
                seed=7,
                runtime=MapReduceRuntime(counters=Counters()),
                delta=delta,
            ),
        )
    return {
        "workload": "flickr-small stack_mr",
        "scale": scale,
        "sigma": sigma,
        "rounds": full.rounds,
        "layers": full.layers,
        "mr_jobs": full.mr_jobs,
        "full_seconds": round(timings[False], 4),
        "delta_seconds": round(timings[True], 4),
        "speedup": round(timings[False] / timings[True], 2),
        "full_shuffled_records": counters[False].get(
            "runtime", "shuffle.records"
        ),
        "delta_shuffled_records": counters[True].get(
            "runtime", "shuffle.records"
        ),
    }


# -- reporting / regression gate ---------------------------------------------


def check_regression(
    results: Dict, key: str, tolerance: float = 0.10
) -> int:
    """Exit status 1 when the delta shuffle ratio dropped > tolerance.

    The ratio (full-state shuffled records / delta shuffled records)
    is a pure function of the protocol and the seeded workload — no
    wall-clock noise — so the tolerance only needs to absorb deliberate
    small protocol tweaks, not scheduler jitter.
    """
    if not os.path.exists(BENCH_JSON):
        print(f"no committed baseline at {BENCH_JSON}; nothing to check")
        return 0
    with open(BENCH_JSON, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    baseline = committed.get(key, {}).get("shuffle_ratio")
    if not baseline:
        print(f"committed baseline has no {key} shuffle_ratio; skipping")
        return 0
    measured = results[key]["shuffle_ratio"]
    floor = baseline * (1.0 - tolerance)
    print(
        f"regression check: measured delta shuffle ratio "
        f"{measured:.2f}x vs committed {baseline:.2f}x "
        f"(floor {floor:.2f}x); wall-clock speedup "
        f"{results[key]['speedup']:.2f}x for reference"
    )
    if measured < floor:
        print(
            "FAIL: the delta plane ships more shuffle records than "
            f"the committed baseline allows (>{tolerance:.0%} drop)"
        )
        return 1
    print("OK")
    return 0


def _print_row(name: str, row: Dict) -> None:
    print(
        f"{name:18s} full {row['full_seconds']:.3f}s -> delta "
        f"{row['delta_seconds']:.3f}s  ({row['speedup']:.2f}x), "
        f"shuffle {row['full_shuffled_records']} -> "
        f"{row['delta_shuffled_records']} records"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph, greedy only (the CI smoke configuration)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--sigma", type=float, default=2.0)
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of timing runs"
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"update {os.path.basename(BENCH_JSON)} with the results",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="compare against the committed JSON; exit 1 on >10% "
        "shuffle-ratio regression (deterministic, no wall-clock)",
    )
    args = parser.parse_args(argv)
    scale = args.scale or (0.12 if args.quick else 0.3)
    repeats = args.repeats or (5 if args.quick else 4)

    greedy_key = "greedy_rounds_quick" if args.quick else "greedy_rounds"
    results: Dict = {}
    greedy = bench_greedy(scale, args.sigma, repeats)
    results[greedy_key] = greedy
    _print_row("greedy_mr", greedy)
    print(
        f"{'':18s} quiescent ratio {greedy['quiescent_ratio']:.2%}, "
        f"bytes {greedy['full_shuffled_bytes']} -> "
        f"{greedy['delta_shuffled_bytes']}"
    )
    if not args.quick:
        stack = bench_stack(scale, args.sigma, repeats)
        results["stack_rounds"] = stack
        _print_row("stack_mr", stack)
    if args.write:
        recorded: Dict = {}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle)
            except ValueError:
                recorded = {}
        recorded.update(results)
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(recorded, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-> {BENCH_JSON}")
    if args.check_regression:
        return check_regression(results, greedy_key)
    return 0


if __name__ == "__main__":
    sys.exit(main())
