"""Before/after benchmark of the encoded shuffle plane + join kernel.

Measures the two changes of the encode-once PR and records the numbers
to ``benchmarks/BENCH_perf.json``:

1. **shuffle micro-benchmark** — the per-record kernel of the shuffle
   (partition + sort + group) over a synthetic mixed-key record
   stream.  The *legacy* kernel re-derives ``canonical_bytes`` at each
   stage and partitions with MD5 (the pre-PR behavior, frozen here so
   the comparison reproduces at any commit); the *encoded* kernel
   encodes once and reuses the cached bytes everywhere, partitioning
   with the CRC-based fast hash.  Target: >= 2x.

2. **end-to-end similarity join** — ``mapreduce_similarity_join`` on a
   flickr-small corpus versus a frozen copy of the legacy join (prefix
   postings, candidate-pair dedup, document stores shipped as side
   data to the verify stage, MD5 key partitioning).  The legacy jobs
   run on the *current* runtime, so this number isolates the kernel
   change and under-states the full regression distance; the true
   cross-PR wall-clock, measured once against the pre-PR checkout, is
   recorded under ``pr3_measured``.  Target: >= 1.5x.

Usage::

    python benchmarks/bench_shuffle_kernel.py             # full run
    python benchmarks/bench_shuffle_kernel.py --quick     # micro only
    python benchmarks/bench_shuffle_kernel.py --write     # update JSON
    python benchmarks/bench_shuffle_kernel.py --quick --check-regression

``--check-regression`` (the CI smoke) compares the measured micro
speedup against the committed JSON and exits non-zero when it is more
than 25% worse — a machine-independent ratio check, not a wall-clock
comparison.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import random
import sys
import time
from operator import itemgetter
from typing import Dict, List

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.mapreduce import (  # noqa: E402
    HashPartitioner,
    MapReduceJob,
    MapReduceRuntime,
    canonical_bytes,
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_perf.json"
)

#: True cross-PR wall-clock, measured once across the actual code
#: change (pre-PR checkout vs post-PR tree, same machine, best of 4):
#: `mapreduce_similarity_join` on flickr-small (seed=1, scale=0.3,
#: sigma=2.0).  Frozen — the live benchmarks above it are the numbers
#: that reproduce on any machine.
PR3_MEASURED = {
    "join_seconds_before": 1.117,
    "join_seconds_after": 0.621,
    "join_speedup": 1.80,
    "config": "flickr-small seed=1 scale=0.3 sigma=2.0, serial backend",
}


# -- 1. shuffle kernel micro-benchmark ---------------------------------------


def _mixed_records(count: int, seed: int = 0) -> List[tuple]:
    """A synthetic intermediate-record stream with realistic key mix:
    terms (str), pair keys (tuple of str), ids (int), composites."""
    rng = random.Random(seed)
    records = []
    for i in range(count):
        draw = rng.random()
        if draw < 0.40:
            key = f"term{rng.randint(0, count // 8)}"
        elif draw < 0.75:
            key = (f"t{rng.randint(0, 300)}", f"c{rng.randint(0, 300)}")
        elif draw < 0.90:
            key = rng.randint(0, 10**6)
        else:
            key = (rng.randint(0, 50), f"w{rng.randint(0, 99)}")
        records.append((key, i))
    return records


def _legacy_kernel(records: List[tuple], num_partitions: int) -> int:
    """The pre-PR shuffle kernel: every stage re-encodes the key.

    Models the stage sequence a combiner job's record traversed before
    the encoded plane: map-side combiner sort (encode #1) and group
    (encode #2), MD5 partitioning (encode #3), reduce-side sort
    (encode #4) and group (encode #5) — the re-derivation this PR
    removed, frozen here for comparison.
    """
    # map-side combiner: sort + group, both re-encoding
    combined = sorted(records, key=lambda kv: canonical_bytes(kv[0]))
    run = None
    for key, _ in combined:
        encoded = canonical_bytes(key)
        if encoded != run:
            run = encoded
    # partition: md5 over a fresh encoding
    partitions: List[List[tuple]] = [[] for _ in range(num_partitions)]
    md5 = hashlib.md5
    for key, value in combined:
        digest = md5(canonical_bytes(key)).digest()
        index = int.from_bytes(digest[:8], "big") % num_partitions
        partitions[index].append((key, value))
    # reduce side: sort + group, both re-encoding again
    groups = 0
    for partition in partitions:
        partition.sort(key=lambda kv: canonical_bytes(kv[0]))
        run = None
        for key, _ in partition:
            encoded = canonical_bytes(key)
            if encoded != run:
                groups += 1
                run = encoded
    return groups


def _encoded_kernel(records: List[tuple], num_partitions: int) -> int:
    """The encoded plane: one encode, cached bytes at every stage."""
    first = itemgetter(0)
    # the single encode, at emit time
    encoded_records = [
        (canonical_bytes(key), key, value) for key, value in records
    ]
    # map-side combiner: sort + group on the cached bytes
    encoded_records.sort(key=first)
    run = None
    for record in encoded_records:
        if record[0] != run:
            run = record[0]
    # partition: fast hash over the cached bytes
    partitions: List[List[tuple]] = [[] for _ in range(num_partitions)]
    fast_partition = HashPartitioner.partition_bytes
    for record in encoded_records:
        partitions[fast_partition(record[0], num_partitions)].append(
            record
        )
    # reduce side: sort + group on the cached bytes
    groups = 0
    for partition in partitions:
        partition.sort(key=first)
        run = None
        for record in partition:
            if record[0] != run:
                groups += 1
                run = record[0]
    return groups


def _best_of(repeats: int, fn, *args) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def bench_shuffle_micro(quick: bool) -> Dict:
    count = 60_000 if quick else 200_000
    repeats = 3 if quick else 5
    partitions = 8
    records = _mixed_records(count)
    # Same multiset in, same groups out (different partition layout).
    assert _legacy_kernel(records, partitions) == _encoded_kernel(
        records, partitions
    )
    legacy = _best_of(repeats, _legacy_kernel, records, partitions)
    encoded = _best_of(repeats, _encoded_kernel, records, partitions)
    return {
        "records": count,
        "partitions": partitions,
        "legacy_seconds": round(legacy, 4),
        "encoded_seconds": round(encoded, 4),
        "speedup": round(legacy / encoded, 2),
    }


# -- 2. end-to-end join: frozen legacy kernel vs current ---------------------
#
# Frozen copies of the pre-PR join jobs: prefix-only postings, bare
# candidate pairs deduplicated in verify, and — the DistributedCache
# anti-pattern this PR removed — both document stores shipped to the
# verify stage as side data.


class _LegacyTermBoundsJob(MapReduceJob):
    name = "legacy-term-bounds"
    has_combiner = True

    def map(self, doc_id, tagged):
        tag, vector = tagged
        if tag == "C":
            for term, weight in vector.items():
                yield term, weight

    def combine(self, term, weights):
        yield term, max(weights)

    def reduce(self, term, weights):
        yield term, max(weights)


class _LegacyCandidateJob(MapReduceJob):
    name = "legacy-candidates"

    def map(self, doc_id, tagged):
        from repro.simjoin.prefix_filter import prefix_terms

        tag, vector = tagged
        if tag == "T":
            bounds = self.side_data["max_weights"]
            sigma = self.side_data["sigma"]
            for term in prefix_terms(vector, bounds, sigma):
                yield term, ("T", doc_id)
        else:
            for term in vector:
                yield term, ("C", doc_id)

    def reduce(self, term, postings):
        item_ids = sorted(d for tag, d in postings if tag == "T")
        consumer_ids = sorted(d for tag, d in postings if tag == "C")
        for item in item_ids:
            for consumer in consumer_ids:
                yield (item, consumer), 1


class _LegacyVerifyJob(MapReduceJob):
    name = "legacy-verify"
    has_combiner = True

    def map(self, pair, count):
        yield pair, count

    def combine(self, pair, counts):
        yield pair, 1

    def reduce(self, pair, counts):
        from repro.text.vectors import dot

        item, consumer = pair
        similarity = dot(
            self.side_data["items"][item],
            self.side_data["consumers"][consumer],
        )
        if similarity >= self.side_data["sigma"]:
            yield (item, consumer), similarity


def _md5_key_partitioner(key, num_partitions):
    """The pre-PR partitioner: per-record MD5 over a fresh encoding."""
    digest = hashlib.md5(canonical_bytes(key)).digest()
    return int.from_bytes(digest[:8], "big") % num_partitions


def _legacy_join(items, consumers, sigma):
    runtime = MapReduceRuntime(partitioner=_md5_key_partitioner)
    documents = [
        (doc, ("T", vector)) for doc, vector in sorted(items.items())
    ] + [(doc, ("C", vector)) for doc, vector in sorted(consumers.items())]
    bounds = dict(runtime.run(_LegacyTermBoundsJob(), documents))
    candidates = runtime.run(
        _LegacyCandidateJob(),
        documents,
        side_data={"max_weights": bounds, "sigma": sigma},
    )
    verified = runtime.run(
        _LegacyVerifyJob(),
        candidates,
        side_data={
            "items": dict(items),
            "consumers": dict(consumers),
            "sigma": sigma,
        },
    )
    return sorted((t, c, w) for (t, c), w in verified)


def bench_join_e2e(scale: float, sigma: float) -> Dict:
    from repro.datasets import load_dataset
    from repro.simjoin import mapreduce_similarity_join

    dataset = load_dataset("flickr-small", seed=1, scale=scale)
    items, consumers = dataset.items, dataset.consumers
    legacy_rows = _legacy_join(items, consumers, sigma)
    current_rows = mapreduce_similarity_join(items, consumers, sigma)
    assert [(t, c) for t, c, _ in legacy_rows] == [
        (t, c) for t, c, _ in current_rows
    ], "join kernels disagree on the pair set"
    assert all(
        math.isclose(a, b, rel_tol=1e-9)
        for (_, _, a), (_, _, b) in zip(legacy_rows, current_rows)
    ), "join kernels disagree on scores"
    legacy = _best_of(3, _legacy_join, items, consumers, sigma)
    current = _best_of(
        3, mapreduce_similarity_join, items, consumers, sigma
    )
    return {
        "dataset": "flickr-small",
        "scale": scale,
        "sigma": sigma,
        "rows": len(current_rows),
        "legacy_seconds": round(legacy, 4),
        "encoded_seconds": round(current, 4),
        "speedup": round(legacy / current, 2),
    }


# -- reporting / regression gate ---------------------------------------------


def check_regression(
    results: Dict, key: str, tolerance: float = 0.25
) -> int:
    """Exit status 1 when the micro speedup regressed > tolerance.

    Compares the *speedup ratio* (machine-independent) of the same
    benchmark mode: quick runs check against the committed quick-mode
    baseline, full runs against the full one.
    """
    if not os.path.exists(BENCH_JSON):
        print(f"no committed baseline at {BENCH_JSON}; nothing to check")
        return 0
    with open(BENCH_JSON, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    baseline = committed.get(key, {}).get("speedup") or committed.get(
        "shuffle_micro", {}
    ).get("speedup")
    if not baseline:
        print("committed baseline has no shuffle_micro speedup; skipping")
        return 0
    measured = results[key]["speedup"]
    floor = baseline * (1.0 - tolerance)
    print(
        f"regression check: measured speedup {measured:.2f}x vs "
        f"committed {baseline:.2f}x (floor {floor:.2f}x)"
    )
    if measured < floor:
        print(
            "FAIL: shuffle micro-benchmark speedup regressed more "
            f"than {tolerance:.0%} against the committed baseline"
        )
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller micro-benchmark, skip the end-to-end join",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.3,
        help="flickr-small scale for the end-to-end join (default 0.3)",
    )
    parser.add_argument(
        "--sigma",
        type=float,
        default=2.0,
        help="join threshold (default 2.0)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"update {os.path.basename(BENCH_JSON)} with the results",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="compare against the committed JSON; exit 1 on >25% "
        "micro-speedup regression",
    )
    args = parser.parse_args(argv)

    results: Dict = {"pr3_measured": PR3_MEASURED}
    micro_key = "shuffle_micro_quick" if args.quick else "shuffle_micro"
    micro = bench_shuffle_micro(quick=args.quick)
    results[micro_key] = micro
    print(
        f"shuffle micro   ({micro['records']} records): "
        f"legacy {micro['legacy_seconds']:.3f}s -> encoded "
        f"{micro['encoded_seconds']:.3f}s  ({micro['speedup']:.2f}x)"
    )
    if not args.quick:
        e2e = bench_join_e2e(args.scale, args.sigma)
        results["join_e2e"] = e2e
        print(
            f"join end-to-end ({e2e['rows']} rows @ sigma "
            f"{e2e['sigma']}): legacy {e2e['legacy_seconds']:.3f}s -> "
            f"encoded {e2e['encoded_seconds']:.3f}s  "
            f"({e2e['speedup']:.2f}x)"
        )
    if args.write:
        recorded: Dict = {}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle)
            except ValueError:
                recorded = {}
        recorded.update(results)
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(recorded, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-> {BENCH_JSON}")
    if args.check_regression:
        return check_regression(results, micro_key)
    return 0


if __name__ == "__main__":
    sys.exit(main())
