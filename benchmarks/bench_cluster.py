"""Cluster backend vs in-process pools on the end-to-end join.

The socket-based cluster backend pays real costs the in-process pools
don't — frame serialization, TCP round trips, one daemon process per
worker — in exchange for worker-death recovery and shuffle locality.
This benchmark records that tax honestly and gates it:

1. **correctness (exact)** — ``mapreduce_similarity_join`` on a
   flickr-small corpus must return *row-for-row identical* results on
   the cluster backend and the processes backend (the deterministic
   half of the gate; any divergence is a hard failure, not a ratio);
2. **wall-clock ceiling (wide)** — the cluster join must finish within
   ``CEILING`` × the processes-backend wall-clock.  The ceiling is
   deliberately wide (localhost sockets on a loaded single-core CI
   runner are noisy); it exists to catch pathological regressions — an
   accidental reconnect-per-task, a lost-wakeup stall, a respawn storm
   — which show up as order-of-magnitude blowups, not percentages.

Usage::

    python benchmarks/bench_cluster.py                    # full run
    python benchmarks/bench_cluster.py --quick            # smaller corpus
    python benchmarks/bench_cluster.py --write            # update JSON
    python benchmarks/bench_cluster.py --quick --check-regression

``--check-regression`` (the CI gate) re-checks row identity and the
wall-clock ratio against ``CEILING`` — both halves computed from the
current run, so the gate needs no machine-comparable committed numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.mapreduce import (  # noqa: E402
    Counters,
    MapReduceRuntime,
    resolve_executor,
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_perf.json"
)

#: Cluster wall-clock must stay under CEILING x the processes backend.
#: Wide on purpose: the gate is for order-of-magnitude pathologies
#: (reconnect-per-task, respawn storms), not for socket-vs-pipe noise.
CEILING = 5.0


def _noop(value):
    return value


def _runtime(backend: str, workers: int) -> MapReduceRuntime:
    return MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        backend=backend,
        max_workers=workers,
    )


def _timed_join(backend, workers, items, consumers, sigma, repeats):
    from repro.simjoin import mapreduce_similarity_join

    best = None
    rows = None
    for _ in range(repeats):
        runtime = _runtime(backend, workers)
        start = time.perf_counter()
        rows = mapreduce_similarity_join(
            items, consumers, sigma, runtime=runtime
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return rows, best


def bench_cluster_join(
    scale: float, sigma: float, workers: int, repeats: int
) -> Dict:
    from repro.datasets import load_dataset

    dataset = load_dataset("flickr-small", seed=1, scale=scale)
    items, consumers = dataset.items, dataset.consumers
    # Warm both shared pools outside the timed region, so the cluster
    # number measures dispatch, not one-time process forking.
    for backend in ("processes", "cluster"):
        resolve_executor(backend, max_workers=workers).run_tasks(
            _noop, [(0,)]
        )
    process_rows, process_seconds = _timed_join(
        "processes", workers, items, consumers, sigma, repeats
    )
    cluster_rows, cluster_seconds = _timed_join(
        "cluster", workers, items, consumers, sigma, repeats
    )
    return {
        "dataset": "flickr-small",
        "scale": scale,
        "sigma": sigma,
        "workers": workers,
        "rows": len(process_rows),
        "rows_identical": process_rows == cluster_rows,
        "processes_seconds": round(process_seconds, 4),
        "cluster_seconds": round(cluster_seconds, 4),
        "slowdown": round(cluster_seconds / process_seconds, 2),
        "ceiling": CEILING,
    }


def check_regression(result: Dict) -> int:
    """Exit 1 on row divergence or a wall-clock ratio past CEILING."""
    if not result["rows_identical"]:
        print(
            "FAIL: cluster join rows diverge from the processes "
            "backend (bit-identity contract broken)"
        )
        return 1
    print(
        f"regression check: cluster {result['cluster_seconds']:.3f}s vs "
        f"processes {result['processes_seconds']:.3f}s — "
        f"{result['slowdown']:.2f}x (ceiling {result['ceiling']:.1f}x)"
    )
    if result["slowdown"] > result["ceiling"]:
        print(
            "FAIL: cluster dispatch overhead exceeds the "
            f"{result['ceiling']:.1f}x wall-clock ceiling"
        )
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller corpus and fewer repeats (the CI mode)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="flickr-small scale (default 0.3, quick 0.1)",
    )
    parser.add_argument(
        "--sigma", type=float, default=2.0, help="join threshold"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for both backends (default 2)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"update {os.path.basename(BENCH_JSON)} with the results",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="exit 1 on row divergence or a past-ceiling slowdown",
    )
    args = parser.parse_args(argv)

    scale = args.scale or (0.1 if args.quick else 0.3)
    repeats = 2 if args.quick else 3
    key = "cluster_join_quick" if args.quick else "cluster_join"
    result = bench_cluster_join(scale, args.sigma, args.workers, repeats)
    print(
        f"join e2e ({result['rows']} rows @ sigma {result['sigma']}, "
        f"{result['workers']} workers): processes "
        f"{result['processes_seconds']:.3f}s -> cluster "
        f"{result['cluster_seconds']:.3f}s  "
        f"({result['slowdown']:.2f}x, identical="
        f"{result['rows_identical']})"
    )
    if args.write:
        recorded: Dict = {}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle)
            except ValueError:
                recorded = {}
        recorded[key] = result
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(recorded, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-> {BENCH_JSON}")
    if args.check_regression:
        return check_regression(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
