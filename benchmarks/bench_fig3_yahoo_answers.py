"""Figure 3 — yahoo-answers: matching value and iterations vs #edges.

The third dataset: tf·idf-weighted questions/answerers with *uniform*
question budgets.  Paper shapes: GreedyMR ahead by ~14% on value;
violations for the stack algorithms practically zero on this dataset.
"""

from repro.experiments import value_iterations_experiment

from .conftest import run_once


def test_fig3_yahoo_answers_value_and_iterations(benchmark, report):
    outcome, text = run_once(
        benchmark, lambda: value_iterations_experiment("fig3")
    )
    report(text)
    rows = outcome.rows
    assert rows
    greedy = {
        (r.sigma, r.alpha): r.value
        for r in rows
        if r.algorithm == "GreedyMR"
    }
    stack = {
        (r.sigma, r.alpha): r.value
        for r in rows
        if r.algorithm == "StackMR"
    }
    for cell, value in stack.items():
        assert greedy[cell] >= value * 0.999
    # The paper observes near-zero violations on yahoo-answers at ε=1.
    for row in rows:
        if row.algorithm.startswith("Stack"):
            assert row.avg_violation <= 0.05
