"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and prints
the measured rows next to the paper's numbers (the reproduction
deliverable), while pytest-benchmark records the wall time of the
underlying experiment.

Scale knobs: set ``REPRO_BENCH_SCALE`` (default 1.0) to enlarge or
shrink every dataset, e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/
--benchmark-only`` for a run closer to paper scale.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a reproduction report to the real terminal."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _print


def run_once(benchmark, fn):
    """Benchmark ``fn`` exactly once (experiments are heavyweight)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
