"""Closed-loop load harness: Zipf traffic, tail latency, p99 gates.

The serving benchmark (``bench_serving.py``) measures the coalescing
win on a *uniform* event stream.  This harness measures the shape a
content site actually sees: ``repro.telemetry.loadgen.zipf_events``
generates a seeded stream whose non-arrival events target Zipf-ranked
hot nodes, and ``run_load`` drives the :class:`MatchingService` closed
loop, measuring every event's submit→converged latency on the event
loop clock.  Recorded to ``benchmarks/BENCH_serving.json`` under the
``load`` / ``load_quick`` keys:

* **reproducibility proof** — ``events_digest`` fingerprints the event
  stream; the CI gate fails if the same seed stops producing the same
  stream (the "same seed → same events" contract);
* **deterministic meters**, gated strictly like the other BENCH gates:
  incremental shuffled records and flush count are pure functions of
  the seeded workload (unpaced submission + a generous ``max_delay``
  make flush boundaries a function of ``max_batch`` alone);
* **tail latency + throughput**, gated *loosely*: p99 latency and
  achieved throughput are wall-clock, so the gate only fails on a
  blow-up (default 5x, ``REPRO_LOAD_LATENCY_TOLERANCE`` overrides) —
  catching a superlinear regression without flaking on a loaded
  runner.

``--metrics-port`` exposes the runtime's metrics registry (plus
``service.metrics()``) over HTTP *during* the run — the CI job curls
``/metrics`` mid-run as the scrape smoke — and ``--linger-seconds``
keeps the endpoint up after the run until one external scrape lands
(or the linger times out), so the curl always has a live target.

Before anything is recorded, the incremental matching is asserted
bit-identical to a cold batch on the final graph, same as every other
serving measurement.

Usage::

    python benchmarks/bench_load.py                # full run
    python benchmarks/bench_load.py --quick        # CI smoke scale
    python benchmarks/bench_load.py --write        # update JSON
    python benchmarks/bench_load.py --quick --check-regression
    python benchmarks/bench_load.py --quick --metrics-port 9109 \\
        --linger-seconds 30
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Dict, Optional

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.datasets import load_dataset  # noqa: E402
from repro.mapreduce import Counters, MapReduceRuntime  # noqa: E402
from repro.service import MatchingService, OnlineMatcher  # noqa: E402
from repro.telemetry import MetricsExporter  # noqa: E402
from repro.telemetry.loadgen import (  # noqa: E402
    events_digest,
    run_load,
    zipf_events,
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_serving.json"
)

#: Wall-clock gate slack: measured p99 may be up to this factor above
#: the committed baseline (and throughput this factor below) before
#: the gate fails.  Wide on purpose — the gate exists to catch
#: blow-ups, not scheduler jitter on a loaded CI runner.
DEFAULT_LATENCY_TOLERANCE = 5.0


def bench_load(
    scale: float,
    sigma: float,
    events: int,
    batch: int,
    seed: int,
    skew: float,
    rate: Optional[float],
    metrics_port: Optional[int] = None,
    linger_seconds: float = 0.0,
) -> Dict:
    dataset = load_dataset("flickr-small", seed=1, scale=scale)
    graph = dataset.graph(sigma=sigma, alpha=2.0)
    stream, _ = zipf_events(graph, events, seed=seed, skew=skew)
    digest = events_digest(stream)

    runtime = MapReduceRuntime(counters=Counters())
    matcher = OnlineMatcher(runtime=runtime, graph=graph)
    after_bootstrap = runtime.counters.get("runtime", "shuffle.records")
    # Unpaced runs rely on max_batch alone deciding flush boundaries,
    # so max_delay is effectively infinite; paced runs flush stragglers
    # after half a second like bench_serving.
    service = MatchingService(
        matcher, max_batch=batch, max_delay=(0.5 if rate else 60.0)
    )

    exporter = None
    scrapes_before_linger = 0
    if metrics_port is not None:
        exporter = MetricsExporter(
            registry=runtime.metrics,
            extra_metrics=service.metrics,
            port=metrics_port,
        ).start()
        print(
            f"metrics endpoint: {exporter.url}/metrics "
            f"(JSON at /metrics.json)"
        )

    async def drive():
        async with service:
            report = await run_load(service, stream, offered_rate=rate)
            identical, cold_value = matcher.verify()
            final_edges = matcher.matching_edges()
        return report, identical, cold_value, final_edges

    try:
        report, identical, cold_value, final_edges = asyncio.run(drive())
        if exporter is not None:
            scrapes_before_linger = exporter.scrape_count
            if linger_seconds > 0:
                print(
                    f"lingering up to {linger_seconds:.0f}s for one "
                    "external scrape..."
                )
                exporter.wait_for_scrapes(
                    scrapes_before_linger + 1, linger_seconds
                )
    finally:
        if exporter is not None:
            exporter.stop()
    assert identical, (
        "incremental re-convergence diverged from the cold batch — "
        "refusing to record a benchmark of a wrong answer"
    )
    metrics = report.service_metrics
    incremental_shuffled = (
        runtime.counters.get("runtime", "shuffle.records")
        - after_bootstrap
    )
    summary = report.summary()
    return {
        "workload": (
            "flickr-small zipf live stream (closed-loop load harness)"
        ),
        "scale": scale,
        "sigma": sigma,
        "seed": seed,
        "zipf_skew": skew,
        "events": events,
        "batch_size": batch,
        "offered_rate_events_per_s": rate or 0.0,
        "events_digest": digest,
        "nodes": len(graph.capacities()),
        "edges": graph.num_edges,
        "matched_edges": len(final_edges),
        "matching_value": round(cold_value, 2),
        "batches_flushed": int(metrics["batches_flushed"]),
        "coalescing_ratio": round(metrics["coalescing_ratio"], 2),
        "reconverge_rounds": int(metrics["reconverge_rounds"]),
        # Per-event submit->converged latency (includes coalescing
        # wait) — the client-observed numbers, unlike bench_serving's
        # per-flush engine latency.
        "latency_p50_ms": round(summary["latency_p50_ms"], 3),
        "latency_p95_ms": round(summary["latency_p95_ms"], 3),
        "latency_p99_ms": round(summary["latency_p99_ms"], 3),
        "achieved_events_per_s": round(
            summary["achieved_events_per_s"], 1
        ),
        "flushes_per_sec": round(metrics["flushes_per_sec"], 2),
        "incremental_shuffled_records": incremental_shuffled,
    }


def _latency_tolerance() -> float:
    raw = os.environ.get("REPRO_LOAD_LATENCY_TOLERANCE", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_LATENCY_TOLERANCE
    return value if value > 1.0 else DEFAULT_LATENCY_TOLERANCE


def check_regression(results: Dict, key: str) -> int:
    """Gate against the committed baseline; exit 1 on regression.

    Deterministic meters (event-stream digest, shuffled records, flush
    count) are checked strictly; wall-clock meters (p99 latency,
    achieved throughput) only against the wide tolerance factor.
    """
    if not os.path.exists(BENCH_JSON):
        print(f"no committed baseline at {BENCH_JSON}; nothing to check")
        return 0
    with open(BENCH_JSON, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    baseline = committed.get(key)
    if not baseline:
        print(f"committed baseline has no {key} row; skipping")
        return 0
    measured = results[key]
    failures = []

    if measured["events_digest"] != baseline.get("events_digest"):
        failures.append(
            "event stream digest changed: same seed no longer "
            f"produces the same events ({measured['events_digest']} "
            f"vs committed {baseline.get('events_digest')})"
        )
    for name in ("batches_flushed", "incremental_shuffled_records"):
        if name in baseline and measured[name] != baseline[name]:
            failures.append(
                f"deterministic meter {name} changed: "
                f"{measured[name]} vs committed {baseline[name]}"
            )

    factor = _latency_tolerance()
    base_p99 = baseline.get("latency_p99_ms", 0.0)
    if base_p99 and measured["latency_p99_ms"] > base_p99 * factor:
        failures.append(
            f"p99 latency blew up: {measured['latency_p99_ms']:.1f}ms "
            f"vs committed {base_p99:.1f}ms (ceiling {factor:.1f}x)"
        )
    base_rate = baseline.get("achieved_events_per_s", 0.0)
    if base_rate and (
        measured["achieved_events_per_s"] < base_rate / factor
    ):
        failures.append(
            "throughput collapsed: "
            f"{measured['achieved_events_per_s']:.1f} ev/s vs "
            f"committed {base_rate:.1f} ev/s (floor 1/{factor:.1f}x)"
        )

    print(
        f"regression check [{key}]: digest {measured['events_digest']} "
        f"| flushes {measured['batches_flushed']} | shuffled "
        f"{measured['incremental_shuffled_records']} | p99 "
        f"{measured['latency_p99_ms']:.1f}ms (ceiling "
        f"{base_p99 * factor:.1f}ms) | throughput "
        f"{measured['achieved_events_per_s']:.1f} ev/s"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph and stream (the CI smoke configuration)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--sigma", type=float, default=2.0)
    parser.add_argument("--events", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf exponent over node ranks (0 = uniform; default 1.1)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="EV_PER_S",
        help="offered event rate for paced (open-loop) arrivals; "
        "default: unpaced, which keeps flush boundaries deterministic "
        "for the gate",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose the metrics registry on 127.0.0.1:PORT during "
        "the run (0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--linger-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="after the run, keep the metrics endpoint up until one "
        "external scrape lands or S seconds pass (for the CI curl)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"update {os.path.basename(BENCH_JSON)} with the results",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="compare against the committed JSON; exit 1 when the "
        "event stream digest or a deterministic meter changed, or "
        "p99/throughput blew past the wall-clock tolerance",
    )
    args = parser.parse_args(argv)
    scale = args.scale or (0.08 if args.quick else 0.25)
    events = args.events or (48 if args.quick else 192)

    key = "load_quick" if args.quick else "load"
    row = bench_load(
        scale,
        args.sigma,
        events,
        args.batch_size,
        args.seed,
        args.skew,
        args.rate,
        metrics_port=args.metrics_port,
        linger_seconds=args.linger_seconds,
    )
    results = {key: row}
    print(
        f"load: {row['events']} zipf events (skew {row['zipf_skew']}) "
        f"in {row['batches_flushed']} flushes "
        f"(coalescing x{row['coalescing_ratio']:.1f}), digest "
        f"{row['events_digest']}"
    )
    print(
        f"{'':6s}latency p50 {row['latency_p50_ms']:.1f}ms / "
        f"p95 {row['latency_p95_ms']:.1f}ms / "
        f"p99 {row['latency_p99_ms']:.1f}ms, "
        f"{row['achieved_events_per_s']:,.0f} ev/s achieved, "
        f"{row['incremental_shuffled_records']} records shuffled"
    )
    if args.write:
        recorded: Dict = {}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle)
            except ValueError:
                recorded = {}
        recorded.update(results)
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(recorded, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-> {BENCH_JSON}")
    if args.check_regression:
        return check_regression(results, key)
    return 0


if __name__ == "__main__":
    sys.exit(main())
