"""Figure 1 — flickr-small: matching value and iterations vs #edges.

Sweeps the similarity threshold σ (x-axis: resulting number of edges)
for GreedyMR, StackMR, and StackGreedyMR at ε=1 and two α settings,
printing the value series and MapReduce-iteration series the paper
plots, plus the §6 shape checks (GreedyMR wins on value by ~11% here;
on this small dataset the stack algorithms pay their maximal-matching
overhead in iterations).
"""

from repro.experiments import value_iterations_experiment

from .conftest import run_once


def test_fig1_flickr_small_value_and_iterations(benchmark, report):
    outcome, text = run_once(
        benchmark, lambda: value_iterations_experiment("fig1")
    )
    report(text)
    rows = outcome.rows
    assert rows
    greedy = {
        (r.sigma, r.alpha): r.value
        for r in rows
        if r.algorithm == "GreedyMR"
    }
    stack = {
        (r.sigma, r.alpha): r.value
        for r in rows
        if r.algorithm == "StackMR"
    }
    # §6 quality: GreedyMR at least matches StackMR in every cell.
    for cell, value in stack.items():
        assert greedy[cell] >= value * 0.999
    # Violations stay within the (1+ε) guarantee and are small.
    for row in rows:
        if row.algorithm.startswith("Stack"):
            assert row.avg_violation <= 0.10
        else:
            assert row.feasible
