"""Figure 2 — flickr-large: matching value and iterations vs #edges.

Same sweep as Figure 1 on the larger, more capacity-skewed flickr
stand-in.  The paper's headline shapes: GreedyMR leads on value by
~31%; the stack algorithms need far fewer MapReduce iterations and
their iteration count barely moves as the edge count grows, while
GreedyMR's grows.
"""

from repro.experiments import value_iterations_experiment

from .conftest import run_once


def test_fig2_flickr_large_value_and_iterations(benchmark, report):
    outcome, text = run_once(
        benchmark, lambda: value_iterations_experiment("fig2")
    )
    report(text)
    rows = outcome.rows
    greedy_rows = sorted(
        (r for r in rows if r.algorithm == "GreedyMR"),
        key=lambda r: r.num_edges,
    )
    stack_rows = sorted(
        (r for r in rows if r.algorithm == "StackMR"),
        key=lambda r: r.num_edges,
    )
    assert greedy_rows and stack_rows
    # Quality: GreedyMR ahead in every cell (paper: ~+31% average).
    for greedy, stack in zip(greedy_rows, stack_rows):
        assert greedy.value >= stack.value
    # Efficiency shape: StackMR's job count is nearly flat across the
    # sweep while GreedyMR's round count grows with the edge count.
    stack_growth = stack_rows[-1].mr_jobs / max(stack_rows[0].mr_jobs, 1)
    greedy_growth = greedy_rows[-1].rounds / max(
        greedy_rows[0].rounds, 1
    )
    assert stack_growth <= greedy_growth + 1.0
