"""Table 1 — dataset characteristics (|T|, |C|, |E|).

Regenerates the paper's Table 1 on the synthetic stand-ins: builds all
three datasets and counts the candidate edges produced by the
similarity join at each dataset's floor threshold.
"""

from repro.experiments import table1_experiment

from .conftest import run_once


def test_table1_dataset_characteristics(benchmark, report):
    rows, text = run_once(benchmark, lambda: table1_experiment())
    report(text)
    assert len(rows) == 3
    for row in rows:
        assert row["|T| measured"] > 0
        assert row["|C| measured"] > 0
        assert row["|E| measured"] > 0
        # scaled stand-ins stay below the crawl sizes
        assert row["|T| measured"] <= row["|T| paper"]
