"""Ablations A1-A3 (DESIGN.md §4) — design choices the paper discusses.

A1  Marking strategies (§6 "Variants"): uniform (StackMR) vs greedy
    (StackGreedyMR) vs weight-proportional (the variant the paper
    tried and dismissed).  Expectation: greedy >= weighted >= uniform
    in value on average.
A2  ε sensitivity of StackMR: larger ε means fewer, fatter layers
    (fewer MR jobs) but looser capacity slack; smaller ε the reverse.
A3  Worst cases: the ascending path that forces GreedyMR through a
    linear number of rounds (§5.4), and the Appendix-A triangle where
    greedy's ½-guarantee is tight.
A4  Algorithm 1 vs Algorithm 2: the paper evaluates only the
    (1+ε)-violating Algorithm 2 ("we do not include an evaluation of
    [Algorithm 1] as it does not seem to be efficient"); we quantify
    what its strict feasibility costs in matching value.
"""

import pytest

from repro.datasets import load_dataset
from repro.experiments import ascii_table, banner, bench_scale, bench_seed
from repro.graph import ascending_path, greedy_tightness_triangle
from repro.matching import (
    bruteforce_b_matching,
    greedy_b_matching,
    greedy_mr_b_matching,
    stack_b_matching,
    stack_mr_b_matching,
)

from .conftest import run_once


@pytest.fixture(scope="module")
def flickr_graph():
    dataset = load_dataset(
        "flickr-small", seed=bench_seed(), scale=0.2 * bench_scale()
    )
    sigma = dataset.sigma_for_edge_count(
        len(dataset.edges(1.0)) // 5, 1.0
    )
    return dataset.graph(sigma=sigma, alpha=2.0)


def test_a1_marking_strategies(benchmark, report, flickr_graph):
    def run():
        rows = []
        for strategy in ("uniform", "greedy", "weighted"):
            result = stack_mr_b_matching(
                flickr_graph, epsilon=1.0, seed=3, strategy=strategy
            )
            rows.append(
                [
                    strategy,
                    result.algorithm,
                    round(result.value, 1),
                    result.mr_jobs,
                    result.layers,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        banner("Ablation A1 — maximal-matching marking strategies")
        + "\n"
        + ascii_table(
            ["strategy", "algorithm", "value", "mr_jobs", "layers"],
            rows,
        )
        + "\npaper: StackGreedyMR slightly better than StackMR; the "
        "weight-proportional variant always worse than StackGreedyMR."
    )
    values = {row[0]: row[2] for row in rows}
    # §6: biasing the marking towards heavy edges helps.
    assert values["greedy"] >= values["uniform"] * 0.98


def test_a2_epsilon_sensitivity(benchmark, report, flickr_graph):
    def run():
        rows = []
        for epsilon in (0.25, 0.5, 1.0, 2.0):
            result = stack_mr_b_matching(
                flickr_graph, epsilon=epsilon, seed=3
            )
            violations = result.violations(flickr_graph.capacities())
            rows.append(
                [
                    epsilon,
                    round(result.value, 1),
                    result.mr_jobs,
                    result.layers,
                    round(violations.average_violation, 5),
                    round(violations.max_violation_ratio, 3),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        banner("Ablation A2 — StackMR ε sensitivity")
        + "\n"
        + ascii_table(
            [
                "epsilon",
                "value",
                "mr_jobs",
                "layers",
                "avg_violation",
                "max_violation",
            ],
            rows,
        )
        + "\nexpected: fewer layers/jobs as ε grows; violations bounded "
        "by the (1+ε) guarantee throughout."
    )
    # layers (and thus pop jobs) shrink as ε grows
    assert rows[0][3] >= rows[-1][3]
    # guarantee: avg violation can never exceed ε
    for epsilon, _, _, _, avg_violation, _ in rows:
        assert avg_violation <= epsilon


def test_a3_greedymr_linear_worst_case(benchmark, report):
    sizes = (64, 128, 256)

    def run():
        rows = []
        for size in sizes:
            result = greedy_mr_b_matching(ascending_path(size))
            rows.append([size, result.rounds, round(result.value, 1)])
        return rows

    rows = run_once(benchmark, run)
    report(
        banner("Ablation A3a — GreedyMR on the ascending path (§5.4)")
        + "\n"
        + ascii_table(["path nodes", "rounds", "value"], rows)
        + "\nexpected: rounds grow linearly with the path length."
    )
    # linear growth: doubling nodes ~doubles rounds
    assert rows[1][1] >= 1.7 * rows[0][1]
    assert rows[2][1] >= 1.7 * rows[1][1]


def test_a4_feasible_stack_vs_violating_stack(
    benchmark, report, flickr_graph
):
    def run():
        rows = []
        for feasible in (False, True):
            result = stack_b_matching(
                flickr_graph, epsilon=1.0, seed=3, feasible=feasible
            )
            violations = result.violations(flickr_graph.capacities())
            rows.append(
                [
                    result.algorithm,
                    round(result.value, 1),
                    len(result.matching),
                    round(violations.average_violation, 5),
                    violations.feasible,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        banner(
            "Ablation A4 — Algorithm 1 (feasible) vs Algorithm 2 "
            "(1+ε violations)"
        )
        + "\n"
        + ascii_table(
            ["algorithm", "value", "edges", "avg_violation", "feasible"],
            rows,
        )
        + "\npaper: only Algorithm 2 is evaluated; Algorithm 1 trades "
        "a little value (overflow edges re-inserted via dominance "
        "sublayers) for exact feasibility."
    )
    violating, feasible = rows
    assert feasible[4] is True  # Algorithm 1 never violates
    # The repair keeps it competitive: within 25% of Algorithm 2.
    assert feasible[1] >= 0.75 * violating[1]


def test_a3_greedy_tightness_triangle(benchmark, report):
    def run():
        epsilon = 0.05
        graph = greedy_tightness_triangle(epsilon)
        greedy = greedy_b_matching(graph)
        optimum = bruteforce_b_matching(graph)
        return epsilon, greedy.value, optimum.value

    epsilon, greedy_value, optimum_value = run_once(benchmark, run)
    ratio = greedy_value / optimum_value
    report(
        banner("Ablation A3b — Appendix A tightness instance")
        + f"\ngreedy={greedy_value:.3f} optimum={optimum_value:.3f} "
        f"ratio={ratio:.4f} (theory: (1+ε)/2 = {(1 + epsilon) / 2:.4f})"
    )
    assert ratio == pytest.approx((1 + epsilon) / 2)
    assert ratio >= 0.5
