"""Figure 4 — StackMR capacity violations (average ε′).

Sweeps σ and α at ε=1 on the capacity-skewed flickr-large stand-in and
reports the paper's ε′ statistic.  Expected shapes: violations are at
most a few percent, grow as more edges participate (lower σ) and as
capacities grow (higher α); a second ε sweep (ablation) shows the
tradeoff knob.
"""

from repro.experiments import violations_experiment

from .conftest import run_once


def test_fig4_stackmr_capacity_violations(benchmark, report):
    outcomes, text = run_once(
        benchmark, lambda: violations_experiment(epsilons=(1.0,))
    )
    report(text)
    rows = outcomes[0].rows
    assert rows
    # Theorem-1 regime: small average violations at ε=1 (paper: <= 6%).
    for row in rows:
        assert row.avg_violation <= 0.10
    # Shape: violations (weakly) grow when σ falls, per α series.
    for alpha in {row.alpha for row in rows}:
        series = sorted(
            (r for r in rows if r.alpha == alpha),
            key=lambda r: r.num_edges,
        )
        # compare the sparsest cell against the densest cell
        assert series[-1].avg_violation >= series[0].avg_violation - 1e-9
