"""Serving benchmark: incremental re-convergence vs cold re-batching.

Bootstraps the online matching service from a flickr-small Problem-1
instance, then streams a seeded synthetic event workload through the
asyncio facade's micro-batching and records the numbers to
``benchmarks/BENCH_serving.json``:

* **serving meters** — coalescing ratio (events per flush),
  p50/p95/p99 re-convergence latency, flush rate, and event
  throughput, straight from the service's always-on counters;
* the **shuffle ratio** the CI smoke gates on: total records a
  batch-only system would shuffle re-running cold GreedyMR after every
  admitted event (the freshness the service actually provides — every
  ``submit_event`` resolves with a converged state), divided by the
  records the service's coalesced incremental re-convergences shuffled.
  Like the BENCH_matching gate, both sides are pure functions of the
  seeded workload — no wall-clock in the gate — so the tolerance only
  absorbs deliberate protocol changes, never scheduler jitter;
* a **locality ratio** diagnostic: cold batch per *micro-batch* over
  incremental.  On similarity graphs with a giant connected component
  this sits near 1.0 (an affected component is most of the graph) —
  coalescing, not component locality, is the serving win there, and
  recording both keeps that honest.

Before anything is recorded, the incremental matching is asserted
bit-identical to a cold batch on the final graph (the service's
correctness anchor) — a benchmark of a wrong answer is worthless.

Usage::

    python benchmarks/bench_serving.py             # full run
    python benchmarks/bench_serving.py --quick     # CI smoke scale
    python benchmarks/bench_serving.py --write     # update JSON
    python benchmarks/bench_serving.py --quick --check-regression
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Dict

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.datasets import load_dataset  # noqa: E402
from repro.mapreduce import Counters, MapReduceRuntime  # noqa: E402
from repro.matching import greedy_mr_b_matching  # noqa: E402
from repro.service import (  # noqa: E402
    MatchingService,
    OnlineMatcher,
    apply_event,
    plain_graph,
    synthetic_events,
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_serving.json"
)


def _cold_batch_shuffled(graph) -> int:
    """Records a cold GreedyMR batch on ``graph`` shuffles."""
    runtime = MapReduceRuntime(counters=Counters())
    greedy_mr_b_matching(graph, runtime=runtime)
    return runtime.counters.get("runtime", "shuffle.records")


def bench_serving(
    scale: float, sigma: float, events: int, batch: int, seed: int
) -> Dict:
    dataset = load_dataset("flickr-small", seed=1, scale=scale)
    graph = dataset.graph(sigma=sigma, alpha=2.0)
    stream, _ = synthetic_events(graph, events, seed=seed)

    runtime = MapReduceRuntime(counters=Counters())
    matcher = OnlineMatcher(runtime=runtime, graph=graph)
    after_bootstrap = runtime.counters.get("runtime", "shuffle.records")
    service = MatchingService(matcher, max_batch=batch, max_delay=0.5)

    async def drive():
        async with service:
            await asyncio.gather(
                *(service.submit_event(event) for event in stream)
            )
            identical, cold_value = matcher.verify()
            final_edges = matcher.matching_edges()
        return identical, cold_value, final_edges

    identical, cold_value, final_edges = asyncio.run(drive())
    assert identical, (
        "incremental re-convergence diverged from the cold batch — "
        "refusing to record a benchmark of a wrong answer"
    )
    metrics = service.metrics()
    incremental_shuffled = (
        runtime.counters.get("runtime", "shuffle.records")
        - after_bootstrap
    )

    # The gate's counterfactual: a cold GreedyMR batch after *every*
    # event — what a batch-only system must run to match the service's
    # read-your-writes freshness.  The locality diagnostic replays the
    # service's own flush boundaries instead (cold batch per
    # micro-batch), isolating component-locality from coalescing.
    mirror = plain_graph(graph)
    cold_per_event_shuffled = 0
    cold_per_batch_shuffled = 0
    for index, event in enumerate(stream):
        apply_event(mirror, event)
        cold_per_event_shuffled += _cold_batch_shuffled(mirror)
        if (index + 1) % batch == 0 or index + 1 == len(stream):
            cold_per_batch_shuffled += _cold_batch_shuffled(mirror)

    return {
        "workload": "flickr-small live stream (greedy_mr serving)",
        "scale": scale,
        "sigma": sigma,
        "seed": seed,
        "events": events,
        "batch_size": batch,
        "nodes": len(graph.capacities()),
        "edges": graph.num_edges,
        "matched_edges": len(final_edges),
        "matching_value": round(cold_value, 2),
        "batches_flushed": int(metrics["batches_flushed"]),
        "coalescing_ratio": round(metrics["coalescing_ratio"], 2),
        "reconverge_rounds": int(metrics["reconverge_rounds"]),
        "latency_p50_ms": round(metrics["latency_p50_ms"], 3),
        "latency_p95_ms": round(metrics["latency_p95_ms"], 3),
        "latency_p99_ms": round(metrics["latency_p99_ms"], 3),
        "throughput_events_per_s": round(
            metrics["throughput_events_per_s"], 1
        ),
        "flushes_per_sec": round(metrics["flushes_per_sec"], 2),
        "incremental_shuffled_records": incremental_shuffled,
        "cold_per_event_shuffled_records": cold_per_event_shuffled,
        "cold_per_batch_shuffled_records": cold_per_batch_shuffled,
        "shuffle_ratio": round(
            cold_per_event_shuffled / max(1, incremental_shuffled), 2
        ),
        "locality_ratio": round(
            cold_per_batch_shuffled / max(1, incremental_shuffled), 2
        ),
    }


def check_regression(
    results: Dict, key: str, tolerance: float = 0.10
) -> int:
    """Exit 1 when the serving shuffle ratio dropped > tolerance."""
    if not os.path.exists(BENCH_JSON):
        print(f"no committed baseline at {BENCH_JSON}; nothing to check")
        return 0
    with open(BENCH_JSON, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    baseline = committed.get(key, {}).get("shuffle_ratio")
    if not baseline:
        print(f"committed baseline has no {key} shuffle_ratio; skipping")
        return 0
    measured = results[key]["shuffle_ratio"]
    floor = baseline * (1.0 - tolerance)
    print(
        f"regression check: incremental serving shuffles "
        f"{measured:.2f}x fewer records than cold re-batching vs "
        f"committed {baseline:.2f}x (floor {floor:.2f}x); "
        f"p95 latency {results[key]['latency_p95_ms']:.1f}ms for "
        "reference"
    )
    if measured < floor:
        print(
            "FAIL: incremental re-convergence shuffles more than the "
            f"committed baseline allows (>{tolerance:.0%} drop)"
        )
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph and stream (the CI smoke configuration)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--sigma", type=float, default=2.0)
    parser.add_argument("--events", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"update {os.path.basename(BENCH_JSON)} with the results",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="compare against the committed JSON; exit 1 on >10% "
        "shuffle-ratio regression (deterministic, no wall-clock)",
    )
    args = parser.parse_args(argv)
    scale = args.scale or (0.08 if args.quick else 0.25)
    events = args.events or (40 if args.quick else 160)

    key = "serving_quick" if args.quick else "serving"
    row = bench_serving(
        scale, args.sigma, events, args.batch_size, args.seed
    )
    results = {key: row}
    print(
        f"serving: {row['events']} events in {row['batches_flushed']} "
        f"flushes (coalescing x{row['coalescing_ratio']:.1f}), "
        f"p50 {row['latency_p50_ms']:.1f}ms / "
        f"p95 {row['latency_p95_ms']:.1f}ms / "
        f"p99 {row['latency_p99_ms']:.1f}ms, "
        f"{row['throughput_events_per_s']:,.0f} ev/s"
    )
    print(
        f"{'':9s}shuffle: cold-per-event "
        f"{row['cold_per_event_shuffled_records']} records vs "
        f"incremental {row['incremental_shuffled_records']} "
        f"({row['shuffle_ratio']:.2f}x; locality "
        f"{row['locality_ratio']:.2f}x)"
    )
    if args.write:
        recorded: Dict = {}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle)
            except ValueError:
                recorded = {}
        recorded.update(results)
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(recorded, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-> {BENCH_JSON}")
    if args.check_regression:
        return check_regression(results, key)
    return 0


if __name__ == "__main__":
    sys.exit(main())
