"""Micro-benchmarks of the substrate components.

These are conventional pytest-benchmark timings (multiple rounds) of
the building blocks: the MapReduce shuffle, the three similarity-join
engines, the maximal-matching engine, and the centralized solvers.
They track the performance of the simulator itself rather than a paper
figure.
"""

import random

import pytest

from repro.datasets import load_dataset
from repro.graph import random_bipartite
from repro.mapreduce import MapReduceJob, MapReduceRuntime
from repro.matching import (
    greedy_b_matching,
    maximal_b_matching,
    stack_b_matching,
    suitor_b_matching,
)
from repro.simjoin import (
    exact_similarity_join,
    mapreduce_similarity_join,
    scipy_similarity_join,
)


@pytest.fixture(scope="module")
def vectors():
    dataset = load_dataset("flickr-small", seed=1, scale=0.1)
    return dataset.items, dataset.consumers


@pytest.fixture(scope="module")
def mid_graph():
    return random_bipartite(
        120, 80, 0.08, rng=random.Random(5), max_capacity=4
    )


class _WordCount(MapReduceJob):
    has_combiner = True

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def combine(self, word, counts):
        yield word, sum(counts)

    def reduce(self, word, counts):
        yield word, sum(counts)


def test_runtime_shuffle_wordcount(benchmark):
    rng = random.Random(0)
    words = [f"w{rng.randint(0, 500)}" for _ in range(5000)]
    records = [
        (i, " ".join(words[i : i + 10])) for i in range(0, 5000, 10)
    ]
    runtime = MapReduceRuntime()
    result = benchmark(lambda: runtime.run(_WordCount(), records))
    assert result


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_runtime_backend_comparison(benchmark, backend):
    """Same wordcount on each execution backend (results identical).

    The interesting quantities are the relative wall times: ``threads``
    measures dispatch overhead under the GIL, ``processes`` measures
    pickling plus true CPU parallelism across 8 map / 8 reduce tasks.
    """
    rng = random.Random(0)
    words = [f"w{rng.randint(0, 2000)}" for _ in range(40000)]
    records = [
        (i, " ".join(words[i : i + 20])) for i in range(0, 40000, 20)
    ]
    runtime = MapReduceRuntime(
        num_map_tasks=8, num_reduce_tasks=8, backend=backend
    )
    result = benchmark.pedantic(
        lambda: runtime.run(_WordCount(), records),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    baseline = MapReduceRuntime(
        num_map_tasks=8, num_reduce_tasks=8
    ).run(_WordCount(), records)
    assert result == baseline


def test_simjoin_exact(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark(lambda: exact_similarity_join(items, consumers, 2.0))
    assert rows


def test_simjoin_scipy(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark(lambda: scipy_similarity_join(items, consumers, 2.0))
    assert rows


def test_simjoin_mapreduce(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark.pedantic(
        lambda: mapreduce_similarity_join(items, consumers, 2.0),
        rounds=1,
        iterations=1,
    )
    assert rows


def test_maximal_matching_centralized(benchmark, mid_graph):
    result = benchmark(
        lambda: maximal_b_matching(mid_graph, rng=random.Random(1))
    )
    assert result


def test_greedy_centralized(benchmark, mid_graph):
    result = benchmark(lambda: greedy_b_matching(mid_graph))
    assert result.value > 0


def test_suitor_centralized(benchmark, mid_graph):
    result = benchmark(lambda: suitor_b_matching(mid_graph))
    # b-Suitor must reproduce the greedy matching (same edge set; the
    # float totals may differ in the last ulp from summation order)
    assert set(result.matching) == set(
        greedy_b_matching(mid_graph).matching
    )


def test_stack_centralized(benchmark, mid_graph):
    result = benchmark.pedantic(
        lambda: stack_b_matching(mid_graph, epsilon=1.0, seed=1),
        rounds=1,
        iterations=1,
    )
    assert result.value > 0
