"""Micro-benchmarks of the substrate components.

These are conventional pytest-benchmark timings (multiple rounds) of
the building blocks: the MapReduce shuffle, the three similarity-join
engines, the maximal-matching engine, and the centralized solvers.
They track the performance of the simulator itself rather than a paper
figure.
"""

import json
import os
import random

import pytest

from repro.datasets import load_dataset
from repro.graph import random_bipartite
from repro.mapreduce import (
    LocalDiskFileSystem,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
)
from repro.matching import (
    greedy_b_matching,
    maximal_b_matching,
    stack_b_matching,
    suitor_b_matching,
)
from repro.simjoin import (
    exact_similarity_join,
    mapreduce_similarity_join,
    scipy_similarity_join,
)


@pytest.fixture(scope="module")
def vectors():
    dataset = load_dataset("flickr-small", seed=1, scale=0.1)
    return dataset.items, dataset.consumers


@pytest.fixture(scope="module")
def mid_graph():
    return random_bipartite(
        120, 80, 0.08, rng=random.Random(5), max_capacity=4
    )


class _WordCount(MapReduceJob):
    has_combiner = True

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def combine(self, word, counts):
        yield word, sum(counts)

    def reduce(self, word, counts):
        yield word, sum(counts)


def test_runtime_shuffle_wordcount(benchmark):
    rng = random.Random(0)
    words = [f"w{rng.randint(0, 500)}" for _ in range(5000)]
    records = [
        (i, " ".join(words[i : i + 10])) for i in range(0, 5000, 10)
    ]
    runtime = MapReduceRuntime()
    result = benchmark(lambda: runtime.run(_WordCount(), records))
    assert result


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_runtime_backend_comparison(benchmark, backend):
    """Same wordcount on each execution backend (results identical).

    The interesting quantities are the relative wall times: ``threads``
    measures dispatch overhead under the GIL, ``processes`` measures
    pickling plus true CPU parallelism across 8 map / 8 reduce tasks.
    """
    rng = random.Random(0)
    words = [f"w{rng.randint(0, 2000)}" for _ in range(40000)]
    records = [
        (i, " ".join(words[i : i + 20])) for i in range(0, 40000, 20)
    ]
    runtime = MapReduceRuntime(
        num_map_tasks=8, num_reduce_tasks=8, backend=backend
    )
    result = benchmark.pedantic(
        lambda: runtime.run(_WordCount(), records),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    baseline = MapReduceRuntime(
        num_map_tasks=8, num_reduce_tasks=8
    ).run(_WordCount(), records)
    assert result == baseline


# -- storage / external-shuffle micro-benchmark -----------------------------
#
# Same wordcount pipeline on each storage configuration: in-memory
# datasets, disk-backed datasets, and disk-backed datasets with the
# external sort-and-spill shuffle at several thresholds.  Results are
# identical by contract; the interesting quantities are the relative
# wall times (the cost of dataset IO and of spilling) and the spill
# counters.  Rows accumulate in _STORAGE_RESULTS and the final test
# writes them to BENCH_storage.json next to this file.

_STORAGE_RESULTS = {}

_STORAGE_CONFIGS = [
    ("memory", "memory", None),
    ("disk", "disk", None),
    ("disk-spill-4000", "disk", 4000),
    ("disk-spill-400", "disk", 400),
    ("disk-spill-40", "disk", 40),
]


def _shuffle_corpus():
    rng = random.Random(0)
    words = [f"w{rng.randint(0, 2000)}" for _ in range(20000)]
    return [
        (i, " ".join(words[i : i + 20])) for i in range(0, 20000, 20)
    ]


@pytest.mark.parametrize(
    "label,storage,threshold",
    _STORAGE_CONFIGS,
    ids=[label for label, _, _ in _STORAGE_CONFIGS],
)
def test_storage_shuffle_spill(benchmark, tmp_path, label, storage, threshold):
    records = _shuffle_corpus()

    def run():
        if storage == "memory":
            fs = None
        else:
            fs = LocalDiskFileSystem(root=str(tmp_path / "dfs"))
        runtime = MapReduceRuntime(
            num_map_tasks=8,
            num_reduce_tasks=8,
            storage=fs,
            spill_threshold=threshold,
            spill_dir=str(tmp_path / "spills"),
        )
        pipeline = Pipeline(runtime=runtime)
        pipeline.filesystem.write("/in", records, overwrite=True)
        pipeline.add(_WordCount(), ["/in"], "/counts")
        output = pipeline.run()
        return output, runtime

    captured = {}

    def timed_run():
        output, runtime = run()
        captured["output"] = output
        captured["runtime"] = runtime
        return output

    baseline = MapReduceRuntime(
        num_map_tasks=8, num_reduce_tasks=8
    ).run(_WordCount(), records)
    result = benchmark.pedantic(
        timed_run, rounds=3, iterations=1, warmup_rounds=1
    )
    assert result == baseline  # the storage contract, under load
    output, runtime = captured["output"], captured["runtime"]
    stats = benchmark.stats.stats  # warmed rounds, not a cold run
    _STORAGE_RESULTS[label] = {
        "storage": storage,
        "spill_threshold": threshold,
        "seconds": round(stats.mean, 4),
        "seconds_min": round(stats.min, 4),
        "records_out": len(output),
        "shuffle_records": runtime.counters.get(
            "runtime", "shuffle.records"
        ),
        "spilled_records": runtime.counters.get(
            "runtime", "spilled_records"
        ),
        "spill_files": runtime.counters.get("runtime", "spill_files"),
        "spilled_bytes": runtime.counters.get("runtime", "spilled_bytes"),
    }
    # Merge into the results file after every configuration, so both a
    # partial/filtered run and a full one preserve previously recorded
    # rows (each label overwrites only itself).
    recorded = {}
    if os.path.exists(_STORAGE_JSON):
        try:
            with open(_STORAGE_JSON, "r", encoding="utf-8") as handle:
                recorded = json.load(handle)
        except ValueError:
            recorded = {}
    recorded.update(_STORAGE_RESULTS)
    with open(_STORAGE_JSON, "w", encoding="utf-8") as handle:
        json.dump(recorded, handle, indent=2, sort_keys=True)
        handle.write("\n")


_STORAGE_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_storage.json"
)


def test_storage_bench_report(report):
    """Print the accumulated BENCH_storage.json rows."""
    if not _STORAGE_RESULTS:
        pytest.skip("storage benchmarks did not run")
    lines = ["storage shuffle/spill micro-benchmark:"]
    for label, _, _ in _STORAGE_CONFIGS:
        row = _STORAGE_RESULTS.get(label)
        if row is None:
            continue
        lines.append(
            f"  {label:>16}: {row['seconds']:.3f}s "
            f"spilled={row['spilled_records']} "
            f"runs={row['spill_files']}"
        )
    lines.append(f"  -> {_STORAGE_JSON}")
    report("\n".join(lines))


def test_simjoin_exact(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark(lambda: exact_similarity_join(items, consumers, 2.0))
    assert rows


def test_simjoin_scipy(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark(lambda: scipy_similarity_join(items, consumers, 2.0))
    assert rows


def test_simjoin_mapreduce(benchmark, vectors):
    items, consumers = vectors
    rows = benchmark.pedantic(
        lambda: mapreduce_similarity_join(items, consumers, 2.0),
        rounds=1,
        iterations=1,
    )
    assert rows


def test_maximal_matching_centralized(benchmark, mid_graph):
    result = benchmark(
        lambda: maximal_b_matching(mid_graph, rng=random.Random(1))
    )
    assert result


def test_greedy_centralized(benchmark, mid_graph):
    result = benchmark(lambda: greedy_b_matching(mid_graph))
    assert result.value > 0


def test_suitor_centralized(benchmark, mid_graph):
    result = benchmark(lambda: suitor_b_matching(mid_graph))
    # b-Suitor must reproduce the greedy matching (same edge set; the
    # float totals may differ in the last ulp from summation order)
    assert set(result.matching) == set(
        greedy_b_matching(mid_graph).matching
    )


def test_stack_centralized(benchmark, mid_graph):
    result = benchmark.pedantic(
        lambda: stack_b_matching(mid_graph, epsilon=1.0, seed=1),
        rounds=1,
        iterations=1,
    )
    assert result.value > 0
