"""Figure 6 — the distribution of edge similarities.

Prints log-binned histograms and tail statistics of the candidate-edge
similarity distribution of each dataset.  Expected shape (as plotted by
the paper): heavy-tailed — the overwhelming majority of candidate edges
carry low weight, with a long high-similarity tail.
"""

from repro.experiments import similarity_distribution_experiment

from .conftest import run_once


def test_fig6_edge_similarity_distributions(benchmark, report):
    data, text = run_once(
        benchmark, lambda: similarity_distribution_experiment()
    )
    report(text)
    assert set(data) == {
        "flickr-small",
        "flickr-large",
        "yahoo-answers",
    }
    for name, entry in data.items():
        summary = entry["summary"]
        histogram = entry["histogram"]
        assert histogram.count > 1000, name
        # heavy tail: the max dwarfs the median and the top 1% of
        # edges holds a disproportionate share of total similarity.
        assert summary["max"] >= 5 * summary["p50"], name
        assert summary["top1_share"] >= 0.02, name
