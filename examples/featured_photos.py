"""Featured-photos scenario: the paper's flickr use case, end to end.

Pipeline (all pieces from the public API):

1. generate a synthetic flickr-like corpus (photos with tags, users
   with tag profiles, favorites, posting activity);
2. compute candidate edges with the MapReduce similarity join (§5.1);
3. derive budgets with the §4 formulas: ``b(u) = α·n(u)`` for users and
   favorites-proportional capacities for photos;
4. match photos to users with GreedyMR and StackMR, and compare
   quality, rounds, and capacity violations;
5. go *live*: keep the matching warm through the online service while
   photos arrive, scores change, budgets retune, and users leave.

Run:  python examples/featured_photos.py
"""

import asyncio

from repro.datasets import flickr_dataset
from repro.graph import BipartiteGraph
from repro.mapreduce import MapReduceRuntime
from repro.matching import (
    deliveries_by_consumer,
    greedy_mr_b_matching,
    stack_mr_b_matching,
)
from repro.service import MatchingService, OnlineMatcher, synthetic_events
from repro.simjoin import mapreduce_similarity_join

SIGMA = 3.0  # minimum tag-overlap score for a candidate edge
ALPHA = 2.0  # system activity multiplier


def main(
    num_photos: int = 400, num_users: int = 80, live_events: int = 40
) -> None:
    dataset = flickr_dataset(
        "flickr-demo", num_photos=num_photos, num_users=num_users, seed=42
    )
    print(
        f"corpus: {dataset.num_items} photos, "
        f"{dataset.num_consumers} users"
    )

    # -- candidate edges via the 3-job MapReduce similarity join ------
    runtime = MapReduceRuntime(num_map_tasks=8, num_reduce_tasks=8)
    edges = mapreduce_similarity_join(
        dataset.items, dataset.consumers, SIGMA, runtime=runtime
    )
    shuffled = runtime.counters.get("runtime", "shuffle.records")
    print(
        f"similarity join: {len(edges)} edges >= {SIGMA} "
        f"({runtime.jobs_executed} jobs, {shuffled:,} records shuffled)"
    )

    # -- budgets per §4 ------------------------------------------------
    item_caps, consumer_caps = dataset.capacities(ALPHA)
    graph = BipartiteGraph.from_edges(edges, item_caps, consumer_caps)

    # -- matching --------------------------------------------------------
    greedy = greedy_mr_b_matching(graph)
    stack = stack_mr_b_matching(graph, epsilon=1.0, seed=7)
    capacities = graph.capacities()
    for result in (greedy, stack):
        report = result.violations(capacities)
        print(
            f"\n{result.algorithm}: value={result.value:,.0f} "
            f"edges={len(result.matching)} "
            f"mr_jobs={result.mr_jobs} "
            f"avg_violation={report.average_violation:.4f}"
        )
    print(
        f"\nGreedyMR/StackMR value ratio: "
        f"{greedy.value / stack.value:.3f} "
        "(paper: 1.11-1.31 depending on dataset)"
    )
    if stack.dual_upper_bound:
        print(
            "certified optimality gap (GreedyMR vs dual bound): "
            f">= {greedy.value / stack.dual_upper_bound:.1%} of optimum"
        )

    # -- §4's subscription-restricted variant --------------------------------
    # Instead of thresholding similarities, restrict candidates to
    # photos by producers the user follows.
    sub_graph = dataset.subscription_graph(alpha=ALPHA)
    sub_result = greedy_mr_b_matching(sub_graph)
    print(
        f"\nsubscription-only variant: {sub_graph.num_edges} candidate "
        f"edges (vs {graph.num_edges} thresholded), GreedyMR value "
        f"{sub_result.value:,.0f}"
    )

    # -- what one user sees -------------------------------------------------
    user = max(consumer_caps, key=consumer_caps.get)
    feed = deliveries_by_consumer(graph, greedy.matching).get(user, [])
    print(
        f"\nfeatured feed for {user} "
        f"(budget {consumer_caps[user]}): "
        + ", ".join(f"{item}({weight:.0f})" for item, weight in feed[:8])
    )

    # -- live mode: the feed stays warm as the site churns ---------------
    # The batch answer above is the bootstrap; from here the online
    # service admits uploads / re-scores / budget retunes / departures
    # in micro-batches and re-converges only the affected components.
    events, _ = synthetic_events(
        graph, live_events, seed=42, node_prefix="upload"
    )

    async def live():
        async with MatchingService(
            OnlineMatcher(graph=graph), max_batch=8, max_delay=0.02
        ) as service:
            await asyncio.gather(
                *(service.submit_event(event) for event in events)
            )
            snap = await service.snapshot()
            identical, _ = service.matcher.verify()
        return snap, service.metrics(), identical

    snap, metrics, identical = asyncio.run(live())
    print(
        f"\nlive mode: {metrics['events_admitted']:.0f} events in "
        f"{metrics['batches_flushed']:.0f} flushes "
        f"(coalescing x{metrics['coalescing_ratio']:.1f}), "
        f"p95 re-convergence {metrics['latency_p95_ms']:.0f}ms"
    )
    print(
        f"live matching: {snap['matched_edges']} edges, "
        f"value {snap['value']:,.0f} — cold-batch check "
        + ("identical" if identical else "MISMATCH")
    )


if __name__ == "__main__":
    main()
