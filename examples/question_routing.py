"""Question-routing scenario: the paper's Yahoo! Answers use case.

Open questions must reach users likely to answer them.  Users are
profiled by the tf·idf vector of their past answers; questions get
uniform budgets ``b(q) = Σ_u α·n(u) / |Q|`` (§6).  The example also
shows the raw text pipeline: tokenize -> stop words -> stem -> tf·idf.

The closing section goes live: questions keep arriving while the
routing stays warm through the online matching service.

Run:  python examples/question_routing.py
"""

import asyncio

from repro.datasets import yahoo_answers_dataset
from repro.matching import greedy_mr_b_matching, solve
from repro.service import MatchingService, OnlineMatcher, synthetic_events
from repro.text import (
    TfIdfModel,
    from_counts,
    remove_stop_words,
    stem,
    tokenize,
)

ALPHA = 1.0
SIGMA = 3.0


def text_pipeline_demo() -> None:
    """The §6 preprocessing chain on a real sentence."""
    raw = "How do I optimize my MapReduce jobs for matching problems?"
    tokens = remove_stop_words(tokenize(raw))
    stems = [stem(token) for token in tokens]
    print(f"raw:    {raw}")
    print(f"tokens: {tokens}")
    print(f"stems:  {stems}")
    model = TfIdfModel.fit([from_counts(stems)])
    print(f"tf-idf: {model.transform(from_counts(stems))}\n")


def main(
    num_questions: int = 300, num_users: int = 60, live_events: int = 30
) -> None:
    text_pipeline_demo()

    dataset = yahoo_answers_dataset(
        "ya-demo", num_questions=num_questions, num_users=num_users, seed=9
    )
    graph = dataset.graph(sigma=SIGMA, alpha=ALPHA)
    question_budget = graph.capacity(graph.items()[0])
    print(
        f"{dataset.num_items} open questions, "
        f"{dataset.num_consumers} answerers, "
        f"{graph.num_edges} candidate pairs at sigma={SIGMA}; "
        f"every question budget b(q)={question_budget}"
    )

    result = greedy_mr_b_matching(graph)
    print(
        f"\nGreedyMR routed {len(result.matching)} question-user pairs "
        f"(total relevance {result.value:,.1f}, "
        f"{result.rounds} MapReduce rounds)"
    )

    # Which questions reached a full audience?
    fully_served = sum(
        1
        for question in graph.items()
        if result.matching.degree(question) >= question_budget
    )
    print(
        f"questions at full budget: {fully_served}/{dataset.num_items}"
    )

    # Compare against the exact optimum on this instance.
    optimum = solve(graph, "exact_flow")
    print(
        f"exact optimum: {optimum.value:,.1f} "
        f"(GreedyMR at {result.value / optimum.value:.1%}, "
        "guarantee is 50%)"
    )

    # Sample assignment for one busy answerer.
    busiest = max(
        graph.consumers(), key=lambda user: result.matching.degree(user)
    )
    questions = [
        key[0] if key[0].startswith("t") else key[1]
        for key in result.matching
        if busiest in key
    ]
    print(
        f"\nuser {busiest} receives {len(questions)} questions, e.g. "
        + ", ".join(sorted(questions)[:6])
    )

    # -- live mode: new questions arrive, the routing stays warm ---------
    events, _ = synthetic_events(
        graph, live_events, seed=9, node_prefix="question"
    )

    async def live():
        async with MatchingService(
            OnlineMatcher(graph=graph), max_batch=6, max_delay=0.02
        ) as service:
            await asyncio.gather(
                *(service.submit_event(event) for event in events)
            )
            snap = await service.snapshot()
            identical, _ = service.matcher.verify()
        return snap, service.metrics(), identical

    snap, metrics, identical = asyncio.run(live())
    print(
        f"\nlive mode: {metrics['events_admitted']:.0f} events in "
        f"{metrics['batches_flushed']:.0f} flushes "
        f"(coalescing x{metrics['coalescing_ratio']:.1f}); routing "
        f"value {snap['value']:,.1f} — cold-batch check "
        + ("identical" if identical else "MISMATCH")
    )


if __name__ == "__main__":
    main()
