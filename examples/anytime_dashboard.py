"""Any-time matching: stop GreedyMR early, serve the current solution.

§5.4/§6: GreedyMR "maintains a feasible solution at each step.
Therefore the algorithm can be terminated at any step and return the
current solution ... content can be delivered to the users almost
immediately and the algorithm can continue running in the background."

This example renders the Figure 5 convergence curve as a terminal
dashboard and shows the quality you would serve if you stopped after
25% / 50% / 75% of the rounds.

Run:  python examples/anytime_dashboard.py
"""

from repro.datasets import flickr_dataset
from repro.matching import greedy_mr_b_matching

BAR_WIDTH = 48


def main(num_photos: int = 500, num_users: int = 90) -> None:
    dataset = flickr_dataset(
        "flickr-anytime", num_photos=num_photos, num_users=num_users, seed=5
    )
    graph = dataset.graph(sigma=2.0, alpha=2.0)
    print(
        f"instance: {graph.num_edges} edges, "
        f"{graph.num_nodes} nodes\n"
    )

    result = greedy_mr_b_matching(graph)
    history = result.value_history
    final = history[-1]

    print("round  value        fraction")
    for round_number, value in enumerate(history, start=1):
        fraction = value / final
        bar = "#" * int(fraction * BAR_WIDTH)
        print(
            f"{round_number:>5}  {value:>11,.0f}  "
            f"{fraction:>7.1%} |{bar}"
        )

    rounds_at_95 = result.iterations_to_fraction(0.95)
    print(
        f"\n95% of the final value after round {rounds_at_95} of "
        f"{result.rounds} "
        f"({rounds_at_95 / result.rounds:.1%} of the iterations; "
        "paper reports 29-44% across its datasets)"
    )
    for stop in (0.25, 0.5, 0.75):
        index = max(int(stop * len(history)) - 1, 0)
        print(
            f"stopping at {stop:.0%} of rounds serves "
            f"{history[index] / final:.2%} of the final value"
        )


if __name__ == "__main__":
    main()
