"""Quickstart: b-matching on a hand-built bipartite graph.

Builds the tiny "featured item" scenario of the paper's introduction:
three photos, two users, relevance-weighted edges, per-node budgets —
then solves it with GreedyMR (through the MapReduce simulator), the
centralized stack algorithm, and the exact solver.

Run:  python examples/quickstart.py
"""

from repro import BipartiteGraph, solve


def main() -> None:
    graph = BipartiteGraph()

    # Items to distribute (capacity = how many users may receive each).
    graph.add_item("sunset-photo", capacity=2)
    graph.add_item("cat-photo", capacity=1)
    graph.add_item("city-photo", capacity=1)

    # Consumers (capacity = how many items each should be shown).
    graph.add_consumer("alice", capacity=2)
    graph.add_consumer("bob", capacity=1)

    # Relevance scores (e.g. tag-vector dot products).
    graph.add_edge("sunset-photo", "alice", 0.9)
    graph.add_edge("sunset-photo", "bob", 0.7)
    graph.add_edge("cat-photo", "alice", 0.8)
    graph.add_edge("cat-photo", "bob", 0.3)
    graph.add_edge("city-photo", "bob", 0.5)

    items = set(graph.items())
    print("Problem:", graph.num_edges, "candidate edges")
    for name in ("greedy_mr", "stack_mr", "exact_flow"):
        result = solve(graph, name)
        print(f"\n{result.algorithm}: total relevance "
              f"{result.value:.2f}")
        for u, v, weight in sorted(
            result.matching.edges(), key=lambda row: -row[2]
        ):
            item, user = (u, v) if u in items else (v, u)
            print(f"  deliver {item:<14} -> {user:<6} (w={weight})")
        if result.mr_jobs:
            print(f"  ({result.mr_jobs} simulated MapReduce jobs)")


if __name__ == "__main__":
    main()
