"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.mapreduce import Counters, MapReduceRuntime

# One moderate default profile: property tests are plentiful, so each
# keeps a modest example budget to bound total suite time.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def runtime() -> MapReduceRuntime:
    """A default 4x4 simulated cluster with fresh counters."""
    return MapReduceRuntime(
        num_map_tasks=4, num_reduce_tasks=4, counters=Counters()
    )


@pytest.fixture
def single_task_runtime() -> MapReduceRuntime:
    """A 1x1 cluster — used to check task-count independence."""
    return MapReduceRuntime(
        num_map_tasks=1, num_reduce_tasks=1, counters=Counters()
    )


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG for deterministic randomized tests."""
    return random.Random(0xC0FFEE)
