"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.mapreduce import Counters, LocalDiskFileSystem, MapReduceRuntime
from repro.mapreduce.executors import EXECUTOR_BACKENDS
from repro.mapreduce.storage import canonical_backend

# One moderate default profile: property tests are plentiful, so each
# keeps a modest example budget to bound total suite time.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")

# Execution backends the `runtime` fixture cycles through.  CI narrows
# this (e.g. REPRO_TEST_BACKENDS=processes for the smoke job); the
# default exercises every backend so backend-sensitive regressions
# surface in the ordinary suite.
BACKENDS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_BACKENDS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)

# Storage configuration for the `runtime` fixture.  The out-of-core CI
# job sets REPRO_TEST_FS=disk (tmpdir-backed datasets) and
# REPRO_TEST_SPILL_THRESHOLD to a small value that forces the external
# sort-and-spill shuffle, so the whole tier-1 suite also proves the
# out-of-core path — results are bit-identical by contract.
STORAGE = canonical_backend(
    os.environ.get("REPRO_TEST_FS", "memory").strip() or "memory"
)
_SPILL = os.environ.get("REPRO_TEST_SPILL_THRESHOLD", "").strip()
SPILL_THRESHOLD = int(_SPILL) if _SPILL else None


def pytest_collection_modifyitems(config, items):
    """Tag every test that runs on the cluster backend.

    Any test parametrized (directly or via a fixture) with the value
    ``"cluster"`` gets the ``cluster`` marker, so the multi-process
    backend can be selected (``-m cluster``) or skipped
    (``-m "not cluster"``) without per-test bookkeeping.  Tests in the
    dedicated cluster module mark themselves via ``pytestmark``.
    """
    for item in items:
        callspec = getattr(item, "callspec", None)
        if callspec and "cluster" in callspec.params.values():
            item.add_marker(pytest.mark.cluster)


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    """Each configured execution backend in turn."""
    return request.param


@pytest.fixture(params=EXECUTOR_BACKENDS)
def all_backends(request) -> str:
    """Every *registered* backend, ignoring the env narrowing.

    ``backend`` follows REPRO_TEST_BACKENDS so CI matrix jobs can run
    one cell at a time; this fixture always cycles the full registry
    (serial, threads, processes, cluster) — for the registry-driven
    smoke tests that must prove each backend at least boots and agrees,
    no matter how the matrix is narrowed.
    """
    return request.param


@pytest.fixture
def runtime(backend, tmp_path) -> MapReduceRuntime:
    """A default 4x4 simulated cluster, parametrized over backends.

    Tests using this fixture run once per execution backend; jobs they
    submit must therefore be picklable (module-level classes).  Storage
    (filesystem backend + spill threshold) follows REPRO_TEST_FS /
    REPRO_TEST_SPILL_THRESHOLD, defaulting to in-memory with no spill.
    """
    if STORAGE == "memory":
        storage = None
    else:
        storage = LocalDiskFileSystem(root=str(tmp_path / "dfs"))
    return MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        backend=backend,
        storage=storage,
        spill_threshold=SPILL_THRESHOLD,
        spill_dir=str(tmp_path / "spills"),
    )


@pytest.fixture
def single_task_runtime() -> MapReduceRuntime:
    """A 1x1 cluster — used to check task-count independence."""
    return MapReduceRuntime(
        num_map_tasks=1, num_reduce_tasks=1, counters=Counters()
    )


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG for deterministic randomized tests."""
    return random.Random(0xC0FFEE)
