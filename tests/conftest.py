"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.mapreduce import Counters, MapReduceRuntime

# One moderate default profile: property tests are plentiful, so each
# keeps a modest example budget to bound total suite time.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")

# Execution backends the `runtime` fixture cycles through.  CI narrows
# this (e.g. REPRO_TEST_BACKENDS=processes for the smoke job); the
# default exercises every backend so backend-sensitive regressions
# surface in the ordinary suite.
BACKENDS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_BACKENDS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    """Each configured execution backend in turn."""
    return request.param


@pytest.fixture
def runtime(backend) -> MapReduceRuntime:
    """A default 4x4 simulated cluster, parametrized over backends.

    Tests using this fixture run once per execution backend; jobs they
    submit must therefore be picklable (module-level classes).
    """
    return MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        backend=backend,
    )


@pytest.fixture
def single_task_runtime() -> MapReduceRuntime:
    """A 1x1 cluster — used to check task-count independence."""
    return MapReduceRuntime(
        num_map_tasks=1, num_reduce_tasks=1, counters=Counters()
    )


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG for deterministic randomized tests."""
    return random.Random(0xC0FFEE)
