"""Tests for result rows and shape checks."""

from repro.datasets import Dataset
from repro.experiments import evaluate_checks, run_algorithm
from repro.experiments.metrics import ResultRow
from repro.graph import BipartiteGraph


def tiny_graph() -> BipartiteGraph:
    g = BipartiteGraph()
    g.add_item("t1", 1)
    g.add_item("t2", 1)
    g.add_consumer("c1", 2)
    g.add_edge("t1", "c1", 3.0)
    g.add_edge("t2", "c1", 1.0)
    return g


def test_run_algorithm_collects_metrics():
    row = run_algorithm(
        "tiny", tiny_graph(), "greedy_mr", sigma=1.0, alpha=2.0
    )
    assert row.algorithm == "GreedyMR"
    assert row.value == 4.0
    assert row.feasible
    assert row.mr_jobs == row.rounds > 0
    assert row.num_edges == 2
    assert row.wall_seconds >= 0
    as_dict = row.as_dict()
    assert as_dict["value"] == 4.0
    assert as_dict["dataset"] == "tiny"


def test_run_algorithm_passes_epsilon_to_stack():
    row = run_algorithm(
        "tiny", tiny_graph(), "stack_mr", sigma=1.0, alpha=2.0, epsilon=0.5
    )
    assert row.algorithm == "StackMR"
    assert row.epsilon == 0.5
    assert row.dual_upper_bound is not None


def _row(algorithm, sigma, alpha, value, edges, violation=0.0):
    return ResultRow(
        dataset="d",
        algorithm=algorithm,
        sigma=sigma,
        alpha=alpha,
        epsilon=1.0,
        num_edges=edges,
        value=value,
        rounds=1,
        mr_jobs=1,
        layers=0,
        avg_violation=violation,
        max_violation=violation,
        feasible=violation == 0,
        dual_upper_bound=None,
        wall_seconds=0.0,
        result=None,
    )


def test_greedy_vs_stack_check_passes_when_greedy_wins():
    rows = [
        _row("GreedyMR", 1.0, 2.0, 100.0, 10),
        _row("StackMR", 1.0, 2.0, 80.0, 10),
    ]
    checks = evaluate_checks(rows)
    greedy_check = [
        c for c in checks if "GreedyMR value >= StackMR" in c.name
    ]
    assert greedy_check and greedy_check[0].passed


def test_greedy_vs_stack_check_fails_when_stack_wins():
    rows = [
        _row("GreedyMR", 1.0, 2.0, 70.0, 10),
        _row("StackMR", 1.0, 2.0, 80.0, 10),
    ]
    checks = evaluate_checks(rows)
    greedy_check = [
        c for c in checks if "GreedyMR value >= StackMR" in c.name
    ]
    assert greedy_check and not greedy_check[0].passed


def test_monotonicity_check():
    rows = [
        _row("GreedyMR", 2.0, 2.0, 50.0, 5),
        _row("GreedyMR", 1.0, 2.0, 100.0, 10),
    ]
    checks = evaluate_checks(rows)
    monotone = [c for c in checks if "grows with edges" in c.name]
    assert monotone and monotone[0].passed
    rows[1] = _row("GreedyMR", 1.0, 2.0, 40.0, 10)
    checks = evaluate_checks(rows)
    monotone = [c for c in checks if "grows with edges" in c.name]
    assert monotone and not monotone[0].passed


def test_violation_check_threshold():
    ok = _row("StackMR", 1.0, 2.0, 10.0, 5, violation=0.05)
    bad = _row("StackMR", 1.0, 2.0, 10.0, 5, violation=0.5)
    ok_checks = [
        c
        for c in evaluate_checks([ok])
        if "violations small" in c.name
    ]
    bad_checks = [
        c
        for c in evaluate_checks([bad])
        if "violations small" in c.name
    ]
    assert ok_checks[0].passed
    assert not bad_checks[0].passed


def test_check_line_format():
    check = evaluate_checks(
        [_row("StackMR", 1.0, 2.0, 10.0, 5)]
    )[0]
    assert check.line().startswith("[PASS]") or check.line().startswith(
        "[FAIL]"
    )
