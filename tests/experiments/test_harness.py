"""Tests for the sweep harness (tiny scales for speed)."""

import pytest

from repro.experiments import SweepSpec, run_sweep, sigma_grid
from repro.datasets import load_dataset

TINY = SweepSpec(
    dataset="flickr-small",
    scale=0.03,
    floor_sigma=1.0,
    edge_fractions=(0.2, 0.6),
    alphas=(2.0,),
    epsilon=1.0,
    algorithms=("greedy_mr", "stack_mr"),
)


@pytest.fixture(scope="module")
def outcome():
    return run_sweep(TINY, seed=0)


def test_sigma_grid_hits_requested_fractions():
    dataset = load_dataset("flickr-small", seed=0, scale=0.03)
    total = len(dataset.edges(1.0))
    sigmas = sigma_grid(dataset, (0.2, 0.6), 1.0)
    assert len(sigmas) >= 1
    for sigma, fraction in zip(sigmas, sorted((0.2, 0.6))):
        count = len(dataset.edges(sigma))
        assert count >= fraction * total * 0.5  # quantile inversion


def test_sweep_produces_rows_for_every_cell(outcome):
    expected = len(outcome.sigmas) * len(TINY.alphas) * len(
        TINY.algorithms
    )
    assert len(outcome.rows) == expected
    algorithms = {row.algorithm for row in outcome.rows}
    assert algorithms == {"GreedyMR", "StackMR"}


def test_sweep_rows_have_metrics(outcome):
    for row in outcome.rows:
        assert row.value > 0
        assert row.num_edges > 0
        assert row.mr_jobs > 0
        assert row.dataset == "flickr-small"


def test_series_extraction(outcome):
    xs, ys = outcome.series("GreedyMR", 2.0, "value")
    assert len(xs) == len(outcome.sigmas)
    assert xs == sorted(xs)
    assert all(y > 0 for y in ys)


def test_algorithm_kwargs_forwarded():
    spec = SweepSpec(
        dataset="flickr-small",
        scale=0.03,
        floor_sigma=1.0,
        edge_fractions=(0.3,),
        algorithms=("stack_mr",),
    )
    outcome = run_sweep(
        spec, seed=0, algorithm_kwargs={"stack_mr": {"seed": 11}}
    )
    assert len(outcome.rows) == 1
