"""Tests for the ASCII reporting helpers."""

from repro.experiments import ascii_table, banner, format_rows, series_block


def test_ascii_table_alignment():
    table = ascii_table(["name", "n"], [["a", 1], ["longer", 22]])
    lines = table.splitlines()
    assert lines[0].startswith("+")
    assert len({len(line) for line in lines}) == 1  # rectangular
    assert "longer" in table
    assert "22" in table


def test_cell_formatting():
    table = ascii_table(
        ["x"], [[1234567], [0.12345], [3.14159], [12345.6]]
    )
    assert "1,234,567" in table
    assert "0.1235" in table  # 4 decimals below 1
    assert "3.14" in table  # 2 decimals above 1
    assert "12,346" in table  # thousands formatting


def test_format_rows_selects_columns():
    rows = [{"a": 1, "b": 2}, {"a": 3}]
    table = format_rows(rows, ["a", "b"])
    assert "1" in table and "2" in table and "3" in table


def test_banner():
    text = banner("Hello")
    assert "Hello" in text
    assert "=====" in text


def test_series_block():
    block = series_block("fig", [1, 2], [10.0, 20.0], "edges", "value")
    assert "fig" in block
    assert "edges" in block and "value" in block
    assert "10" in block and "20" in block
