"""CLI smoke tests for python -m repro.experiments."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_experiments_menu_complete():
    assert set(EXPERIMENTS) == {
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
    }


def test_main_runs_selected_experiment(capsys):
    code = main(["--scale", "0.05", "--only", "table1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "completed in" in out


def test_main_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["--only", "fig99"])
