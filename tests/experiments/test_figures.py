"""Smoke tests for the figure experiments at tiny scale."""

import pytest

from repro.experiments import (
    anytime_experiment,
    capacity_distribution_experiment,
    similarity_distribution_experiment,
    table1_experiment,
    value_iterations_experiment,
    violations_experiment,
)

SCALE = 0.1  # multiplies the already-small per-figure defaults


def test_table1(capsys):
    rows, text = table1_experiment(scale_multiplier=SCALE, seed=0)
    assert len(rows) == 3
    assert "flickr-small" in text
    for row in rows:
        assert row["|T| measured"] > 0
        assert row["|E| measured"] > 0
        assert row["|E| paper"] > 0


def test_figure1_rows_and_checks():
    outcome, text = value_iterations_experiment(
        "fig1", scale_multiplier=SCALE, seed=0
    )
    assert outcome.rows
    assert "Figure 1" in text
    assert "GreedyMR" in text
    assert "[PASS]" in text


def test_figure4_violations():
    outcomes, text = violations_experiment(
        scale_multiplier=SCALE, seed=0
    )
    assert outcomes[0].rows
    assert "Figure 4" in text
    for row in outcomes[0].rows:
        assert row.algorithm == "StackMR"
        assert row.avg_violation >= 0.0


def test_figure5_anytime():
    rows, text = anytime_experiment(scale_multiplier=SCALE, seed=0)
    assert len(rows) == 3
    assert "Figure 5" in text
    for row in rows:
        assert 0 < row["fraction measured"] <= 1.0
        assert row["iterations"] >= 1


def test_figure6_similarity_distributions():
    data, text = similarity_distribution_experiment(
        scale_multiplier=SCALE, seed=0
    )
    assert set(data) == {
        "flickr-small",
        "flickr-large",
        "yahoo-answers",
    }
    assert "Figure 6" in text
    for entry in data.values():
        assert entry["histogram"].count > 0
        assert entry["summary"]["max"] >= entry["summary"]["p50"]


def test_figure7_capacity_distributions():
    data, text = capacity_distribution_experiment(
        scale_multiplier=SCALE, seed=0
    )
    assert "Figure 7" in text
    ya = data["yahoo-answers"]["items"]["summary"]
    assert ya["min"] == ya["max"]  # constant question capacity
    fl = data["flickr-large"]["items"]["summary"]
    assert fl["max"] > fl["p50"]  # skew
