"""Unit tests for the live event vocabulary and its one semantic
authority, :func:`repro.service.events.apply_event`."""

import pytest

from repro.graph import BipartiteGraph, Graph
from repro.service import (
    Arrival,
    CapacityChange,
    EdgeArrival,
    EventError,
    Retirement,
    apply_event,
    plain_graph,
)


def _base_graph() -> Graph:
    g = Graph()
    g.add_node("a", 2)
    g.add_node("b", 1)
    g.add_node("c", 1)
    g.add_edge("a", "b", 2.0)
    return g


def _snapshot(g: Graph):
    return (g.capacities(), sorted(g.edges()))


# -- Arrival ----------------------------------------------------------------


def test_arrival_adds_node_and_edges():
    g = _base_graph()
    apply_event(g, Arrival("d", capacity=3, edges=(("a", 1.5), ("c", 0.5))))
    assert g.capacity("d") == 3
    assert g.weight("d", "a") == 1.5
    assert g.weight("d", "c") == 0.5


def test_arrival_with_zero_capacity_is_valid():
    g = _base_graph()
    apply_event(g, Arrival("d", capacity=0))
    assert g.capacity("d") == 0


@pytest.mark.parametrize(
    "event, reason",
    [
        (Arrival("a"), "existing node"),
        (Arrival("d", capacity=-1), "must be >= 0"),
        (Arrival("d", edges=(("d", 1.0),)), "self-loop"),
        (Arrival("d", edges=(("a", 1.0), ("a", 2.0))), "repeats edge"),
        (Arrival("d", edges=(("nope", 1.0),)), "unknown"),
        (Arrival("d", edges=(("a", 0.0),)), "positive"),
        (EdgeArrival("a", "a", 1.0), "self-loop"),
        (EdgeArrival("a", "nope", 1.0), "unknown node"),
        (EdgeArrival("a", "c", -2.0), "positive"),
        (CapacityChange("nope", 1), "unknown node"),
        (CapacityChange("a", -1), "must be >= 0"),
        (Retirement("nope"), "unknown node"),
    ],
)
def test_invalid_events_reject_without_mutating(event, reason):
    g = _base_graph()
    before = _snapshot(g)
    with pytest.raises(EventError, match=reason):
        apply_event(g, event)
    assert _snapshot(g) == before


# -- EdgeArrival ------------------------------------------------------------


def test_edge_arrival_adds_edge():
    g = _base_graph()
    apply_event(g, EdgeArrival("a", "c", 4.0))
    assert g.weight("a", "c") == 4.0


def test_edge_arrival_rescores_existing_edge():
    g = _base_graph()
    apply_event(g, EdgeArrival("a", "b", 9.0))
    assert g.weight("a", "b") == 9.0
    assert g.num_edges == 1


# -- CapacityChange / Retirement --------------------------------------------


def test_capacity_change_retunes_in_place():
    g = _base_graph()
    apply_event(g, CapacityChange("a", 0))
    assert g.capacity("a") == 0
    assert g.weight("a", "b") == 2.0  # edges survive a benching


def test_retirement_removes_node_and_incident_edges():
    g = _base_graph()
    apply_event(g, Retirement("a"))
    assert not g.has_node("a")
    assert g.num_edges == 0
    assert g.has_node("b")


# -- plain_graph ------------------------------------------------------------


def test_plain_graph_drops_bipartite_bookkeeping():
    bg = BipartiteGraph()
    bg.add_item("t", 2)
    bg.add_consumer("u", 1)
    bg.add_edge("t", "u", 3.0)
    plain = plain_graph(bg)
    assert isinstance(plain, Graph) and not isinstance(
        plain, BipartiteGraph
    )
    assert plain.capacities() == {"t": 2, "u": 1}
    assert plain.weight("t", "u") == 3.0
    # It's a copy: mutating it leaves the source untouched.
    plain.remove_node("t")
    assert bg.has_node("t")


def test_plain_graph_of_none_is_empty():
    assert plain_graph(None).num_nodes == 0
