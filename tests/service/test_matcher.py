"""The online matcher's contract: incremental == cold batch, always.

The deterministic tests pin the adversarial shapes that break naive
residual re-convergence (a heavy arrival that must displace an existing
matched edge; a benched node whose matches must drop; a retirement felt
two hops away).  The property test then drives seeded synthetic event
streams through micro-batched flushes across every configured execution
backend (× the storage/spill env knobs) and asserts the re-converged
matching is bit-identical to sequential greedy on the mirror's final
graph — which equals cold-batch GreedyMR by the matching layer's own
equivalence tests.
"""

import os
import random
import tempfile
from contextlib import contextmanager

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import Graph
from repro.mapreduce import Counters, LocalDiskFileSystem, MapReduceRuntime
from repro.mapreduce.state import STATE_POINT_COUNTERS
from repro.matching import greedy_b_matching, greedy_mr_b_matching
from repro.service import (
    SERVICE_COUNTER_GROUP,
    Arrival,
    CapacityChange,
    EdgeArrival,
    OnlineMatcher,
    Retirement,
    synthetic_events,
)

from ..conftest import BACKENDS, SPILL_THRESHOLD, STORAGE

backend_matrix = pytest.mark.parametrize("backend", BACKENDS)


@contextmanager
def _cell_runtime(backend: str):
    """A fresh runtime per example (pristine counters, clean tmp)."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        if STORAGE == "memory":
            storage = None
        else:
            storage = LocalDiskFileSystem(root=os.path.join(tmp, "dfs"))
        yield MapReduceRuntime(
            num_map_tasks=4,
            num_reduce_tasks=4,
            counters=Counters(),
            backend=backend,
            storage=storage,
            spill_threshold=SPILL_THRESHOLD,
            spill_dir=os.path.join(tmp, "spills"),
        )


def _seeded_graph(seed: int, n: int = 8) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}", rng.randint(1, 3))
    nodes = sorted(g.nodes())
    for _ in range(2 * n):
        u, v = rng.sample(nodes, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice((0.5, 1.0, 2.0, 3.0, 7.0)))
    return g


def _assert_cold_identical(matcher: OnlineMatcher, mirror: Graph):
    cold = greedy_b_matching(mirror)
    assert matcher.matching_edges() == sorted(cold.matching.edges())
    assert matcher.value == pytest.approx(cold.value)
    identical, cold_value = matcher.verify()
    assert identical and cold_value == pytest.approx(cold.value)


# -- deterministic scenarios ------------------------------------------------


def test_bootstrap_matches_cold_batch():
    g = _seeded_graph(0)
    with OnlineMatcher(graph=g) as m:
        _assert_cold_identical(m, g)
        assert m.num_nodes == g.num_nodes
        assert m.num_edges == g.num_edges


def test_heavy_arrival_displaces_existing_match():
    # a-b (w=2) is matched at bootstrap; then x arrives with a w=10
    # edge to a (capacity 1).  Greedy on the final graph matches x-a
    # and drops a-b: residual state could never produce this (greedy
    # cannot un-match), so it proves real component recomputation.
    g = Graph()
    g.add_node("a", 1)
    g.add_node("b", 1)
    g.add_edge("a", "b", 2.0)
    with OnlineMatcher(graph=g) as m:
        assert m.matching_edges() == [("a", "b", 2.0)]
        report = m.flush([Arrival("x", capacity=1, edges=(("a", 10.0),))])
        assert report.admitted == 1 and not report.rejected
        assert m.matching_edges() == [("a", "x", 10.0)]
        assert m.match_lookup("b") == {}


def test_benching_drops_matches_without_touching_edges():
    g = _seeded_graph(1)
    with OnlineMatcher(graph=g) as m:
        matched = [n for n in sorted(g.nodes()) if m.match_lookup(n)]
        node = matched[0]
        m.flush([CapacityChange(node, 0)])
        assert m.match_lookup(node) == {}
        mirror = Graph()
        for name, cap in g.capacities().items():
            mirror.add_node(name, 0 if name == node else cap)
        for e in g.edges():
            mirror.add_edge(e.u, e.v, e.weight)
        _assert_cold_identical(m, mirror)


def test_retirement_reconverges_former_neighborhood():
    g = _seeded_graph(2)
    with OnlineMatcher(graph=g) as m:
        node = next(iter(sorted(g.nodes(), key=g.degree, reverse=True)))
        m.flush([Retirement(node)])
        assert m.match_lookup(node) == {}
        mirror = Graph()
        for name, cap in g.capacities().items():
            if name != node:
                mirror.add_node(name, cap)
        for e in g.edges():
            if node not in (e.u, e.v):
                mirror.add_edge(e.u, e.v, e.weight)
        assert m.num_nodes == mirror.num_nodes
        assert m.num_edges == mirror.num_edges
        _assert_cold_identical(m, mirror)


def test_rejected_event_reports_without_poisoning_batch():
    g = _seeded_graph(3)
    with OnlineMatcher(graph=g) as m:
        report = m.flush(
            [
                Arrival("n0"),  # exists: rejected
                Arrival("fresh", capacity=1, edges=(("n0", 5.0),)),
                EdgeArrival("fresh", "fresh", 1.0),  # self-loop
            ]
        )
        assert report.admitted == 1
        assert len(report.rejected) == 2
        assert "existing node" in report.rejected[0][1]
        assert "self-loop" in report.rejected[1][1]
        assert m.graph_store.contains("fresh")
        counters = m.runtime.counters.group(SERVICE_COUNTER_GROUP)
        assert counters["events.rejected"] == 2
        assert counters["events.admitted"] == 1


def test_flush_counters_and_report_agree():
    g = _seeded_graph(4)
    with OnlineMatcher(graph=g) as m:
        events, mirror = synthetic_events(g, 9, seed=4)
        reports = [m.flush(events[i : i + 3]) for i in range(0, 9, 3)]
        counters = m.runtime.counters.group(SERVICE_COUNTER_GROUP)
        assert counters["batches.flushed"] == 3
        assert counters["events.admitted"] == 9
        assert counters["reconverge.rounds"] == sum(
            r.rounds for r in reports
        )
        # Only event flushes are latency samples (not the bootstrap).
        assert len(m.flush_seconds) == 3
        _assert_cold_identical(m, mirror)


def test_empty_flush_is_a_noop_round_trip():
    g = _seeded_graph(5)
    with OnlineMatcher(graph=g) as m:
        before = m.matching_edges()
        report = m.flush([])
        assert report.admitted == 0 and report.rounds == 0
        assert m.matching_edges() == before


def test_bootstrap_equals_greedy_mr_cold_batch():
    g = _seeded_graph(6)
    with OnlineMatcher(graph=g) as m:
        cold = greedy_mr_b_matching(g)
        assert m.matching_edges() == sorted(cold.matching.edges())


def test_events_on_empty_bootstrap():
    with OnlineMatcher() as m:
        assert m.matching_edges() == []
        m.flush(
            [
                Arrival("a", capacity=1),
                Arrival("b", capacity=1, edges=(("a", 3.0),)),
            ]
        )
        assert m.matching_edges() == [("a", "b", 3.0)]
        mirror = Graph()
        mirror.add_node("a", 1)
        mirror.add_node("b", 1)
        mirror.add_edge("a", "b", 3.0)
        _assert_cold_identical(m, mirror)


def test_snapshot_shape():
    g = _seeded_graph(7)
    with OnlineMatcher(graph=g) as m:
        snap = m.snapshot()
        assert snap["nodes"] == g.num_nodes
        assert snap["candidate_edges"] == g.num_edges
        assert snap["matched_edges"] == len(snap["matching"])
        assert snap["value"] == pytest.approx(m.value)
        assert snap["counters"]["bootstrap.rounds"] >= 1


def test_parked_graph_store_serves_admission_via_point_ops():
    """Past the spill threshold the graph store parks between flushes
    and per-event admission flows through the single-key apply path —
    the point counters must fire and bit-identity must still hold."""
    runtime = MapReduceRuntime(spill_threshold=2, counters=Counters())
    g = _seeded_graph(8, n=10)
    with OnlineMatcher(runtime=runtime, graph=g) as m:
        events, mirror = synthetic_events(g, 30, seed=8)
        for i in range(0, 30, 5):
            m.flush(events[i : i + 5])
        _assert_cold_identical(m, mirror)
        group = runtime.counters.group(m.graph_store.name)
        for name in STATE_POINT_COUNTERS:
            assert group.get(name, 0) > 0, name


# -- the property: incremental == cold batch, across the matrix -------------


@backend_matrix
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch=st.integers(min_value=1, max_value=5),
)
def test_incremental_equals_cold_batch_matrix(seed, batch, backend):
    """Any seeded event stream, any batching, any backend × storage:
    the re-converged matching equals sequential greedy on the final
    mirror graph (hence cold-batch GreedyMR, by the matching layer's
    equivalence tests)."""
    graph = _seeded_graph(seed, n=6)
    events, mirror = synthetic_events(graph, 10, seed=seed)
    with _cell_runtime(backend) as runtime:
        with OnlineMatcher(runtime=runtime, graph=graph) as m:
            for start in range(0, len(events), batch):
                report = m.flush(events[start : start + batch])
                assert not report.rejected
            _assert_cold_identical(m, mirror)
