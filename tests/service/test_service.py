"""The asyncio facade: coalescing, read-your-writes, and metrics.

Plain ``asyncio.run`` throughout (no pytest-asyncio in the image); each
test drives a real event loop against a real matcher on a fresh
in-process runtime.  The coalescing tests are the tentpole's
demonstrable claim: a burst of K events triggers strictly fewer than K
re-convergences, observable through the always-on service counters.
"""

import asyncio

import pytest

from repro.matching import greedy_b_matching
from repro.service import (
    Arrival,
    EdgeArrival,
    FlushReport,
    MatchingService,
    OnlineMatcher,
    ServiceClosed,
    synthetic_events,
)

from .test_matcher import _seeded_graph

#: Keys the metrics endpoint must always expose (BENCH_serving.json
#: records exactly these).
METRIC_KEYS = {
    "events_admitted",
    "events_rejected",
    "batches_flushed",
    "coalescing_ratio",
    "reconverge_rounds",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "dead_letter_events",
    "flush_retries",
    "throughput_events_per_s",
    "flushes_per_sec",
}


def _service(seed=0, **kwargs):
    graph = _seeded_graph(seed)
    events, mirror = synthetic_events(graph, 12, seed=seed)
    return (
        MatchingService(OnlineMatcher(graph=graph), **kwargs),
        events,
        mirror,
    )


def test_burst_coalesces_into_fewer_flushes():
    service, events, mirror = _service(max_batch=4, max_delay=5.0)

    async def drive():
        async with service:
            reports = await asyncio.gather(
                *(service.submit_event(e) for e in events)
            )
            snap = await service.snapshot()
        return reports, snap

    reports, snap = asyncio.run(drive())
    metrics = service.metrics()
    # 12 events, batch cap 4: exactly 3 flushes, never 12.
    assert metrics["batches_flushed"] == 3
    assert metrics["events_admitted"] == 12
    assert metrics["coalescing_ratio"] == pytest.approx(4.0)
    # Batchmates share their flush's report.
    assert all(isinstance(r, FlushReport) for r in reports)
    assert len({id(r) for r in reports}) == 3
    cold = greedy_b_matching(mirror)
    assert snap["matching"] == sorted(cold.matching.edges())


def test_timer_flushes_an_undersized_batch():
    service, events, _ = _service(max_batch=1000, max_delay=0.01)

    async def drive():
        async with service:
            report = await service.submit_event(events[0])
        return report

    report = asyncio.run(drive())
    assert report.admitted == 1
    assert service.metrics()["batches_flushed"] == 1


def test_submit_events_shares_one_flush():
    service, events, mirror = _service(max_batch=1000, max_delay=0.05)

    async def drive():
        async with service:
            task = asyncio.ensure_future(
                service.submit_events(events[:6])
            )
            await asyncio.sleep(0)  # first half enqueues, in order
            report = await service.submit_events(events[6:])
            assert await task is report
        return report

    report = asyncio.run(drive())
    assert report.admitted == 12
    assert service.metrics()["batches_flushed"] == 1
    cold = greedy_b_matching(mirror)
    assert service.matcher.matching_edges() == sorted(
        cold.matching.edges()
    )


def test_match_lookup_reads_its_own_writes():
    graph = _seeded_graph(1)
    service = MatchingService(
        OnlineMatcher(graph=graph), max_batch=1000, max_delay=60.0
    )

    async def drive():
        async with service:
            # Not awaited: the event sits in the pending batch (the
            # timer is an hour out), yet a fresh lookup must see it.
            submit = asyncio.ensure_future(
                service.submit_event(
                    Arrival("vip", capacity=1, edges=(("n0", 100.0),))
                )
            )
            await asyncio.sleep(0)  # let the submit enqueue
            partners = await service.match_lookup("vip")
            stale = await service.match_lookup("vip", fresh=False)
            await submit
        return partners, stale

    partners, stale = asyncio.run(drive())
    assert partners == {"n0": 100.0}
    assert stale == partners  # drained by the fresh lookup already


def test_rejection_reports_do_not_fail_batchmates():
    service, _, _ = _service(max_batch=2, max_delay=5.0)

    async def drive():
        async with service:
            good = Arrival("new", capacity=1, edges=(("n0", 2.0),))
            bad = EdgeArrival("ghost", "n0", 1.0)  # unknown node
            reports = await asyncio.gather(
                service.submit_event(good), service.submit_event(bad)
            )
        return reports

    reports = asyncio.run(drive())
    assert reports[0] is reports[1]
    assert reports[0].admitted == 1
    assert len(reports[0].rejected) == 1
    assert service.metrics()["events_rejected"] == 1


def test_submit_after_close_raises():
    service, events, _ = _service()

    async def drive():
        await service.close()
        with pytest.raises(ServiceClosed):
            await service.submit_event(events[0])

    asyncio.run(drive())


def test_metrics_shape_and_sanity():
    service, events, _ = _service(max_batch=3, max_delay=5.0)

    async def drive():
        async with service:
            await asyncio.gather(
                *(service.submit_event(e) for e in events)
            )

    asyncio.run(drive())
    metrics = service.metrics()
    assert set(metrics) == METRIC_KEYS
    assert (
        metrics["latency_p99_ms"]
        >= metrics["latency_p95_ms"]
        >= metrics["latency_p50_ms"]
        > 0
    )
    assert metrics["throughput_events_per_s"] > 0
    assert metrics["flushes_per_sec"] > 0
    assert metrics["reconverge_rounds"] >= 1


def test_constructor_validation():
    matcher = OnlineMatcher()
    try:
        with pytest.raises(ValueError, match="max_batch"):
            MatchingService(matcher, max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            MatchingService(matcher, max_delay=-0.1)
    finally:
        matcher.close()
