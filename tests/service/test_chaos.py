"""Serving-layer chaos: transactional flushes, dead letters, rejection.

The serving layer's recovery contract mirrors the runtime's: a flush
that faults mid-reconvergence rolls both resident stores and the
driver-side matching back to the pre-flush state, the whole batch
re-admits on the retry, and the converged matching is bit-identical
to the fault-free run.  Events that keep failing *transiently* drain
to the dead-letter queue instead of wedging their batch forever, and
deterministically invalid events are rejected without ever touching
the resident graph store — even when submitted concurrently through
the asyncio facade.
"""

import asyncio

import pytest

from repro.mapreduce import (
    Counters,
    FaultPlan,
    InjectedFault,
    MapReduceRuntime,
    RetryPolicy,
)
from repro.service import (
    Arrival,
    EdgeArrival,
    MatchingService,
    OnlineMatcher,
    synthetic_events,
)

from .test_matcher import _seeded_graph

#: ``FaultPlan(4, poison_rate=0.5)`` poisons admission sequence
#: numbers 1 and 3 (and no others) in the first eight — a pinned,
#: seed-derived pattern the dead-letter tests rely on.
POISON_SEED = 4


def _faulted_runtime(retry_policy=None, fault_plan=None):
    return MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        retry_policy=retry_policy,
        fault_plan=fault_plan,
    )


def _reference_matching(graph, batches):
    with OnlineMatcher(graph=graph) as matcher:
        for batch in batches:
            matcher.flush(list(batch))
        return matcher.matching_edges()


def _batches(events, size=8):
    return [events[i : i + size] for i in range(0, len(events), size)]


# -- transactional flush: fault, roll back, retry, converge ----------------


def test_flush_fault_retries_and_matches_fault_free():
    graph = _seeded_graph(3)
    events, _ = synthetic_events(graph, 16, seed=3)
    batches = _batches(events)
    reference = _reference_matching(_seeded_graph(3), batches)
    # flush_rate=1.0: attempt 0 of *every* flush faults mid-
    # reconvergence; max_faults_per_site=1 leaves attempt 1 clean, so
    # a 2-attempt budget always recovers.
    plan = FaultPlan(1, flush_rate=1.0)
    matcher = OnlineMatcher(
        runtime=_faulted_runtime(
            retry_policy=RetryPolicy(max_attempts=2), fault_plan=plan
        ),
        graph=graph,
    )
    with matcher:
        reports = [matcher.flush(list(batch)) for batch in batches]
        ok, value = matcher.verify()
        assert ok, value
        assert matcher.matching_edges() == reference
    faults = matcher.runtime.counters.group("faults")
    assert faults["injected_flush"] == len(batches)
    assert faults["flush.retries"] == len(batches)
    assert faults["injected_total"] >= len(batches)
    # The committed reports describe the successful attempts.
    assert sum(r.admitted + len(r.rejected) for r in reports) == len(
        events
    )


def test_exhausted_flush_budget_rolls_back_and_raises():
    graph = _seeded_graph(5)
    events, _ = synthetic_events(graph, 8, seed=5)
    # No retry policy: a single attempt, so the injected fault
    # propagates — but the matcher must stay at the pre-flush state.
    matcher = OnlineMatcher(
        runtime=_faulted_runtime(fault_plan=FaultPlan(1, flush_rate=1.0)),
        graph=graph,
    )
    with matcher:
        before = (
            matcher.matching_edges(),
            matcher.num_nodes,
            matcher.num_edges,
            matcher.snapshot(),
        )
        with pytest.raises(InjectedFault):
            matcher.flush(list(events))
        assert (
            matcher.matching_edges(),
            matcher.num_nodes,
            matcher.num_edges,
            matcher.snapshot(),
        ) == before
        ok, value = matcher.verify()
        assert ok, value
        # The batch was not consumed: disarm the plan and re-flush —
        # recovery-by-operator, same events, converges normally.
        matcher._fault_plan = None
        report = matcher.flush(list(events))
        assert report.admitted + len(report.rejected) == len(events)
        assert matcher.matching_edges() == _reference_matching(
            _seeded_graph(5), [events]
        )


# -- dead letters: poisoned events drain instead of wedging ----------------


def test_poisoned_events_dead_letter_after_their_budget():
    graph = _seeded_graph(7)
    events, _ = synthetic_events(graph, 4, seed=7)
    plan = FaultPlan(POISON_SEED, poison_rate=0.5)
    assert [plan.event_poisoned(seq) for seq in range(4)] == [
        False,
        True,
        False,
        True,
    ]
    matcher = OnlineMatcher(
        runtime=_faulted_runtime(
            retry_policy=RetryPolicy(max_attempts=2), fault_plan=plan
        ),
        graph=graph,
    )
    with matcher:
        # Batch [seq 0, seq 1]: seq 1 poisons attempt 1, rolls the
        # flush back, exhausts its per-event budget on the retry, and
        # dead-letters; its batchmate lands normally.
        first = matcher.flush(list(events[:2]))
        assert first.dead_lettered == 1
        second = matcher.flush(list(events[2:4]))
        assert second.dead_lettered == 1
        ok, value = matcher.verify()
        assert ok, value
        assert [event for event, _ in matcher.dead_letters] == [
            events[1],
            events[3],
        ]
        for _, reason in matcher.dead_letters:
            assert "admission failed transiently" in reason
    faults = matcher.runtime.counters.group("faults")
    assert faults["events.dead_lettered"] == 2
    # Each poisoned event fired twice (original + its retry).
    assert faults["injected_poison"] == 4
    # The dead-lettered events never made it into the graph store:
    # the matching equals the fault-free run over the survivors.
    assert matcher.matching_edges() == _reference_matching(
        _seeded_graph(7), [[events[0]], [events[2]]]
    )


def test_service_metrics_surface_recovery_activity():
    graph = _seeded_graph(7)
    events, _ = synthetic_events(graph, 4, seed=7)
    plan = FaultPlan(POISON_SEED, flush_rate=1.0, poison_rate=0.5)
    matcher = OnlineMatcher(
        runtime=_faulted_runtime(
            retry_policy=RetryPolicy(max_attempts=2), fault_plan=plan
        ),
        graph=graph,
    )
    service = MatchingService(matcher, max_batch=2, max_delay=5.0)

    async def drive():
        async with service:
            await asyncio.gather(
                *(service.submit_event(event) for event in events)
            )
            return service.metrics()

    metrics = asyncio.run(drive())
    assert metrics["dead_letter_events"] == 2
    assert metrics["flush_retries"] >= 2
    assert metrics["batches_flushed"] == 2


# -- rejection under concurrency: no partial state, read-your-writes -------


def test_rejected_event_never_touches_the_store_concurrently():
    graph = _seeded_graph(0)
    nodes = sorted(graph.nodes())
    matcher = OnlineMatcher(graph=graph)
    service = MatchingService(matcher, max_batch=4, max_delay=5.0)
    valid = [
        Arrival(node="fresh-0", capacity=2,
                edges=((nodes[0], 3.0),)),
        EdgeArrival(u=nodes[1], v=nodes[2], weight=7.0),
    ]
    invalid = [
        EdgeArrival(u="ghost", v=nodes[0], weight=1.0),
        Arrival(node=nodes[0], capacity=1, edges=()),  # already exists
    ]

    async def drive():
        async with service:
            # All four submissions race into the same micro-batch.
            reports = await asyncio.gather(
                service.submit_event(valid[0]),
                service.submit_event(invalid[0]),
                service.submit_event(valid[1]),
                service.submit_event(invalid[1]),
            )
            # Read-your-writes mid-stream: the drain-first lookup sees
            # the admitted arrival even though more events follow.
            partners = await service.match_lookup("fresh-0")
            await service.submit_event(
                EdgeArrival(u="fresh-0", v=nodes[3], weight=9.0)
            )
            snap = await service.snapshot()
            verdict = matcher.verify()
            return reports, partners, snap, verdict

    reports, partners, snap, verdict = asyncio.run(drive())
    # Batchmates share one report; rejections ride in it, and one bad
    # event never fails its batchmates.
    report = reports[0]
    assert all(r is report for r in reports)
    assert report.admitted == 2
    rejected = {repr(event): reason for event, reason in report.rejected}
    assert len(rejected) == 2
    assert any("unknown node 'ghost'" in r for r in rejected.values())
    assert any("existing node" in r for r in rejected.values())
    # The rejected events left no trace in the resident graph store.
    assert matcher.graph_store.get("ghost") is None
    assert not matcher.graph_store.contains("ghost")
    assert partners is not None  # lookup resolved post-drain
    assert snap["nodes"] == len(nodes) + 1
    ok, value = verdict
    assert ok, value
