"""Tests for tokenization and stop-word removal."""

from repro.text import remove_stop_words, tokenize


def test_tokenize_lowercases_and_strips_punctuation():
    assert tokenize("Hello, World! It's 2011.") == [
        "hello",
        "world",
        "it",
        "s",
        "2011",
    ]


def test_tokenize_empty_and_punctuation_only():
    assert tokenize("") == []
    assert tokenize("!!! --- ...") == []


def test_tokenize_keeps_digits():
    assert tokenize("web2.0 rocks") == ["web2", "0", "rocks"]


def test_stop_words_removed():
    tokens = tokenize("the quick brown fox is over the lazy dog")
    cleaned = remove_stop_words(tokens)
    assert "the" not in cleaned
    assert "is" not in cleaned
    assert "quick" in cleaned and "fox" in cleaned


def test_single_characters_removed():
    assert remove_stop_words(["a", "b", "xy"]) == ["xy"]


def test_custom_stop_words():
    cleaned = remove_stop_words(
        ["foo", "bar"], stop_words=frozenset({"foo"})
    )
    assert cleaned == ["bar"]
