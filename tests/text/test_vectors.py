"""Tests for sparse vector algebra."""

import math

import pytest
from hypothesis import given

from repro.text import add, dot, from_counts, norm, normalize, scale, top_terms

from ..strategies import sparse_vectors


def test_from_counts():
    assert from_counts(["a", "b", "a"]) == {"a": 2.0, "b": 1.0}
    assert from_counts([]) == {}


def test_dot_basic():
    assert dot({"a": 2.0, "b": 1.0}, {"a": 3.0, "c": 5.0}) == 6.0
    assert dot({}, {"a": 1.0}) == 0.0


def test_dot_uses_smaller_side():
    big = {f"w{i}": 1.0 for i in range(100)}
    assert dot({"w5": 2.0}, big) == 2.0
    assert dot(big, {"w5": 2.0}) == 2.0


def test_norm_and_normalize():
    vec = {"a": 3.0, "b": 4.0}
    assert norm(vec) == pytest.approx(5.0)
    unit = normalize(vec)
    assert norm(unit) == pytest.approx(1.0)
    assert normalize({}) == {}


def test_add_and_scale():
    assert add({"a": 1.0}, {"a": 2.0, "b": 3.0}) == {"a": 3.0, "b": 3.0}
    assert scale({"a": 2.0}, 0.5) == {"a": 1.0}


def test_top_terms():
    vec = {"a": 3.0, "b": 1.0, "c": 2.0}
    assert top_terms(vec, 2) == {"a": 3.0, "c": 2.0}
    assert top_terms(vec, 10) == vec
    # ties broken by term name
    assert top_terms({"x": 1.0, "y": 1.0}, 1) == {"x": 1.0}


@given(a=sparse_vectors(), b=sparse_vectors())
def test_dot_symmetric(a, b):
    assert dot(a, b) == pytest.approx(dot(b, a))


@given(a=sparse_vectors(), b=sparse_vectors())
def test_cauchy_schwarz(a, b):
    assert dot(a, b) <= norm(a) * norm(b) + 1e-9


@given(a=sparse_vectors())
def test_norm_of_scaled(a):
    assert norm(scale(a, 2.0)) == pytest.approx(2.0 * norm(a))
