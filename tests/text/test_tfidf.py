"""Tests for tf·idf weighting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import TfIdfModel, document_frequencies, idf_weights

from ..strategies import sparse_vectors


def test_document_frequencies():
    docs = [{"a": 1.0, "b": 2.0}, {"a": 5.0}, {"b": 1.0, "c": 1.0}]
    assert document_frequencies(docs) == {"a": 2, "b": 2, "c": 1}


def test_idf_rarer_terms_weigh_more():
    idf = idf_weights({"common": 90, "rare": 2}, 100)
    assert idf["rare"] > idf["common"] > 0


def test_idf_rejects_negative_corpus():
    with pytest.raises(ValueError):
        idf_weights({"a": 1}, -1)


def test_model_fit_transform():
    model = TfIdfModel.fit(
        [{"a": 1.0}, {"a": 1.0, "b": 1.0}, {"a": 1.0, "c": 1.0}]
    )
    vec = model.transform({"a": 1.0, "b": 1.0})
    assert vec["b"] > vec["a"]


def test_transform_unknown_term_uses_default():
    model = TfIdfModel.fit([{"a": 1.0}])
    vec = model.transform({"zzz": 1.0})
    assert vec["zzz"] == pytest.approx(model.default_idf)


def test_transform_damps_high_tf():
    model = TfIdfModel.fit([{"a": 1.0}])
    low = model.transform({"a": 1.0})["a"]
    high = model.transform({"a": 100.0})["a"]
    assert high < 100 * low
    assert high == pytest.approx((1 + math.log(100.0)) * low)


def test_transform_drops_nonpositive_tf():
    model = TfIdfModel.fit([{"a": 1.0}])
    assert model.transform({"a": 0.0}) == {}


@given(docs=st.lists(sparse_vectors(), min_size=1, max_size=6))
def test_transform_preserves_support(docs):
    model = TfIdfModel.fit(docs)
    for doc in docs:
        transformed = model.transform(doc)
        assert set(transformed) == set(doc)
        assert all(w > 0 for w in transformed.values())
