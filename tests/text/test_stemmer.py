"""Tests for the Porter-style stemmer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text import stem

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", max_size=15)


def test_plurals_conflate():
    assert stem("caresses") == stem("caress")
    assert stem("ponies") == stem("poni")
    assert stem("cats") == stem("cat")


def test_ing_and_ed_forms_conflate():
    assert stem("matching") == stem("match")
    assert stem("matched") == stem("match")
    assert stem("hopping") == stem("hop")
    assert stem("plastered") == stem("plaster")


def test_agreed_keeps_ee():
    assert stem("agreed") == "agree"
    assert stem("feed") == "feed"  # measure 0: unchanged


def test_y_to_i():
    assert stem("happy") == "happi"
    assert stem("sky") == "sky"  # no vowel before y


def test_derivational_suffixes():
    assert stem("relational") == stem("relate")
    assert stem("optimization") == stem("optimize")
    assert stem("goodness") == stem("good")


def test_short_words_untouched():
    assert stem("go") == "go"
    assert stem("a") == "a"


@given(word=words)
def test_stemmer_never_crashes_and_never_grows_much(word):
    result = stem(word)
    assert isinstance(result, str)
    # may add at most one character (e.g. "hopp" -> "hope" rules)
    assert len(result) <= len(word) + 1


@given(word=words)
def test_stemmer_is_idempotent_on_common_cases(word):
    # Not a theorem of Porter, but holds for our rule subset on pure
    # lowercase input after two applications (fixpoint check).
    once = stem(word)
    twice = stem(once)
    assert stem(twice) == twice
