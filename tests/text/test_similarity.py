"""Tests for similarity functions."""

import pytest
from hypothesis import given

from repro.text import cosine_similarity, dot_similarity

from ..strategies import sparse_vectors


def test_dot_similarity_is_dot():
    assert dot_similarity({"a": 2.0}, {"a": 3.0}) == 6.0


def test_cosine_bounds_and_zero_vectors():
    assert cosine_similarity({}, {"a": 1.0}) == 0.0
    assert cosine_similarity({"a": 1.0}, {"a": 5.0}) == pytest.approx(1.0)


def test_cosine_orthogonal():
    assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0


@given(a=sparse_vectors(), b=sparse_vectors())
def test_cosine_in_unit_interval(a, b):
    value = cosine_similarity(a, b)
    assert -1e-9 <= value <= 1.0 + 1e-9


@given(a=sparse_vectors())
def test_cosine_self_is_one(a):
    assert cosine_similarity(a, a) == pytest.approx(1.0)
