"""Integration tests asserting the paper's §6 qualitative findings.

These are the critical "shape" claims a reproduction must exhibit; the
benchmarks print them at larger scale, the tests pin them at small
scale so regressions are caught by ``pytest``.
"""

import pytest

from repro.datasets import load_dataset
from repro.experiments import (
    SweepSpec,
    evaluate_checks,
    run_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    spec = SweepSpec(
        dataset="flickr-small",
        scale=0.06,
        floor_sigma=1.0,
        edge_fractions=(0.1, 0.4),
        alphas=(2.0,),
        epsilon=1.0,
        algorithms=("greedy_mr", "stack_mr", "stack_greedy_mr"),
    )
    return run_sweep(spec, seed=0)


def test_greedy_dominates_stack_in_value(sweep):
    """§6: "GreedyMR consistently produces matchings with higher value"."""
    by_cell = {}
    for row in sweep.rows:
        by_cell.setdefault((row.sigma, row.alpha), {})[
            row.algorithm
        ] = row.value
    assert by_cell
    for cell, values in by_cell.items():
        assert values["GreedyMR"] >= values["StackMR"] * 0.999, cell


def test_stack_greedy_at_least_stack(sweep):
    """§6: "StackGreedyMR is slightly better than StackMR" (on average)."""
    greedy_total = sum(
        row.value
        for row in sweep.rows
        if row.algorithm == "StackGreedyMR"
    )
    uniform_total = sum(
        row.value for row in sweep.rows if row.algorithm == "StackMR"
    )
    assert greedy_total >= 0.95 * uniform_total


def test_value_increases_with_edges(sweep):
    """§6: "the b-matching value increases with the number of edges"."""
    xs, ys = sweep.series("GreedyMR", 2.0, "value")
    assert len(ys) >= 2
    assert all(b >= a for a, b in zip(ys, ys[1:]))


def test_violations_zero_or_tiny(sweep):
    """§6: violations range from practically 0 to a few percent."""
    for row in sweep.rows:
        assert row.avg_violation <= 0.10


def test_shape_checks_pass(sweep):
    checks = evaluate_checks(sweep.rows)
    names = {check.name for check in checks}
    assert any("GreedyMR value >= StackMR" in name for name in names)
    critical = [
        check
        for check in checks
        if "GreedyMR value >= StackMR" in check.name
    ]
    assert all(check.passed for check in critical)


def test_greedy_anytime_converges_early():
    """§6: 95% of the final value within a minority of the iterations."""
    dataset = load_dataset("flickr-small", seed=0, scale=0.1)
    sigma = dataset.sigma_for_edge_count(
        len(dataset.edges(1.0)) // 5, 1.0
    )
    graph = dataset.graph(sigma=sigma, alpha=2.0)
    from repro.matching import greedy_mr_b_matching

    result = greedy_mr_b_matching(graph)
    rounds_at_95 = result.iterations_to_fraction(0.95)
    assert rounds_at_95 is not None
    fraction = rounds_at_95 / result.rounds
    assert fraction <= 0.6  # paper: 0.29-0.45


def test_stack_iterations_scale_better_than_greedy():
    """§6 efficiency: GreedyMR rounds grow with the graph; StackMR's
    stay near-flat (its power shows on the *large* datasets)."""
    dataset = load_dataset("flickr-small", seed=0, scale=0.12)
    floor = 1.0
    total = len(dataset.edges(floor))
    small_sigma = dataset.sigma_for_edge_count(total // 10, floor)
    graph_small = dataset.graph(sigma=small_sigma, alpha=2.0)
    graph_big = dataset.graph(sigma=floor, alpha=2.0)

    from repro.matching import greedy_mr_b_matching, stack_mr_b_matching

    greedy_small = greedy_mr_b_matching(graph_small)
    greedy_big = greedy_mr_b_matching(graph_big)
    stack_small = stack_mr_b_matching(graph_small, seed=1)
    stack_big = stack_mr_b_matching(graph_big, seed=1)

    greedy_growth = greedy_big.rounds / max(greedy_small.rounds, 1)
    stack_growth = stack_big.mr_jobs / max(stack_small.mr_jobs, 1)
    # StackMR's job count grows strictly slower than GreedyMR's rounds.
    assert stack_growth <= greedy_growth + 0.5
