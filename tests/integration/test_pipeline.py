"""End-to-end pipeline tests: dataset -> simjoin -> capacities -> matching.

These exercise the same path as the paper's system: generate the corpus,
compute candidate edges with the MapReduce similarity join, assign
budgets with the §4 formulas, run every matching algorithm, and validate
the outcome.
"""

import math

import pytest

from repro.datasets import flickr_dataset, yahoo_answers_dataset
from repro.graph import BipartiteGraph, check_matching
from repro.mapreduce import MapReduceRuntime
from repro.matching import (
    flow_b_matching,
    greedy_b_matching,
    greedy_mr_b_matching,
    stack_mr_b_matching,
)
from repro.simjoin import exact_similarity_join, mapreduce_similarity_join


@pytest.fixture(scope="module")
def flickr():
    return flickr_dataset(
        "flickr-e2e", num_photos=90, num_users=25, seed=11
    )


@pytest.fixture(scope="module")
def flickr_graph(flickr):
    return flickr.graph(sigma=2.0, alpha=2.0)


def test_mapreduce_join_agrees_with_exact_on_real_vectors(flickr):
    runtime = MapReduceRuntime()
    mr_rows = mapreduce_similarity_join(
        flickr.items, flickr.consumers, 3.0, runtime=runtime
    )
    exact_rows = exact_similarity_join(
        flickr.items, flickr.consumers, 3.0
    )
    assert [(t, c) for t, c, _ in mr_rows] == [
        (t, c) for t, c, _ in exact_rows
    ]
    assert runtime.jobs_executed == 3


def test_graph_construction_respects_formulas(flickr, flickr_graph):
    item_caps, consumer_caps = flickr.capacities(2.0)
    for user, activity in flickr.consumer_activity.items():
        assert flickr_graph.capacity(user) == max(
            1, int(math.floor(2.0 * activity + 0.5))
        )
    bandwidth = sum(consumer_caps.values())
    assert sum(item_caps.values()) <= bandwidth + flickr.num_items


def test_all_mapreduce_algorithms_end_to_end(flickr_graph):
    capacities = flickr_graph.capacities()
    greedy = greedy_mr_b_matching(flickr_graph)
    assert check_matching(capacities, iter(greedy.matching)).feasible

    stack = stack_mr_b_matching(flickr_graph, epsilon=1.0, seed=2)
    for node, overflow in stack.violations(
        capacities
    ).violated_nodes.items():
        assert overflow <= math.ceil(capacities[node])

    # §6 quality ordering: greedy_mr at least as good as stack_mr here
    assert greedy.value >= stack.value * 0.99


def test_quality_against_exact_optimum(flickr_graph):
    optimum = flow_b_matching(flickr_graph)
    greedy = greedy_mr_b_matching(flickr_graph)
    stack = stack_mr_b_matching(flickr_graph, epsilon=1.0, seed=0)
    assert greedy.value >= 0.5 * optimum.value - 1e-9
    assert stack.value >= optimum.value / 7.0 - 1e-9
    assert stack.dual_upper_bound >= optimum.value - 1e-6
    # greedy is usually much closer to optimal than its guarantee
    assert greedy.value >= 0.8 * optimum.value


def test_yahoo_pipeline_uniform_capacities():
    dataset = yahoo_answers_dataset(
        "ya-e2e", num_questions=60, num_users=15, seed=4
    )
    graph = dataset.graph(sigma=3.0, alpha=1.0)
    question_caps = {
        node: graph.capacity(node) for node in graph.items()
    }
    assert len(set(question_caps.values())) == 1
    result = greedy_mr_b_matching(graph)
    assert check_matching(
        graph.capacities(), iter(result.matching)
    ).feasible
    assert result.value > 0


def test_sequential_equals_mr_greedy_on_pipeline_graph(flickr_graph):
    assert greedy_b_matching(flickr_graph).value == pytest.approx(
        greedy_mr_b_matching(flickr_graph).value
    )
