"""Smoke tests: every example in ``examples/`` runs end to end.

The examples are the repo's executable documentation; they are not
importable as a package, so each is loaded by file path and its
``main()`` driven at a reduced size.  The featured-photos and
question-routing runs include their live-service sections, so these
tests also cover the online matching service (asyncio facade included)
from the outermost user-facing entry points — each must print an
``identical`` cold-batch verification.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


def _load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickling inside the example resolve.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_quickstart_runs(capsys):
    _load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "greedy-mr" in out or "total relevance" in out
    assert "deliver" in out


def test_anytime_dashboard_runs(capsys):
    _load_example("anytime_dashboard").main(num_photos=120, num_users=30)
    out = capsys.readouterr().out
    assert "95% of the final value" in out
    assert "stopping at 75% of rounds" in out


def test_featured_photos_runs_including_live_mode(capsys):
    _load_example("featured_photos").main(
        num_photos=120, num_users=30, live_events=12
    )
    out = capsys.readouterr().out
    assert "similarity join:" in out
    assert "GreedyMR/StackMR value ratio" in out
    assert "live mode:" in out
    assert "cold-batch check identical" in out


def test_question_routing_runs_including_live_mode(capsys):
    _load_example("question_routing").main(
        num_questions=100, num_users=25, live_events=10
    )
    out = capsys.readouterr().out
    assert "GreedyMR routed" in out
    assert "exact optimum" in out
    assert "live mode:" in out
    assert "cold-batch check identical" in out
