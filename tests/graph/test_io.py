"""Round-trip tests for TSV graph serialization."""

import random

import pytest

from repro.graph import (
    random_bipartite,
    read_bipartite_graph,
    read_capacities,
    read_edges,
    write_bipartite_graph,
    write_capacities,
    write_edges,
)


def test_edges_roundtrip(tmp_path):
    path = str(tmp_path / "edges.tsv")
    rows = [("t1", "c1", 0.123456789), ("t2", "c9", 42.0)]
    assert write_edges(path, rows) == 2
    assert list(read_edges(path)) == rows


def test_edges_bad_row_rejected(tmp_path):
    path = str(tmp_path / "bad.tsv")
    with open(path, "w") as handle:
        handle.write("only\ttwo\n")
    with pytest.raises(ValueError, match="expected 3"):
        list(read_edges(path))


def test_capacities_roundtrip(tmp_path):
    path = str(tmp_path / "caps.tsv")
    caps = {"b": 2, "a": 7}
    assert write_capacities(path, caps) == 2
    assert read_capacities(path) == caps


def test_capacities_bad_row_rejected(tmp_path):
    path = str(tmp_path / "bad.tsv")
    with open(path, "w") as handle:
        handle.write("a\t1\textra\n")
    with pytest.raises(ValueError, match="expected 2"):
        read_capacities(path)


def test_bipartite_graph_roundtrip(tmp_path):
    graph = random_bipartite(6, 5, 0.5, rng=random.Random(3))
    directory = str(tmp_path / "dataset")
    write_bipartite_graph(directory, graph)
    loaded = read_bipartite_graph(directory)
    assert sorted(loaded.items()) == sorted(graph.items())
    assert sorted(loaded.consumers()) == sorted(graph.consumers())
    assert loaded.capacities() == graph.capacities()
    original = {e.key: e.weight for e in graph.edges()}
    restored = {e.key: e.weight for e in loaded.edges()}
    assert original == restored


def test_blank_lines_ignored(tmp_path):
    path = str(tmp_path / "edges.tsv")
    with open(path, "w") as handle:
        handle.write("t1\tc1\t1.5\n\n")
    assert list(read_edges(path)) == [("t1", "c1", 1.5)]
