"""Tests for the Graph / BipartiteGraph structures."""

import pytest
from hypothesis import given

from repro.graph import BipartiteGraph, Graph

from ..strategies import small_bipartite_graphs


def build_triangleish() -> Graph:
    g = Graph()
    g.add_node("a", 2)
    g.add_node("b", 1)
    g.add_edge("a", "b", 1.5)
    g.add_edge("a", "c", 2.5)  # c auto-added with capacity 1
    return g


def test_add_and_query_edges():
    g = build_triangleish()
    assert g.has_edge("a", "b") and g.has_edge("b", "a")
    assert g.weight("a", "c") == 2.5
    assert g.num_nodes == 3
    assert g.num_edges == 2
    assert g.degree("a") == 2
    assert sorted(g.neighbors("a")) == ["b", "c"]
    assert g.capacity("a") == 2
    assert g.capacity("c") == 1  # auto-added default


def test_edge_weight_overwrite_keeps_count():
    g = build_triangleish()
    g.add_edge("a", "b", 9.0)
    assert g.num_edges == 2
    assert g.weight("b", "a") == 9.0


def test_rejects_bad_weights_and_loops():
    g = Graph()
    with pytest.raises(ValueError):
        g.add_edge("a", "b", 0.0)
    with pytest.raises(ValueError):
        g.add_edge("a", "b", -1.0)
    with pytest.raises(ValueError):
        g.add_edge("a", "a", 1.0)
    with pytest.raises(ValueError):
        g.add_node("a", capacity=-1)


def test_remove_edge_and_node():
    g = build_triangleish()
    g.remove_edge("a", "b")
    assert not g.has_edge("b", "a")
    assert g.num_edges == 1
    g.remove_node("a")
    assert not g.has_node("a")
    assert g.num_edges == 0
    assert g.has_node("c")


def test_edges_iterates_once_normalized():
    g = build_triangleish()
    edges = list(g.edges())
    assert len(edges) == 2
    assert all(edge.u < edge.v for edge in edges)
    assert g.total_weight() == pytest.approx(4.0)


def test_copy_is_independent():
    g = build_triangleish()
    clone = g.copy()
    clone.add_edge("b", "c", 1.0)
    clone.add_node("a", 9)
    assert g.num_edges == 2
    assert g.capacity("a") == 2


def test_adjacency_copy_is_deep():
    g = build_triangleish()
    adj = g.adjacency_copy()
    adj["a"]["b"] = 123.0
    assert g.weight("a", "b") == 1.5


def test_thresholded_keeps_nodes_drops_light_edges():
    g = build_triangleish()
    t = g.thresholded(2.0)
    assert t.num_edges == 1
    assert t.has_edge("a", "c")
    assert t.num_nodes == 3  # nodes survive with their capacities
    assert t.capacity("a") == 2
    assert g.num_edges == 2  # original untouched


def test_bipartite_sides_enforced():
    g = BipartiteGraph()
    g.add_item("t0", 2)
    g.add_consumer("c0", 3)
    g.add_edge("t0", "c0", 1.0)
    assert g.side("t0") == "item"
    assert g.side("c0") == "consumer"
    with pytest.raises(ValueError):
        g.add_item("t1")
        g.add_edge("t0", "t1", 1.0)
    with pytest.raises(ValueError):
        g.add_edge("t0", "unknown", 1.0)
    with pytest.raises(ValueError):
        g.add_consumer("t0")  # side change refused


def test_bipartite_items_consumers_sorted():
    g = BipartiteGraph()
    g.add_item("t2")
    g.add_item("t1")
    g.add_consumer("c9")
    assert g.items() == ["t1", "t2"]
    assert g.consumers() == ["c9"]


def test_bipartite_copy_preserves_sides():
    g = BipartiteGraph()
    g.add_item("t0", 2)
    g.add_consumer("c0", 1)
    g.add_edge("t0", "c0", 1.0)
    clone = g.copy()
    assert isinstance(clone, BipartiteGraph)
    assert clone.side("t0") == "item"
    assert clone.items() == ["t0"]


def test_from_edges_builder():
    g = BipartiteGraph.from_edges(
        [("t0", "c0", 1.0), ("t1", "c0", 2.0)],
        item_capacities={"t0": 3, "t9": 1},  # t9 isolated
        consumer_capacities={"c0": 2},
    )
    assert g.capacity("t0") == 3
    assert g.capacity("t1") == 1  # defaulted
    assert g.capacity("c0") == 2
    assert g.has_node("t9") and g.degree("t9") == 0
    assert g.num_edges == 2


@given(graph=small_bipartite_graphs())
def test_generated_graphs_are_consistent(graph):
    # Every edge visible from both endpoints, weights agree.
    for edge in graph.edges():
        assert graph.weight(edge.u, edge.v) == graph.weight(
            edge.v, edge.u
        )
        assert graph.side(edge.u) != graph.side(edge.v)
    assert graph.num_edges == len(list(graph.edges()))
    degrees = sum(graph.degree(n) for n in graph.nodes())
    assert degrees == 2 * graph.num_edges
