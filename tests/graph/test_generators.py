"""Tests for the graph generators (random + adversarial instances)."""

import random

import pytest

from repro.graph import (
    ascending_path,
    greedy_tightness_triangle,
    random_bipartite,
    random_graph,
    star_graph,
)


def test_random_bipartite_shape():
    g = random_bipartite(10, 6, 0.5, rng=random.Random(1))
    assert len(g.items()) == 10
    assert len(g.consumers()) == 6
    for edge in g.edges():
        assert g.side(edge.u) != g.side(edge.v)
        assert edge.weight > 0
    assert all(1 <= g.capacity(n) <= 3 for n in g.nodes())


def test_random_bipartite_deterministic_given_seed():
    a = random_bipartite(8, 8, 0.3, rng=random.Random(7))
    b = random_bipartite(8, 8, 0.3, rng=random.Random(7))
    assert sorted(e.key for e in a.edges()) == sorted(
        e.key for e in b.edges()
    )


def test_random_graph_general():
    g = random_graph(8, 0.4, rng=random.Random(2))
    assert g.num_nodes == 8
    assert g.num_edges > 0


def test_ascending_path_is_ascending():
    g = ascending_path(6)
    weights = [
        g.weight(f"u{i:06d}", f"u{i + 1:06d}") for i in range(5)
    ]
    assert weights == sorted(weights)
    assert all(g.capacity(n) == 1 for n in g.nodes())
    with pytest.raises(ValueError):
        ascending_path(1)


def test_tightness_triangle_structure():
    g = greedy_tightness_triangle(0.25)
    assert g.num_edges == 3
    assert g.capacity("v") == 2
    assert g.weight("z", "u") == pytest.approx(1.25)
    with pytest.raises(ValueError):
        greedy_tightness_triangle(0.0)


def test_star_graph_weights_distinct():
    g = star_graph(5, center_capacity=2)
    weights = sorted(e.weight for e in g.edges())
    assert weights == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert g.capacity("center") == 2
