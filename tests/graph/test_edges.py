"""Tests for edge primitives and the strict total order."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import Edge, edge_key, edge_sort_key, other_endpoint

names = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
)


def test_edge_key_normalizes():
    assert edge_key("b", "a") == ("a", "b")
    assert edge_key("a", "b") == ("a", "b")


def test_edge_key_rejects_self_loop():
    with pytest.raises(ValueError):
        edge_key("x", "x")


@given(u=names, v=names)
def test_edge_key_symmetric(u, v):
    if u != v:
        assert edge_key(u, v) == edge_key(v, u)


def test_other_endpoint():
    assert other_endpoint(("a", "b"), "a") == "b"
    assert other_endpoint(("a", "b"), "b") == "a"
    with pytest.raises(ValueError):
        other_endpoint(("a", "b"), "c")


def test_edge_make_normalizes():
    edge = Edge.make("z", "a", 2.0)
    assert (edge.u, edge.v) == ("a", "z")
    assert edge.key == ("a", "z")
    assert edge.endpoints() == ("a", "z")
    assert edge.weight == 2.0


def test_sort_key_orders_by_weight_desc_then_key():
    rows = [
        (("a", "b"), 1.0),
        (("a", "c"), 3.0),
        (("b", "c"), 3.0),
        (("a", "d"), 2.0),
    ]
    ordered = sorted(rows, key=lambda r: edge_sort_key(*r))
    assert [r[0] for r in ordered] == [
        ("a", "c"),
        ("b", "c"),
        ("a", "d"),
        ("a", "b"),
    ]


@given(
    w1=st.floats(0.1, 100, allow_nan=False),
    w2=st.floats(0.1, 100, allow_nan=False),
)
def test_sort_key_total_order(w1, w2):
    k1 = edge_sort_key(("a", "b"), w1)
    k2 = edge_sort_key(("a", "c"), w2)
    assert k1 != k2  # distinct keys -> never equal, even on weight ties
