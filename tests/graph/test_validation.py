"""Tests for feasibility checking and the ε' violation statistic."""

import pytest

from repro.graph import check_matching, matching_degrees, matching_weight


def test_matching_degrees():
    degrees = matching_degrees([("a", "b"), ("a", "c")])
    assert degrees == {"a": 2, "b": 1, "c": 1}
    assert matching_degrees([]) == {}


def test_matching_weight():
    assert matching_weight({("a", "b"): 2.0, ("c", "d"): 3.5}) == 5.5


def test_feasible_matching_reports_clean():
    report = check_matching(
        {"a": 2, "b": 1, "c": 1}, [("a", "b"), ("a", "c")]
    )
    assert report.feasible
    assert report.average_violation == 0.0
    assert report.max_violation_ratio == 0.0
    assert report.violated_nodes == {}
    assert report.num_nodes == 3


def test_violation_statistic_matches_paper_formula():
    # Node a: |M(a)|=3, b(a)=1 -> overflow 2, ratio 2.
    # Nodes b,c,d: fine. ε' = (1/4)·(2) = 0.5
    capacities = {"a": 1, "b": 2, "c": 2, "d": 2}
    edges = [("a", "b"), ("a", "c"), ("a", "d")]
    report = check_matching(capacities, edges)
    assert not report.feasible
    assert report.average_violation == pytest.approx(0.5)
    assert report.max_violation_ratio == pytest.approx(2.0)
    assert report.violated_nodes == {"a": 2}


def test_average_over_all_nodes_including_isolated():
    capacities = {"a": 1, "b": 1, "x": 5, "y": 5}
    edges = [("a", "b"), ("a", "y")]
    report = check_matching(capacities, edges)
    # only a overflows by 1 (ratio 1); averaged over 4 nodes
    assert report.average_violation == pytest.approx(0.25)


def test_duplicate_edges_rejected():
    with pytest.raises(ValueError):
        check_matching({"a": 1, "b": 1}, [("a", "b"), ("a", "b")])


def test_duplicate_check_can_be_disabled():
    report = check_matching(
        {"a": 2, "b": 2},
        [("a", "b"), ("a", "b")],
        duplicate_check=False,
    )
    assert report.feasible


def test_unknown_endpoint_rejected():
    with pytest.raises(ValueError):
        check_matching({"a": 1}, [("a", "ghost")])


def test_zero_capacity_node_with_matches_rejected():
    with pytest.raises(ValueError):
        check_matching({"a": 0, "b": 1}, [("a", "b")])


def test_empty_everything():
    report = check_matching({}, [])
    assert report.feasible
    assert report.average_violation == 0.0
