"""Tests for the §4 capacity formulas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    activity_capacities,
    quality_item_capacities,
    round_capacity,
    total_bandwidth,
    uniform_item_capacities,
)


def test_round_capacity_half_up_with_floor():
    assert round_capacity(0.2) == 1
    assert round_capacity(1.4) == 1
    assert round_capacity(1.5) == 2
    assert round_capacity(2.5) == 3  # half-up, not banker's
    assert round_capacity(0.0) == 1


def test_activity_capacities_scale_with_alpha():
    activity = {"u1": 3, "u2": 10}
    assert activity_capacities(activity, 1.0) == {"u1": 3, "u2": 10}
    assert activity_capacities(activity, 2.0) == {"u1": 6, "u2": 20}
    assert activity_capacities(activity, 0.1) == {"u1": 1, "u2": 1}


def test_activity_capacities_rejects_bad_alpha():
    with pytest.raises(ValueError):
        activity_capacities({"u": 1}, 0.0)
    with pytest.raises(ValueError):
        activity_capacities({"u": 1}, -2.0)


def test_total_bandwidth():
    assert total_bandwidth({"a": 2, "b": 5}) == 7
    assert total_bandwidth({}) == 0


def test_uniform_item_capacities_is_b_over_t():
    caps = uniform_item_capacities(["t1", "t2", "t3", "t4"], 10)
    assert caps == {f"t{i}": 3 for i in range(1, 5)}  # 10/4 = 2.5 -> 3
    assert uniform_item_capacities([], 10) == {}
    # floor of 1 when bandwidth is tiny
    assert uniform_item_capacities(["a", "b"], 0) == {"a": 1, "b": 1}


def test_quality_capacities_proportional():
    caps = quality_item_capacities({"hi": 30.0, "lo": 10.0}, 100)
    assert caps["hi"] == 75
    assert caps["lo"] == 25


def test_quality_capacities_zero_quality_floor():
    caps = quality_item_capacities({"a": 0.0, "b": 100.0}, 50)
    assert caps["a"] == 1
    assert caps["b"] == 50


def test_quality_capacities_all_zero():
    assert quality_item_capacities({"a": 0.0, "b": 0.0}, 50) == {
        "a": 1,
        "b": 1,
    }


def test_quality_capacities_reject_negative():
    with pytest.raises(ValueError):
        quality_item_capacities({"a": -1.0}, 10)


@given(
    quality=st.dictionaries(
        st.sampled_from([f"t{i}" for i in range(8)]),
        st.floats(0.0, 100.0, allow_nan=False),
        min_size=1,
    ),
    bandwidth=st.integers(min_value=0, max_value=10_000),
)
def test_quality_capacities_properties(quality, bandwidth):
    caps = quality_item_capacities(quality, bandwidth)
    assert set(caps) == set(quality)
    assert all(b >= 1 for b in caps.values())
    # Budget approximately preserved up to rounding: Σb ≤ B + |T|
    assert sum(caps.values()) <= bandwidth + len(quality)
    # Monotone in quality: a strictly better item never gets less.
    ordered = sorted(quality.items(), key=lambda kv: kv[1])
    for (low_item, low_q), (high_item, high_q) in zip(
        ordered, ordered[1:]
    ):
        if high_q >= low_q:
            assert caps[high_item] >= caps[low_item]
