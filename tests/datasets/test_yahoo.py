"""Tests for the yahoo-answers-like dataset generator."""

import pytest

from repro.datasets import yahoo_answers, yahoo_answers_dataset


@pytest.fixture(scope="module")
def small():
    return yahoo_answers_dataset(
        "ya-test", num_questions=80, num_users=25, seed=3
    )


def test_sizes_and_scheme(small):
    assert small.num_items == 80
    assert small.num_consumers == 25
    assert small.capacity_scheme == "uniform"
    assert small.item_quality == {}


def test_uniform_question_capacities(small):
    item_caps, consumer_caps = small.capacities(alpha=1.0)
    values = set(item_caps.values())
    assert len(values) == 1  # b(q) constant across questions
    bandwidth = sum(consumer_caps.values())
    expected = max(1, round(bandwidth / small.num_items))
    assert values == {expected}


def test_tfidf_weights_are_floats_not_counts(small):
    # tf-idf re-weighting should produce non-integer weights generally.
    non_integer = 0
    for vector in list(small.items.values())[:20]:
        non_integer += any(w != int(w) for w in vector.values())
    assert non_integer > 10


def test_activity_is_power_law_with_floor(small):
    activities = list(small.consumer_activity.values())
    assert min(activities) >= 1
    assert max(activities) > min(activities)


def test_deterministic_given_seed():
    a = yahoo_answers_dataset("x", num_questions=30, num_users=8, seed=5)
    b = yahoo_answers_dataset("x", num_questions=30, num_users=8, seed=5)
    assert a.items == b.items
    assert a.consumer_activity == b.consumer_activity


def test_named_builder():
    ds = yahoo_answers(seed=0, scale=0.01)
    assert ds.name == "yahoo-answers"
    assert ds.num_items >= 10


def test_candidate_edges_exist_at_moderate_sigma(small):
    edges = small.edges(2.0)
    assert edges
    assert all(w >= 2.0 for _, _, w in edges)
