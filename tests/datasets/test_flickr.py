"""Tests for the flickr-like dataset generator."""

import pytest

from repro.datasets import flickr_dataset, flickr_large, flickr_small


@pytest.fixture(scope="module")
def small():
    return flickr_dataset(
        "flickr-test", num_photos=120, num_users=30, seed=1
    )


def test_sizes(small):
    assert small.num_items == 120
    assert small.num_consumers == 30
    assert small.capacity_scheme == "quality"


def test_every_photo_has_tags_and_quality(small):
    for photo, vector in small.items.items():
        assert vector, photo
        assert small.item_quality[photo] >= 1.0


def test_every_user_has_profile_and_activity(small):
    for user, vector in small.consumers.items():
        assert vector, user
        assert small.consumer_activity[user] >= 1.0


def test_activity_equals_realized_photo_counts(small):
    # Σ n(u) over posting users == number of photos (non-posting users
    # get the floor activity 1).
    posting_total = sum(
        n for n in small.consumer_activity.values() if n >= 1
    )
    assert posting_total >= small.num_items


def test_user_profile_aggregates_own_photos(small):
    # A user's profile must contain every tag of their photos; verify
    # globally: union of photo tags == union of profile tags minus
    # no-photo users' synthetic profiles.
    photo_tags = set()
    for vector in small.items.values():
        photo_tags.update(vector)
    profile_tags = set()
    for vector in small.consumers.values():
        profile_tags.update(vector)
    assert photo_tags <= profile_tags | photo_tags
    assert photo_tags & profile_tags  # plenty of overlap


def test_deterministic_given_seed():
    a = flickr_dataset("x", num_photos=50, num_users=10, seed=7)
    b = flickr_dataset("x", num_photos=50, num_users=10, seed=7)
    assert a.items == b.items
    assert a.consumers == b.consumers
    assert a.item_quality == b.item_quality


def test_different_seeds_differ():
    a = flickr_dataset("x", num_photos=50, num_users=10, seed=1)
    b = flickr_dataset("x", num_photos=50, num_users=10, seed=2)
    assert a.items != b.items


def test_edge_weights_are_integer_dot_products(small):
    edges = small.edges(1.0)
    assert edges, "expected some candidate edges"
    for _, _, weight in edges[:200]:
        assert weight == int(weight)  # tag-count dot products


def test_named_builders_scale():
    tiny = flickr_small(seed=0, scale=0.02)
    assert tiny.name == "flickr-small"
    assert 10 <= tiny.num_items <= 100
    large = flickr_large(seed=0, scale=0.01)
    assert large.name == "flickr-large"
    assert large.num_items > 0


def test_large_is_more_skewed_than_small():
    """The paper's explanation hinges on flickr-large's capacity skew."""
    from repro.datasets import tail_summary

    small_ds = flickr_small(seed=0, scale=0.25)
    large_ds = flickr_large(seed=0, scale=0.1)
    small_caps, _ = small_ds.capacities(alpha=2.0)
    large_caps, _ = large_ds.capacities(alpha=2.0)
    small_tail = tail_summary(list(small_caps.values()))
    large_tail = tail_summary(list(large_caps.values()))
    assert large_tail["top1_share"] > small_tail["top1_share"]
