"""Tests for the Dataset container and topic model."""

import random

import pytest

from repro.datasets import Dataset, TopicModel


def make_dataset(**overrides) -> Dataset:
    defaults = dict(
        name="tiny",
        items={"t1": {"a": 2.0, "b": 1.0}, "t2": {"c": 3.0}},
        consumers={"c1": {"a": 1.0, "c": 1.0}, "c2": {"b": 2.0}},
        consumer_activity={"c1": 3.0, "c2": 1.0},
        item_quality={"t1": 10.0, "t2": 30.0},
        capacity_scheme="quality",
    )
    defaults.update(overrides)
    return Dataset(**defaults)


def test_topic_model_document_properties():
    model = TopicModel(50, 4, rng=random.Random(0))
    mixture = model.mixture()
    assert len(mixture) == 4
    assert sum(mixture) == pytest.approx(1.0)
    doc = model.document(mixture, 30)
    assert sum(doc.values()) == pytest.approx(30)
    assert all(term.startswith("w") for term in doc)


def test_topic_model_deterministic():
    a = TopicModel(50, 4, rng=random.Random(5))
    b = TopicModel(50, 4, rng=random.Random(5))
    assert a.document(a.mixture(), 20) == b.document(b.mixture(), 20)


def test_edges_threshold_and_cache():
    ds = make_dataset()
    all_edges = ds.edges(0.5)
    high = ds.edges(2.5)
    assert len(high) <= len(all_edges)
    assert all(w >= 2.5 for _, _, w in high)
    # lowering below the cached floor recomputes
    again = ds.edges(0.1)
    assert len(again) >= len(all_edges)


def test_edges_rejects_bad_sigma():
    with pytest.raises(ValueError):
        make_dataset().edges(0.0)


def test_sigma_for_edge_count_inverts_distribution():
    ds = make_dataset()
    total = len(ds.edges(0.5))
    assert total >= 3
    sigma = ds.sigma_for_edge_count(2, 0.5)
    assert len(ds.edges(sigma)) >= 2
    # asking for everything returns the floor
    assert ds.sigma_for_edge_count(10_000, 0.5) == 0.5


def test_capacities_quality_scheme():
    ds = make_dataset()
    item_caps, consumer_caps = ds.capacities(alpha=2.0)
    # b(u) = alpha * n(u)
    assert consumer_caps == {"c1": 6, "c2": 2}
    bandwidth = 8
    # quality proportional: t2 gets 3x t1's share of B=8
    assert item_caps["t2"] == 6
    assert item_caps["t1"] == 2


def test_capacities_uniform_scheme():
    ds = make_dataset(capacity_scheme="uniform", item_quality={})
    item_caps, consumer_caps = ds.capacities(alpha=1.0)
    bandwidth = sum(consumer_caps.values())  # 4
    assert set(item_caps.values()) == {2}  # 4 / 2 items


def test_capacities_unknown_scheme_rejected():
    ds = make_dataset(capacity_scheme="nope")
    with pytest.raises(ValueError, match="unknown capacity scheme"):
        ds.capacities(1.0)


def test_graph_combines_edges_and_capacities():
    ds = make_dataset()
    graph = ds.graph(sigma=0.5, alpha=2.0)
    assert sorted(graph.items()) == ["t1", "t2"]
    assert sorted(graph.consumers()) == ["c1", "c2"]
    assert graph.capacity("c1") == 6
    assert graph.num_edges == len(ds.edges(0.5))


def test_table1_row():
    ds = make_dataset()
    row = ds.table1_row(0.5)
    assert row["items"] == 2
    assert row["consumers"] == 2
    assert row["edges"] == len(ds.edges(0.5))


def test_similarity_values():
    ds = make_dataset()
    values = ds.similarity_values(0.5)
    assert all(v >= 0.5 for v in values)
    assert len(values) == len(ds.edges(0.5))
