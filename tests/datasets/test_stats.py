"""Tests for the distribution statistics (Figures 6-7 machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import log_histogram, tail_summary


def test_log_histogram_counts_everything():
    values = [1, 2, 4, 8, 16, 32, 64]
    histogram = log_histogram(values, num_bins=6)
    assert histogram.count == 7
    assert sum(count for _, _, count in histogram.bins) == 7
    assert histogram.maximum == 64
    assert histogram.mean == pytest.approx(sum(values) / 7)


def test_log_histogram_ignores_nonpositive():
    histogram = log_histogram([0, -1, 5.0])
    assert histogram.count == 1


def test_log_histogram_degenerate_cases():
    assert log_histogram([]).count == 0
    single = log_histogram([3.0, 3.0])
    assert single.count == 2
    assert single.bins == [(3.0, 3.0, 2)]


def test_log_histogram_rows_render():
    rows = log_histogram([1.0, 10.0], num_bins=2).rows()
    assert len(rows) == 2
    assert all(isinstance(label, str) for label, _ in rows)


@given(
    values=st.lists(
        st.floats(0.001, 1e6, allow_nan=False), min_size=1, max_size=200
    )
)
def test_log_histogram_partitions_sample(values):
    histogram = log_histogram(values)
    assert sum(count for _, _, count in histogram.bins) == len(values)


def test_tail_summary_quantiles():
    summary = tail_summary(list(range(1, 101)))
    assert summary["min"] == 1
    assert summary["max"] == 100
    # Nearest-rank (the shared telemetry percentile): rank 50 of 100.
    assert summary["p50"] == 50
    assert summary["p90"] == 90
    assert summary["p99"] == 99
    assert summary["mean"] == pytest.approx(50.5)
    assert 0 < summary["top1_share"] < 1


def test_tail_summary_empty():
    assert tail_summary([]) == {}


def test_tail_summary_skew_ordering():
    flat = tail_summary([1.0] * 100)
    skewed = tail_summary([1.0] * 99 + [1000.0])
    assert skewed["top1_share"] > flat["top1_share"]
