"""Tests for the heavy-tailed samplers."""

import random
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import ZipfSampler, discrete_power_law


def test_zipf_validates_arguments():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(5, exponent=0.0)


def test_zipf_single_rank():
    sampler = ZipfSampler(1)
    assert sampler.sample(random.Random(0)) == 0


def test_zipf_ranks_in_range():
    sampler = ZipfSampler(50, 1.1)
    rng = random.Random(1)
    draws = sampler.sample_many(rng, 500)
    assert all(0 <= r < 50 for r in draws)


def test_zipf_rank_zero_most_frequent():
    sampler = ZipfSampler(100, 1.2)
    rng = random.Random(2)
    counts = Counter(sampler.sample_many(rng, 5000))
    assert counts[0] == max(counts.values())
    # monotone-ish decay between head ranks
    assert counts[0] > counts.get(10, 0) > counts.get(90, 0) - 50


def test_zipf_deterministic_given_seed():
    sampler = ZipfSampler(30, 1.1)
    a = sampler.sample_many(random.Random(9), 50)
    b = sampler.sample_many(random.Random(9), 50)
    assert a == b


def test_power_law_validates_arguments():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        discrete_power_law(rng, exponent=1.0)
    with pytest.raises(ValueError):
        discrete_power_law(rng, exponent=2.0, minimum=0)


@given(
    seed=st.integers(0, 100),
    exponent=st.floats(1.2, 4.0, allow_nan=False),
    minimum=st.integers(1, 5),
)
def test_power_law_respects_bounds(seed, exponent, minimum):
    rng = random.Random(seed)
    value = discrete_power_law(
        rng, exponent=exponent, minimum=minimum, maximum=1000
    )
    assert minimum <= value <= 1000


def test_power_law_has_heavy_tail():
    rng = random.Random(3)
    draws = [
        discrete_power_law(rng, exponent=1.8, maximum=10_000)
        for _ in range(3000)
    ]
    assert max(draws) > 20  # some big values appear
    assert sorted(draws)[len(draws) // 2] <= 3  # median stays small
