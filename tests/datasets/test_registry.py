"""Tests for the dataset registry."""

import pytest

from repro.datasets import DATASETS, load_dataset


def test_registry_contains_paper_datasets():
    assert set(DATASETS) == {
        "flickr-small",
        "flickr-large",
        "yahoo-answers",
    }


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_load_tiny_scale(name):
    dataset = load_dataset(name, seed=1, scale=0.01)
    assert dataset.name == name
    assert dataset.num_items >= 10
    assert dataset.num_consumers >= 5
    assert dataset.consumer_activity


def test_unknown_dataset():
    with pytest.raises(ValueError, match="unknown dataset"):
        load_dataset("netflix")
