"""End-to-end tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.graph import read_edges
from repro.matching import ALGORITHMS


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("corpus") / "flickr")
    code = main(
        [
            "generate",
            "flickr-small",
            "--out",
            directory,
            "--scale",
            "0.05",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return directory


def test_generate_writes_all_files(corpus_dir, capsys):
    for name in (
        "items.tsv",
        "consumers.tsv",
        "activity.tsv",
        "quality.tsv",
        "meta.json",
    ):
        assert os.path.exists(os.path.join(corpus_dir, name)), name
    with open(os.path.join(corpus_dir, "meta.json")) as handle:
        meta = json.load(handle)
    assert meta["name"] == "flickr-small"
    assert meta["capacity_scheme"] == "quality"


def test_join_writes_edges(corpus_dir, capsys):
    code = main(["join", corpus_dir, "--sigma", "2.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "candidate edges" in out
    edges = list(read_edges(os.path.join(corpus_dir, "edges.tsv")))
    assert edges
    assert all(weight >= 2.0 for _, _, weight in edges)


def test_join_mapreduce_method_matches_exact(corpus_dir, tmp_path):
    exact_path = str(tmp_path / "exact.tsv")
    mr_path = str(tmp_path / "mr.tsv")
    assert (
        main(
            [
                "join",
                corpus_dir,
                "--sigma",
                "3.0",
                "--method",
                "exact",
                "--out",
                exact_path,
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "join",
                corpus_dir,
                "--sigma",
                "3.0",
                "--method",
                "mapreduce",
                "--out",
                mr_path,
            ]
        )
        == 0
    )
    exact_rows = [(t, c) for t, c, _ in read_edges(exact_path)]
    mr_rows = [(t, c) for t, c, _ in read_edges(mr_path)]
    assert exact_rows == mr_rows


def test_join_disk_fs_with_spill_matches_memory(corpus_dir, tmp_path, capsys):
    """The ISSUE acceptance run: --fs disk --spill-threshold spills and
    produces byte-identical candidate edges to the in-memory run."""
    memory_path = str(tmp_path / "memory.tsv")
    disk_path = str(tmp_path / "disk.tsv")
    assert (
        main(
            [
                "join",
                corpus_dir,
                "--sigma",
                "2.0",
                "--method",
                "mapreduce",
                "--out",
                memory_path,
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                "join",
                corpus_dir,
                "--sigma",
                "2.0",
                "--method",
                "mapreduce",
                "--fs",
                "disk",
                "--spill-threshold",
                "50",
                "--out",
                disk_path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "mapreduce/serial/disk" in out
    assert "shuffle spilled" in out
    assert "dfs root:" in out
    with open(memory_path, "rb") as handle:
        memory_bytes = handle.read()
    with open(disk_path, "rb") as handle:
        disk_bytes = handle.read()
    assert memory_bytes == disk_bytes
    assert memory_bytes  # non-trivial corpus


def test_match_accepts_storage_options(corpus_dir, tmp_path, capsys):
    matching_path = str(tmp_path / "matching-disk.tsv")
    code = main(
        [
            "match",
            corpus_dir,
            "--sigma",
            "2.0",
            "--algorithm",
            "greedy_mr",
            "--fs",
            "disk",
            "--spill-threshold",
            "0",
            "--out",
            matching_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "value=" in out
    assert "shuffle spilled" in out
    # On the delta plane (the default) --fs backs the resident state
    # store, so no "little effect" note is printed...
    assert "little effect" not in out
    assert os.path.getsize(matching_path) > 0


def test_match_no_delta_notes_fs_is_mostly_unused(corpus_dir, tmp_path, capsys):
    # ...whereas the full-state plane streams round state driver-side,
    # and the CLI says so instead of pretending the dfs matters.
    code = main(
        [
            "match",
            corpus_dir,
            "--sigma",
            "2.0",
            "--algorithm",
            "greedy_mr",
            "--no-delta",
            "--fs",
            "disk",
            "--out",
            str(tmp_path / "matching-full.tsv"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "little effect" in out


def test_match_delta_modes_agree(corpus_dir, tmp_path, capsys):
    """--delta and --no-delta write byte-identical matchings."""
    paths = {}
    for flag in ("--delta", "--no-delta"):
        paths[flag] = str(tmp_path / f"matching{flag}.tsv")
        assert (
            main(
                [
                    "match",
                    corpus_dir,
                    "--sigma",
                    "2.0",
                    "--algorithm",
                    "stack_mr",
                    flag,
                    "--out",
                    paths[flag],
                ]
            )
            == 0
        )
    capsys.readouterr()
    with open(paths["--delta"], "rb") as handle:
        delta_bytes = handle.read()
    with open(paths["--no-delta"], "rb") as handle:
        full_bytes = handle.read()
    assert delta_bytes == full_bytes and delta_bytes


def test_join_profile_reports_phase_timings(corpus_dir, tmp_path, capsys):
    code = main(
        [
            "join",
            corpus_dir,
            "--sigma",
            "2.0",
            "--method",
            "mapreduce",
            "--profile",
            "--out",
            str(tmp_path / "edges.tsv"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase timings:" in out
    assert "map " in out and "shuffle " in out and "reduce " in out
    assert "[3 jobs]" in out


def test_join_profile_with_spill_reports_spill_time(
    corpus_dir, tmp_path, capsys
):
    code = main(
        [
            "join",
            corpus_dir,
            "--sigma",
            "2.0",
            "--method",
            "mapreduce",
            "--spill-threshold",
            "0",
            "--profile",
            "--out",
            str(tmp_path / "edges.tsv"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase timings:" in out
    assert "(spill " in out


def test_join_profile_without_cluster_prints_note(
    corpus_dir, tmp_path, capsys
):
    code = main(
        [
            "join",
            corpus_dir,
            "--sigma",
            "2.0",
            "--method",
            "exact",
            "--profile",
            "--out",
            str(tmp_path / "edges.tsv"),
        ]
    )
    assert code == 0
    assert "n/a" in capsys.readouterr().out


def test_join_rejects_unknown_fs(corpus_dir):
    with pytest.raises(SystemExit):
        main(["join", corpus_dir, "--sigma", "2.0", "--fs", "tape"])


def test_join_rejects_negative_spill_threshold(corpus_dir):
    with pytest.raises(SystemExit):  # argparse usage error, not traceback
        main(
            [
                "join",
                corpus_dir,
                "--sigma",
                "2.0",
                "--method",
                "mapreduce",
                "--spill-threshold",
                "-1",
            ]
        )


@pytest.mark.parametrize("algorithm", ["greedy_mr", "stack_mr"])
def test_match_produces_feasible_output(
    corpus_dir, tmp_path, capsys, algorithm
):
    matching_path = str(tmp_path / f"{algorithm}.tsv")
    caps_path = str(tmp_path / f"{algorithm}-caps.tsv")
    code = main(
        [
            "match",
            corpus_dir,
            "--sigma",
            "2.0",
            "--alpha",
            "2.0",
            "--algorithm",
            algorithm,
            "--out",
            matching_path,
            "--capacities-out",
            caps_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "value=" in out
    matched = list(read_edges(matching_path))
    assert matched
    from repro.graph import check_matching, read_capacities
    from repro.graph.edges import edge_key

    capacities = read_capacities(caps_path)
    report = check_matching(
        capacities, [edge_key(u, v) for u, v, _ in matched]
    )
    if algorithm == "greedy_mr":
        assert report.feasible
    else:
        assert report.average_violation <= 0.10


def test_experiment_subcommand(capsys):
    code = main(
        ["experiment", "--scale", "0.05", "--only", "table1"]
    )
    assert code == 0
    assert "Table 1" in capsys.readouterr().out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_dataset_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "imdb", "--out", "/tmp/x"])


def test_serve_streams_events_and_verifies(corpus_dir, capsys):
    code = main(
        [
            "serve",
            corpus_dir,
            "--sigma",
            "2.0",
            "--events",
            "24",
            "--batch-size",
            "8",
            "--max-delay-ms",
            "20",
            "--seed",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "events admitted" in out
    assert "coalescing x" in out
    assert "latency: p50=" in out
    assert "cold-batch check: identical" in out


def test_serve_accepts_cluster_options(corpus_dir, capsys):
    code = main(
        [
            "serve",
            corpus_dir,
            "--sigma",
            "2.0",
            "--events",
            "12",
            "--backend",
            "threads",
            "--fs",
            "disk",
            "--spill-threshold",
            "8",
            "--no-verify",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "cold-batch check" not in out


def test_serve_metrics_endpoint_matches_service_metrics(
    corpus_dir, capsys
):
    import socket
    import threading
    import time
    import urllib.request

    # The CLI tears the exporter down before returning, so scrape from
    # a thread polling a pre-picked port while the stream is driven.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    captured = {}

    def scraper(stop):
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not stop.is_set():
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics.json", timeout=2
                ) as response:
                    captured["scrape"] = json.loads(response.read())
                return
            except OSError:
                time.sleep(0.02)

    stop = threading.Event()
    thread = threading.Thread(target=scraper, args=(stop,))
    thread.start()
    try:
        code = main(
            [
                "serve",
                corpus_dir,
                "--sigma",
                "2.0",
                "--events",
                "24",
                "--batch-size",
                "8",
                "--max-delay-ms",
                "20",
                "--seed",
                "5",
                "--metrics-port",
                str(port),
            ]
        )
    finally:
        stop.set()
        thread.join(timeout=30)
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"metrics endpoint: http://127.0.0.1:{port}/metrics" in out
    scrape = captured.get("scrape")
    assert scrape is not None, "scraper thread never reached /metrics.json"
    # The scrape carries the same registry the CLI reports from.
    assert "runtime" in scrape["registry"]["counters"]
    assert scrape["service"]["events_admitted"] >= 0


def test_serve_trace_exports_flush_spans(corpus_dir, tmp_path, capsys):
    span_log = str(tmp_path / "spans.json")
    code = main(
        [
            "serve",
            corpus_dir,
            "--sigma",
            "2.0",
            "--events",
            "12",
            "--batch-size",
            "4",
            "--seed",
            "5",
            "--trace",
            span_log,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "span log:" in out
    from repro.telemetry import load_spans

    spans = load_spans(span_log)
    kinds = {span.kind for span in spans}
    assert {"flush", "stage", "job", "phase", "task"} <= kinds
    names = {span.name for span in spans}
    assert {"admit", "reconverge"} <= names

    # And the trace renders.
    code = main(["trace", span_log, "--max-tasks", "2"])
    rendered = capsys.readouterr().out
    assert code == 0
    assert "flush (flush)" in rendered
    assert "admit (stage)" in rendered


def test_join_trace_subcommand_roundtrip(corpus_dir, tmp_path, capsys):
    span_log = str(tmp_path / "join-spans.json")
    code = main(
        [
            "join",
            corpus_dir,
            "--sigma",
            "2.0",
            "--method",
            "mapreduce",
            "--trace",
            span_log,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "span log:" in out
    code = main(["trace", span_log])
    rendered = capsys.readouterr().out
    assert code == 0
    assert "(job)" in rendered
    assert "phase:map (phase)" in rendered
    assert "more tasks" in rendered or "(task)" in rendered


# -- registry-driven coverage: every algorithm through `repro match` -------


def _match_sigma(algorithm):
    """Per-algorithm sigma: bruteforce is capped at 26 edges, so it
    gets a similarity threshold high enough to prune the candidate
    graph under the cap; everything else shares one moderate cell."""
    return "80" if algorithm == "bruteforce" else "4.0"


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_match_runs_every_registered_algorithm(
    corpus_dir, tmp_path, capsys, algorithm
):
    """The CLI registry contract: every algorithm in
    :data:`repro.matching.ALGORITHMS` — centralized, MapReduce,
    STACK-family, suitor, exact — solves the flickr-small corpus
    through ``repro match`` without error and emits a non-empty,
    capacity-feasible-or-reported matching."""
    out = str(tmp_path / f"matching-{algorithm}.tsv")
    code = main(
        [
            "match",
            corpus_dir,
            "--sigma",
            _match_sigma(algorithm),
            "--algorithm",
            algorithm,
            "--out",
            out,
        ]
    )
    printed = capsys.readouterr().out
    assert code == 0, printed
    assert "value=" in printed
    assert list(read_edges(out)), f"{algorithm} wrote no matching"


@pytest.mark.cluster
def test_match_cluster_backend_agrees_with_serial(
    corpus_dir, tmp_path, capsys
):
    """`--backend cluster --workers 2` through the real CLI produces
    the same matching file as the serial backend."""
    serial_out = str(tmp_path / "serial.tsv")
    cluster_out = str(tmp_path / "cluster.tsv")
    for backend, out, extra in (
        ("serial", serial_out, []),
        ("cluster", cluster_out, ["--workers", "2"]),
    ):
        code = main(
            [
                "match",
                corpus_dir,
                "--sigma",
                "4.0",
                "--algorithm",
                "greedy_mr",
                "--backend",
                backend,
                "--out",
                out,
            ]
            + extra
        )
        assert code == 0, capsys.readouterr().out
    capsys.readouterr()
    assert sorted(read_edges(serial_out)) == sorted(
        read_edges(cluster_out)
    )
