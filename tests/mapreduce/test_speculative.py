"""Tests for speculative execution (task-retry determinism checking)."""

import random

import pytest

from repro.mapreduce import (
    JobValidationError,
    MapReduceJob,
    MapReduceRuntime,
    stable_hash,
)


class PureJob(MapReduceJob):
    """Stateless; randomness derived from the input key (allowed)."""

    def map(self, key, value):
        rng = random.Random(stable_hash((42, key)))
        yield key, value + rng.random()

    def reduce(self, key, values):
        yield key, sum(values)


class StatefulJob(MapReduceJob):
    """Carries mutable state across map calls (forbidden)."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def map(self, key, value):
        self.calls += 1
        yield key, self.calls

    def reduce(self, key, values):
        yield key, sum(values)


class FreshRandomJob(MapReduceJob):
    """Draws from an advancing RNG stream (forbidden)."""

    def __init__(self):
        super().__init__()
        self.rng = random.Random(0)

    def map(self, key, value):
        yield key, self.rng.random()

    def reduce(self, key, values):
        yield key, values[0]


RECORDS = [(i, float(i)) for i in range(10)]


def test_pure_job_passes_speculative_execution(backend):
    runtime = MapReduceRuntime(
        speculative_execution=True, backend=backend
    )
    strict = runtime.run(PureJob(), RECORDS)
    relaxed = MapReduceRuntime().run(PureJob(), RECORDS)
    assert sorted(strict) == sorted(relaxed)


def test_stateful_job_detected(backend):
    # Mismatch detection lives inside the task unit of work, so it
    # fires identically on the serial, threads, and processes backends.
    runtime = MapReduceRuntime(
        speculative_execution=True, backend=backend
    )
    with pytest.raises(JobValidationError, match="non-deterministic"):
        runtime.run(StatefulJob(), RECORDS)


def test_fresh_random_job_detected(backend):
    runtime = MapReduceRuntime(
        speculative_execution=True, backend=backend
    )
    with pytest.raises(JobValidationError, match="non-deterministic"):
        runtime.run(FreshRandomJob(), RECORDS)


def test_counters_not_double_metered(backend):
    runtime = MapReduceRuntime(
        speculative_execution=True, backend=backend
    )
    runtime.run(PureJob(), RECORDS)
    assert runtime.counters.get("PureJob", "map.input.records") == len(
        RECORDS
    )


def test_matching_jobs_survive_speculative_execution():
    """The package's own jobs must all be retry-safe."""
    from repro.graph import random_bipartite
    from repro.matching import greedy_mr_b_matching, stack_mr_b_matching

    graph = random_bipartite(8, 6, 0.4, rng=random.Random(1))
    runtime = MapReduceRuntime(speculative_execution=True)
    greedy = greedy_mr_b_matching(graph, runtime=runtime)
    stack = stack_mr_b_matching(graph, runtime=runtime, seed=3)
    assert greedy.value > 0
    assert stack.value > 0


def test_simjoin_jobs_survive_speculative_execution():
    from repro.simjoin import mapreduce_similarity_join

    runtime = MapReduceRuntime(speculative_execution=True)
    rows = mapreduce_similarity_join(
        {"t1": {"a": 2.0}},
        {"c1": {"a": 1.0}},
        1.0,
        runtime=runtime,
    )
    assert rows == [("t1", "c1", 2.0)]
