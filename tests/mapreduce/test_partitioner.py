"""Unit and property tests for canonical key encoding and hashing."""

import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import (
    HashPartitioner,
    canonical_bytes,
    fast_hash_bytes,
    stable_hash,
)
from repro.mapreduce.errors import JobValidationError

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden_hashes.json"
)

key_strategy = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=12),
        st.binary(max_size=12),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


def test_known_hash_is_stable_across_runs():
    # Regression pin: if this changes, shuffles are no longer stable.
    assert stable_hash("node-1") == stable_hash("node-1")
    assert canonical_bytes("a") == b"Sa"
    assert canonical_bytes(1) == b"I1"
    assert canonical_bytes(True) == b"B1"
    assert canonical_bytes(None) == b"N"


def test_type_tags_distinguish_lookalikes():
    assert canonical_bytes(1) != canonical_bytes("1")
    assert canonical_bytes(True) != canonical_bytes(1)
    assert canonical_bytes(b"a") != canonical_bytes("a")
    assert canonical_bytes((1,)) != canonical_bytes(1)


def test_unsupported_key_raises():
    with pytest.raises(JobValidationError):
        canonical_bytes({"a": 1})


@given(key=key_strategy)
def test_encoding_is_deterministic(key):
    assert canonical_bytes(key) == canonical_bytes(key)


@given(a=key_strategy, b=key_strategy)
def test_encoding_is_injective_on_samples(a, b):
    if a != b:
        assert canonical_bytes(a) != canonical_bytes(b)


@given(key=key_strategy, n=st.integers(min_value=1, max_value=64))
def test_partitioner_in_range(key, n):
    index = HashPartitioner()(key, n)
    assert 0 <= index < n


def test_partitioner_spreads_keys():
    partitioner = HashPartitioner()
    buckets = {partitioner(f"key{i}", 8) for i in range(100)}
    assert len(buckets) == 8  # all partitions get some keys


# -- the fast hash of the encoded shuffle plane ------------------------------


def test_golden_hashes_pinned():
    """Both hash functions and the canonical encoding are frozen.

    The golden file pins ``fast_hash_bytes`` (which decides every
    shuffle's partition assignment) next to the MD5 ``stable_hash``
    baseline it replaced on the hot path (which still seeds the
    randomized matching drivers).  A diff here means every recorded
    shuffle layout and every seeded experiment changes — regenerate the
    file only for a deliberate, CHANGES.md-worthy format break.
    """
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert len(golden) >= 20
    for row in golden:
        key = eval(row["key"])  # reprs of plain literals, test-owned
        encoded = canonical_bytes(key)
        assert encoded.hex() == row["canonical_hex"], row["key"]
        assert fast_hash_bytes(encoded) == row["fast_hash"], row["key"]
        assert stable_hash(key) == row["stable_hash"], row["key"]


def test_partition_bytes_agrees_with_call():
    """The byte-level entry point is the same function as key-level."""
    partitioner = HashPartitioner()
    for key in ("a", 7, ("t1", "c2"), None, 2.5, b"x", (1, (2, "3"))):
        for n in (1, 2, 7, 64):
            assert partitioner(key, n) == HashPartitioner.partition_bytes(
                canonical_bytes(key), n
            )


def _spread(keys, partitions=8):
    counts = [0] * partitions
    for key in keys:
        counts[HashPartitioner()(key, partitions)] += 1
    return counts


def test_fast_hash_distributes_mixed_type_keys():
    """Every partition gets a reasonable share of a mixed-type key
    population (strings, ints, floats, pairs) — the workload the
    shuffle actually sees."""
    keys = (
        [f"term{i}" for i in range(200)]
        + [i for i in range(200)]
        + [float(i) / 3 for i in range(200)]
        + [(f"t{i % 20}", f"c{i // 20}") for i in range(200)]
        + [(i, f"w{i}") for i in range(200)]
    )
    counts = _spread(keys)
    expected = len(keys) / len(counts)
    assert min(counts) > expected * 0.5
    assert max(counts) < expected * 1.5


def test_fast_hash_distributes_sequential_int_keys():
    """Sequential integers — the degenerate key stream — still spread."""
    counts = _spread(list(range(1000)), partitions=16)
    expected = 1000 / 16
    assert min(counts) > expected * 0.5
    assert max(counts) < expected * 1.5


@given(key=key_strategy)
def test_fast_hash_is_32_bit_and_deterministic(key):
    value = fast_hash_bytes(canonical_bytes(key))
    assert 0 <= value < 2**32
    assert value == fast_hash_bytes(canonical_bytes(key))
