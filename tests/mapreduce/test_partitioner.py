"""Unit and property tests for canonical key encoding and hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import HashPartitioner, canonical_bytes, stable_hash
from repro.mapreduce.errors import JobValidationError

key_strategy = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=12),
        st.binary(max_size=12),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


def test_known_hash_is_stable_across_runs():
    # Regression pin: if this changes, shuffles are no longer stable.
    assert stable_hash("node-1") == stable_hash("node-1")
    assert canonical_bytes("a") == b"Sa"
    assert canonical_bytes(1) == b"I1"
    assert canonical_bytes(True) == b"B1"
    assert canonical_bytes(None) == b"N"


def test_type_tags_distinguish_lookalikes():
    assert canonical_bytes(1) != canonical_bytes("1")
    assert canonical_bytes(True) != canonical_bytes(1)
    assert canonical_bytes(b"a") != canonical_bytes("a")
    assert canonical_bytes((1,)) != canonical_bytes(1)


def test_unsupported_key_raises():
    with pytest.raises(JobValidationError):
        canonical_bytes({"a": 1})


@given(key=key_strategy)
def test_encoding_is_deterministic(key):
    assert canonical_bytes(key) == canonical_bytes(key)


@given(a=key_strategy, b=key_strategy)
def test_encoding_is_injective_on_samples(a, b):
    if a != b:
        assert canonical_bytes(a) != canonical_bytes(b)


@given(key=key_strategy, n=st.integers(min_value=1, max_value=64))
def test_partitioner_in_range(key, n):
    index = HashPartitioner()(key, n)
    assert 0 <= index < n


def test_partitioner_spreads_keys():
    partitioner = HashPartitioner()
    buckets = {partitioner(f"key{i}", 8) for i in range(100)}
    assert len(buckets) == 8  # all partitions get some keys
