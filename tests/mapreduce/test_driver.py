"""Tests for the iterative driver."""

import pytest

from repro.mapreduce import (
    IterativeDriver,
    MapReduceJob,
    MapReduceRuntime,
    RoundLimitExceeded,
)


class AddOne(MapReduceJob):
    def map(self, key, value):
        yield key, value + 1

    def reduce(self, key, values):
        yield key, values[0]


def test_driver_iterates_to_convergence(runtime):
    driver = IterativeDriver(runtime, name="count-to-5")

    def step(state, round_number):
        output = runtime.run(AddOne(), state)
        return output, output[0][1] >= 5

    final = driver.iterate(step, [("k", 0)])
    assert final == [("k", 5)]
    assert driver.rounds_completed == 5
    assert driver.jobs_per_round == [1, 1, 1, 1, 1]
    assert runtime.counters.get("count-to-5", "rounds") == 5


def test_driver_round_limit(runtime):
    driver = IterativeDriver(runtime, name="never", max_rounds=3)
    with pytest.raises(RoundLimitExceeded) as excinfo:
        driver.iterate(lambda state, n: (state, False), None)
    assert excinfo.value.max_rounds == 3
    assert "never" in str(excinfo.value)


def test_driver_round_callback(runtime):
    seen = []
    driver = IterativeDriver(
        runtime,
        name="cb",
        on_round_end=lambda state, n: seen.append((state, n)),
    )
    driver.iterate(lambda state, n: (state + 1, state + 1 >= 2), 0)
    assert seen == [(1, 0), (2, 1)]


def test_driver_zero_jobs_per_round_allowed(runtime):
    driver = IterativeDriver(runtime, name="pure")
    driver.iterate(lambda state, n: (state, True), None)
    assert driver.jobs_per_round == [0]
