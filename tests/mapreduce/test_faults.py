"""Deterministic chaos: injected faults must recover bit-identically.

The fault plane's contract has two halves.  The plan itself is a pure
function of ``(seed, site)`` — same seed, same faults, on every
backend, filesystem, and machine.  And recovery is *invisible*: a run
under an active :class:`FaultPlan` with a retry budget must produce
output records, ``job_log``, and non-volatile counter totals
bit-identical to the fault-free run, with only the ``faults`` counter
group left behind as evidence that anything fired.  The chaos matrix
test here is that claim, driven across every configured execution
backend (× the storage/spill env knobs) for several seeded scenarios.
"""

import os
import tempfile
from contextlib import contextmanager

import pytest

from repro.mapreduce import (
    Counters,
    FaultPlan,
    InjectedIOError,
    JobValidationError,
    LocalDiskFileSystem,
    MapReduceJob,
    MapReduceRuntime,
    ProcessExecutor,
    RetryPolicy,
    RetryingFileSystem,
    FaultyFileSystem,
    TaskFaultSpec,
    ThreadExecutor,
    fired_specs,
)
from repro.mapreduce.executors import _SHARED_POOLS
from repro.mapreduce.state import strip_volatile_counters
from repro.mapreduce.storage import InMemoryFileSystem

from ..conftest import SPILL_THRESHOLD, STORAGE

CHAOS_SEEDS = (1, 2, 3)

#: Rates for the chaos matrix: high enough that every seed injects
#: several faults (asserted), low enough that the retry budget always
#: covers them (``max_faults_per_site=1`` guarantees it anyway).
CHAOS_RATES = dict(crash_rate=0.35, delay_rate=0.15, io_rate=0.25)


# -- module-level jobs (picklable for the processes backend) ---------------


class Histogram(MapReduceJob):
    has_combiner = True

    def map(self, key, value):
        yield value % 5, 1

    def combine(self, key, counts):
        yield key, sum(counts)

    def reduce(self, key, counts):
        yield key, sum(counts)


class KamikazeOnce(MapReduceJob):
    """First map task to run kills its whole worker process.

    The sentinel file makes the crash once-per-run (machine-scoped),
    so re-executions after the pool respawn succeed — the abrupt
    worker-death shape (OOM kill, segfault) that ``BrokenProcessPool``
    reports, as opposed to a clean task exception.
    """

    def __init__(self, sentinel):
        self.sentinel = sentinel

    def map(self, key, value):
        if not os.path.exists(self.sentinel):
            open(self.sentinel, "w").close()
            os._exit(13)
        yield value % 3, value

    def reduce(self, key, values):
        yield key, sum(values)


def _exit_once(sentinel, value):
    """Plain task-function variant of the same worker-death shape."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(13)
    return value


def _identity(value):
    return value


RECORDS = [(i, (i * 7) % 13) for i in range(40)]


# -- the seeded plan is deterministic --------------------------------------


def test_fault_plan_is_deterministic_and_seed_sensitive():
    kwargs = dict(
        crash_rate=0.4,
        delay_rate=0.2,
        io_rate=0.3,
        flush_rate=0.5,
        poison_rate=0.3,
    )
    one, two, other = (
        FaultPlan(1, **kwargs),
        FaultPlan(1, **kwargs),
        FaultPlan(2, **kwargs),
    )
    sites = [
        ("job", phase, index)
        for phase in ("map", "reduce")
        for index in range(8)
    ]

    def decisions(plan):
        return (
            [
                tuple(
                    spec and (spec.kind, spec.seconds)
                    for spec in plan.task_faults(*site, max_attempts=3)
                )
                for site in sites
            ],
            [plan.storage_fault("read", i) for i in range(32)],
            [plan.storage_fault("write", i) for i in range(32)],
            [plan.flush_fault(i, 0) for i in range(32)],
            [plan.event_poisoned(i) for i in range(32)],
        )

    assert decisions(one) == decisions(two)
    assert decisions(one) != decisions(other)


def test_task_crashes_respect_the_retry_budget():
    plan = FaultPlan(7, crash_rate=1.0)
    specs = plan.task_faults("job", "map", 0, max_attempts=4)
    assert len(specs) == 4
    # max_faults_per_site=1: exactly one crash, on attempt 0, so the
    # retried attempt always reaches a crash-free execution.
    assert specs[0].kind == "crash"
    assert all(spec is None for spec in specs[1:])
    # With no retry budget there is nowhere to recover: no crashes.
    assert plan.task_faults("job", "map", 0, max_attempts=1) == (None,)


def test_fired_specs_is_the_crash_prefix():
    crash = TaskFaultSpec(kind="crash")
    delay = TaskFaultSpec(kind="delay", seconds=0.5)
    # Attempt n runs only if n-1 crashed; a delay succeeds and stops.
    assert fired_specs((None, crash)) == []
    assert fired_specs((crash, crash, None)) == [crash, crash]
    assert fired_specs((crash, delay, crash)) == [crash, delay]
    assert fired_specs((delay, crash)) == [delay]


def test_fault_plan_validates_rates():
    with pytest.raises(JobValidationError, match="io_rate"):
        FaultPlan(0, io_rate=1.5)
    with pytest.raises(JobValidationError, match="delay_seconds"):
        FaultPlan(0, delay_seconds=-1)
    with pytest.raises(JobValidationError, match="max_faults_per_site"):
        FaultPlan(0, max_faults_per_site=-1)


def test_fault_plan_cleans_up_its_scratch_dir():
    with FaultPlan(0, delay_rate=1.0) as plan:
        scratch = plan.scratch_dir
        assert os.path.isdir(scratch)
    assert not os.path.exists(scratch)


# -- storage faults: consumed-once, recovered by retries -------------------


def test_faulty_filesystem_faults_each_op_once():
    counters = Counters()
    fs = FaultyFileSystem(
        InMemoryFileSystem(), FaultPlan(0, io_rate=1.0), counters
    )
    # The fault is raised *before* the write lands, and consumed: the
    # immediate retry of the same logical operation succeeds.
    with pytest.raises(InjectedIOError):
        fs.write("/a", [(1, "x")])
    assert not fs.exists("/a")
    fs.write("/a", [(1, "x")])
    with pytest.raises(InjectedIOError):
        fs.read("/a")
    assert fs.read("/a") == [(1, "x")]
    faults = counters.group("faults")
    assert faults["injected_io"] == 2
    assert faults["injected_total"] == 2
    # Untargeted operations pass straight through.
    assert fs.list_paths("/") == ["/a"]
    fs.delete("/a")
    assert not fs.exists("/a")
    assert fs.name == "memory"


def test_retrying_filesystem_recovers_transparently():
    counters = Counters()
    fs = RetryingFileSystem(
        FaultyFileSystem(
            InMemoryFileSystem(), FaultPlan(0, io_rate=1.0), counters
        ),
        RetryPolicy(max_attempts=3),
        counters,
    )
    for i in range(5):
        fs.write(f"/d/{i}", [(i, i * i)])
    assert [fs.read(f"/d/{i}") for i in range(5)] == [
        [(i, i * i)] for i in range(5)
    ]
    faults = counters.group("faults")
    # io_rate=1.0 faults every logical op exactly once: 5 writes + 5
    # reads, each recovered by one retry.
    assert faults["storage.retries"] == 10
    assert faults["injected_io"] == 10


def test_retrying_filesystem_exhausted_budget_propagates():
    fs = RetryingFileSystem(
        FaultyFileSystem(
            InMemoryFileSystem(), FaultPlan(0, io_rate=1.0), Counters()
        ),
        RetryPolicy(max_attempts=1),
        Counters(),
    )
    with pytest.raises(InjectedIOError):
        fs.write("/a", [(1, "x")])


# -- the chaos matrix: recovery is bit-identical ---------------------------


@contextmanager
def _cell_runtime(backend, **kwargs):
    """A fresh runtime per run (pristine counters, clean tmp)."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        if STORAGE == "memory":
            storage = None
        else:
            storage = LocalDiskFileSystem(root=os.path.join(tmp, "dfs"))
        yield MapReduceRuntime(
            num_map_tasks=4,
            num_reduce_tasks=4,
            counters=Counters(),
            backend=backend,
            storage=storage,
            spill_threshold=SPILL_THRESHOLD,
            spill_dir=os.path.join(tmp, "spills"),
            **kwargs,
        )


def _observe_chaos(runtime):
    """Everything the determinism contract covers, for one run."""
    for i in range(4):
        runtime.filesystem.write(
            f"/chaos/dataset-{i}", [(j, i * j) for j in range(3)]
        )
    reads = [
        runtime.filesystem.read(f"/chaos/dataset-{i}") for i in range(4)
    ]
    output = runtime.run(Histogram(), RECORDS)
    return (
        reads,
        output,
        list(runtime.job_log),
        strip_volatile_counters(runtime.counters.snapshot()),
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_run_is_bit_identical_to_fault_free(backend, seed):
    with _cell_runtime(backend) as clean:
        baseline = _observe_chaos(clean)
    with FaultPlan(seed, delay_seconds=0.0, **CHAOS_RATES) as plan:
        with _cell_runtime(
            backend,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        ) as runtime:
            observed = _observe_chaos(runtime)
            faults = dict(runtime.counters.group("faults"))
    assert observed == baseline
    assert faults["injected_total"] > 0
    # Every scheduled crash burned exactly one retry; delays don't.
    assert faults.get("task.retries", 0) == faults.get(
        "injected_crash", 0
    )


def test_chaos_fault_metering_is_backend_independent(backend):
    """The ``injected_*`` meters are a driver-side function of the
    plan, so every backend reports the same fault story."""
    with FaultPlan(1, delay_seconds=0.0, **CHAOS_RATES) as plan:
        with _cell_runtime(
            "serial",
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        ) as serial:
            _observe_chaos(serial)
            reference = dict(serial.counters.group("faults"))
    with FaultPlan(1, delay_seconds=0.0, **CHAOS_RATES) as plan:
        with _cell_runtime(
            backend,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        ) as runtime:
            _observe_chaos(runtime)
            observed = dict(runtime.counters.group("faults"))
    assert observed == reference


# -- worker death: the pool respawns and the job completes -----------------


def test_process_pool_respawns_after_worker_death(tmp_path):
    executor = ProcessExecutor(max_workers=2)
    try:
        sentinel = str(tmp_path / "boom")
        results = executor.run_tasks(
            _exit_once, [(sentinel, i) for i in range(6)]
        )
        assert results == list(range(6))
        assert executor.pool_respawns >= 1
        assert executor.resubmitted_tasks >= 1
    finally:
        executor.close()


def test_runtime_job_survives_worker_death(tmp_path):
    records = [(i, i) for i in range(12)]
    # Fault-free reference: the sentinel already exists.
    baseline_sentinel = tmp_path / "already-dead"
    baseline_sentinel.touch()
    with _cell_runtime("serial") as clean:
        baseline = clean.run(KamikazeOnce(str(baseline_sentinel)), records)
    with _cell_runtime("processes") as runtime:
        output = runtime.run(
            KamikazeOnce(str(tmp_path / "boom")), records
        )
        faults = runtime.counters.group("faults")
    assert output == baseline
    assert faults["pool.respawns"] >= 1
    assert faults["task.resubmits"] >= 1


# -- cluster chaos: kills and dropped frames recover bit-identically -------


CLUSTER_CHAOS_SEEDS = (1, 2, 3)

#: High enough that every seed schedules several faults across the
#: 8 task sites of the chaos workload (asserted per scenario below).
CLUSTER_KILL_RATES = dict(worker_kill_rate=0.6)
CLUSTER_DROP_RATES = dict(frame_drop_rate=0.6)


def _observe_cluster_chaos(seed, **rates):
    """One seeded chaos run on the cluster backend, plus its faults."""
    with FaultPlan(seed, **rates) as plan:
        with _cell_runtime(
            "cluster",
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        ) as runtime:
            observed = _observe_chaos(runtime)
            faults = dict(runtime.counters.group("faults"))
    return observed, faults


@pytest.mark.cluster
@pytest.mark.parametrize("seed", CLUSTER_CHAOS_SEEDS)
def test_cluster_worker_kills_recover_bit_identically(seed):
    """Injected ``os._exit`` worker deaths mid-task: the driver
    respawns the daemon, re-executes the lost attempts, and the run
    converges bit-identically to the fault-free cluster run."""
    with _cell_runtime("cluster") as clean:
        baseline = _observe_chaos(clean)
    observed, faults = _observe_cluster_chaos(
        seed, **CLUSTER_KILL_RATES
    )
    assert observed == baseline
    assert faults["injected_worker_kill"] > 0
    assert faults["pool.respawns"] >= 1
    assert faults["task.resubmits"] >= 1


@pytest.mark.cluster
@pytest.mark.parametrize("seed", CLUSTER_CHAOS_SEEDS)
def test_cluster_dropped_frames_recover_bit_identically(seed):
    """Injected reply-frame drops: the worker does the work, the
    driver never hears back, and the resubmit-only recovery path (no
    respawn — the daemon is healthy) still converges bit-identically."""
    with _cell_runtime("cluster") as clean:
        baseline = _observe_chaos(clean)
    observed, faults = _observe_cluster_chaos(
        seed, **CLUSTER_DROP_RATES
    )
    assert observed == baseline
    assert faults["injected_drop_frame"] > 0
    assert faults["task.resubmits"] >= 1
    # A dropped frame is not a dead worker: no respawns burned.
    assert faults.get("pool.respawns", 0) == 0


@pytest.mark.cluster
def test_cluster_faults_degrade_gracefully_off_cluster():
    """The cluster fault kinds on a single-process backend degrade to
    plain injected crashes (there is no worker daemon to kill), so a
    retry budget still recovers them bit-identically."""
    with _cell_runtime("serial") as clean:
        baseline = _observe_chaos(clean)
    with FaultPlan(2, worker_kill_rate=0.6, frame_drop_rate=0.3) as plan:
        with _cell_runtime(
            "serial",
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        ) as runtime:
            observed = _observe_chaos(runtime)
            faults = dict(runtime.counters.group("faults"))
    assert observed == baseline
    assert faults["injected_total"] > 0
    assert faults.get("task.retries", 0) >= 1


@pytest.mark.cluster
def test_chaos_cli_replays_cluster_scenario(capsys):
    """The ``repro chaos --backend cluster`` replay case: seeded
    worker kills and frame drops through the real CLI entry point."""
    from repro.cli import main

    code = main(
        [
            "chaos",
            "--backend",
            "cluster",
            "--workers",
            "2",
            "--seeds",
            "1",
            "--nodes",
            "8",
            "--events",
            "12",
            "--worker-kill-rate",
            "0.3",
            "--frame-drop-rate",
            "0.3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "bit-identical" in out
    assert "DIVERGED" not in out


# -- stragglers: speculative backups win -----------------------------------


def _straggler_runtime(backend, tmp, **kwargs):
    """A narrow (2x2) cluster with enough workers that a speculative
    backup can run *while* its straggling primary still sleeps — the
    default worker count is CPU-bound and may be 1 in CI."""
    if STORAGE == "memory":
        storage = None
    else:
        storage = LocalDiskFileSystem(root=os.path.join(tmp, "dfs"))
    return MapReduceRuntime(
        num_map_tasks=2,
        num_reduce_tasks=2,
        max_workers=6,
        counters=Counters(),
        backend=backend,
        storage=storage,
        spill_threshold=SPILL_THRESHOLD,
        spill_dir=os.path.join(tmp, "spills"),
        **kwargs,
    )


@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_speculative_backup_beats_straggler(backend, tmp_path):
    baseline = _straggler_runtime("serial", str(tmp_path / "clean")).run(
        Histogram(), RECORDS
    )
    # Every attempt straggles 0.6s — but only on its *first* execution
    # (machine-scoped sentinel), so the timeout-spawned backup runs at
    # full speed and wins the race.
    with FaultPlan(5, delay_rate=1.0, delay_seconds=0.6) as plan:
        runtime = _straggler_runtime(
            backend,
            str(tmp_path / "chaos"),
            retry_policy=RetryPolicy(max_attempts=2, task_timeout=0.05),
            fault_plan=plan,
        )
        output = runtime.run(Histogram(), RECORDS)
        faults = dict(runtime.counters.group("faults"))
    assert output == baseline
    assert faults["task.speculative_wins"] >= 1
    assert faults["injected_delay"] > 0


# -- shared pools: close() and size-change eviction ------------------------


def test_executor_close_evicts_its_shared_pool():
    executor = ThreadExecutor(max_workers=2)
    assert executor.run_tasks(_identity, [(1,)]) == [1]
    assert ("threads", 2) in _SHARED_POOLS
    executor.close()
    assert ("threads", 2) not in _SHARED_POOLS
    # close() is idempotent, and the pool lazily rebuilds on reuse.
    executor.close()
    assert executor.run_tasks(_identity, [(2,)]) == [2]
    executor.close()


def test_changing_worker_count_evicts_the_stale_pool():
    small = ThreadExecutor(max_workers=2)
    assert small.run_tasks(_identity, [(1,)]) == [1]
    assert ("threads", 2) in _SHARED_POOLS
    large = ThreadExecutor(max_workers=3)
    assert large.run_tasks(_identity, [(2,)]) == [2]
    # One pool per kind: asking for a different size evicted the old
    # one instead of accumulating idle worker fleets.
    assert ("threads", 2) not in _SHARED_POOLS
    assert ("threads", 3) in _SHARED_POOLS
    # The evicted executor still works — its pool rebuilds on demand.
    assert small.run_tasks(_identity, [(3,)]) == [3]
    small.close()
    large.close()
