"""The cluster backend: protocol, heartbeats, recovery, equivalence.

Four layers of the distributed plane, bottom-up:

* **frame codec** — length-prefixed frames round-trip any header +
  payload, and every malformed-stream shape (bad magic, truncation,
  oversized header) fails with the right exception class;
* **heartbeat state machine** — the alive → suspect → dead ladder is a
  pure function of injected clock readings, so worker-death detection
  is tested without a single real socket or sleep;
* **driver recovery** — a real localhost fleet survives mid-task
  ``SIGKILL``, lost result blobs, dropped connections, and silent
  (muted) workers, re-executing work until the batch completes with
  results identical to what a healthy fleet returns;
* **executor equivalence** — ``--backend cluster`` plugged into the
  full :class:`MapReduceRuntime` produces output records, ``job_log``,
  and volatile-stripped counters bit-identical to ``serial``, the same
  contract the threads/processes backends already carry.

Everything here runs real worker processes, so the whole module wears
the ``cluster`` marker (deselect with ``-m "not cluster"``).
"""

import multiprocessing
import os
import signal
import socket
import time

import pytest

from repro.mapreduce import (
    Counters,
    ExecutorError,
    JobValidationError,
    LocalDiskFileSystem,
    MapReduceJob,
    MapReduceRuntime,
    resolve_executor,
)
from repro.mapreduce.cluster import (
    ClusterDriver,
    ClusterExecutor,
    ConnectionClosed,
    HeartbeatMonitor,
    ProtocolError,
    RemoteBlob,
    TaskLost,
    recv_frame,
    send_frame,
)
from repro.mapreduce.cluster.heartbeat import ALIVE, DEAD, SUSPECT
from repro.mapreduce.cluster.protocol import connect, request
from repro.mapreduce.executors import _SHARED_POOLS
from repro.mapreduce.state import strip_volatile_counters
from repro.telemetry import MetricsRegistry

from ..conftest import SPILL_THRESHOLD, STORAGE

pytestmark = pytest.mark.cluster


# -- module-level task functions (workers unpickle these) ------------------


def _square(x):
    return x * x


def _fail_on(x, bad):
    if x == bad:
        raise ValueError(f"task {x} failed")
    return x


def _blob_payload(n):
    """A result whose pickle comfortably exceeds a small threshold."""
    return bytes((n + i) % 251 for i in range(4096))


def _exit_once(sentinel, value):
    """SIGKILL-shaped worker death on the first execution only."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(13)
    return value


def _sleep_once(sentinel, value, seconds):
    """Straggle on the first execution; the backup runs full speed."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(seconds)
    return value


class ClusterHistogram(MapReduceJob):
    has_combiner = True

    def map(self, key, value):
        yield value % 5, 1

    def combine(self, key, counts):
        yield key, sum(counts)

    def reduce(self, key, counts):
        yield key, sum(counts)


RECORDS = [(i, (i * 7) % 13) for i in range(40)]


# -- frame codec round-trips ------------------------------------------------


def _pair():
    left, right = socket.socketpair()
    return left, right


def test_frame_round_trip_header_and_payload():
    left, right = _pair()
    try:
        payload = os.urandom(3000)
        send_frame(left, {"op": "task", "id": "4.0"}, payload)
        header, body = recv_frame(right)
        assert header == {"op": "task", "id": "4.0"}
        assert body == payload
    finally:
        left.close()
        right.close()


def test_frame_round_trip_empty_payload_and_unicode_header():
    left, right = _pair()
    try:
        send_frame(left, {"op": "pong", "note": "wörker"})
        header, body = recv_frame(right)
        assert header["note"] == "wörker"
        assert body == b""
    finally:
        left.close()
        right.close()


def test_frames_are_sequenced_not_coalesced():
    """TCP gives a byte stream; the length prefix restores framing."""
    left, right = _pair()
    try:
        for index in range(5):
            send_frame(left, {"seq": index}, bytes([index]) * index)
        for index in range(5):
            header, body = recv_frame(right)
            assert header == {"seq": index}
            assert body == bytes([index]) * index
    finally:
        left.close()
        right.close()


def test_recv_rejects_bad_magic():
    left, right = _pair()
    try:
        left.sendall(b"HTTP/1.1 200 OK\r\n" + b"x" * 32)
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_recv_reports_clean_close_and_mid_frame_truncation():
    # Clean close between frames: ConnectionClosed, an ordinary
    # end-of-conversation (it subclasses ConnectionError, so the
    # driver's recovery path treats it as a lost frame).
    left, right = _pair()
    left.close()
    try:
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()
    # Truncation mid-frame: also ConnectionClosed — the peer died
    # while sending, which is exactly the injected frame-drop shape.
    left, right = _pair()
    try:
        import io

        buffer = io.BytesIO()

        class _Sink:
            def sendall(self, data):
                buffer.write(data)

        send_frame(_Sink(), {"op": "result"}, b"z" * 100)
        left.sendall(buffer.getvalue()[:-60])
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()


def test_recv_rejects_oversized_header_declaration():
    from repro.mapreduce.cluster.protocol import _MAX_HEADER, _PREFIX, MAGIC

    left, right = _pair()
    try:
        left.sendall(_PREFIX.pack(MAGIC, 1, _MAX_HEADER + 1, 0))
        with pytest.raises(ProtocolError, match="header"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_remote_blob_header_round_trip():
    blob = RemoteBlob(worker=3, port=45001, blob="blob-000007", size=9000)
    assert RemoteBlob.from_header(blob.to_header()) == blob


# -- heartbeat state machine (pure, time-injected) --------------------------


def test_heartbeat_ladder_alive_suspect_dead():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=3)
    monitor.reset(0, now=0.0)
    assert monitor.state(0, now=0.5) == ALIVE
    assert monitor.state(0, now=1.0) == ALIVE  # exactly one interval
    assert monitor.state(0, now=1.5) == SUSPECT
    assert monitor.state(0, now=3.0) == SUSPECT  # the full budget
    assert monitor.state(0, now=3.1) == DEAD


def test_heartbeat_beat_revives_a_suspect():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=3)
    monitor.reset(0, now=0.0)
    assert monitor.state(0, now=2.5) == SUSPECT
    monitor.beat(0, now=2.5)
    assert monitor.state(0, now=3.4) == ALIVE
    assert monitor.state(0, now=5.6) == DEAD


def test_heartbeat_death_latches_until_reset():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=2)
    monitor.reset(0, now=0.0)
    assert monitor.state(0, now=10.0) == DEAD
    # A late pong from a zombie must not resurrect the slot ...
    monitor.beat(0, now=10.1)
    assert monitor.state(0, now=10.2) == DEAD
    # ... only the driver's explicit respawn acknowledgement does.
    monitor.reset(0, now=11.0)
    assert monitor.state(0, now=11.5) == ALIVE


def test_heartbeat_slots_are_independent():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=2)
    monitor.reset(0, now=0.0)
    monitor.reset(1, now=0.0)
    monitor.beat(1, now=5.0)
    assert monitor.state(0, now=5.5) == DEAD
    assert monitor.state(1, now=5.5) == ALIVE


def test_heartbeat_validates_parameters():
    with pytest.raises(JobValidationError, match="interval"):
        HeartbeatMonitor(interval=0.0)
    with pytest.raises(JobValidationError, match="miss_limit"):
        HeartbeatMonitor(interval=1.0, miss_limit=1)


# -- driver: dispatch, errors, blobs ----------------------------------------


@pytest.fixture
def driver():
    """A small real fleet, torn down even if the test dies mid-way."""
    instance = ClusterDriver(
        num_workers=2, heartbeat_interval=0.2, miss_limit=5
    )
    yield instance
    instance.shutdown()


def test_driver_runs_tasks_in_order(driver):
    results = driver.run_tasks(_square, [(i,) for i in range(20)])
    assert results == [i * i for i in range(20)]
    # A second batch reuses the same fleet (no respawns, same pids).
    pids = driver.worker_pids()
    assert driver.run_tasks(_square, [(3,)]) == [9]
    assert driver.worker_pids() == pids
    assert driver.pool_respawns == 0


def test_driver_raises_first_task_order_failure(driver):
    # Task 3 fails; the error crosses the socket with its original
    # type and message — the cross-backend error determinism rule.
    with pytest.raises(ValueError, match="task 3 failed"):
        driver.run_tasks(_fail_on, [(i, 3) for i in range(8)])
    # The fleet survives job errors; no recovery was involved.
    assert driver.pool_respawns == 0
    assert driver.run_tasks(_square, [(2,)]) == [4]


def test_driver_empty_batch_and_stats(driver):
    assert driver.run_tasks(_square, []) == []
    driver.run_tasks(_square, [(1,), (2,)])
    stats = driver.worker_stats()
    assert stats["workers"] == 2
    assert sum(stats["tasks_by_worker"].values()) == 2
    assert stats["queue_depth_highwater"] >= 2
    assert len(driver.last_task_workers) == 2
    assert all(
        slot in (0, 1) for slot in driver.last_task_workers
    )


def test_driver_rejects_unpicklable_tasks(driver):
    local = lambda x: x  # noqa: E731 — deliberately unpicklable
    with pytest.raises(ExecutorError, match="module level"):
        driver.run_tasks(local, [(1,)])


def test_oversized_results_travel_as_blobs():
    driver = ClusterDriver(num_workers=2, blob_threshold=64)
    try:
        results = driver.run_tasks(
            _blob_payload, [(n,) for n in range(6)]
        )
        assert results == [_blob_payload(n) for n in range(6)]
    finally:
        driver.shutdown()


def test_small_results_stay_inline():
    fetched = []
    driver = ClusterDriver(num_workers=1, blob_threshold=1 << 20)
    driver._before_fetch = fetched.append
    try:
        assert driver.run_tasks(_square, [(9,)]) == [81]
        assert fetched == []  # no data-plane round trip happened
    finally:
        driver.shutdown()


# -- driver: recovery -------------------------------------------------------


def test_mid_task_sigkill_is_reexecuted(driver, tmp_path):
    """A worker dying *mid-task* (os._exit) costs one respawn and one
    resubmit, and the batch still completes with correct results."""
    sentinel = str(tmp_path / "boom")
    results = driver.run_tasks(
        _exit_once, [(sentinel, i) for i in range(8)]
    )
    assert results == list(range(8))
    assert driver.pool_respawns >= 1
    assert driver.resubmitted_tasks >= 1
    # The respawned slot serves the next batch like nothing happened.
    assert driver.run_tasks(_square, [(5,)]) == [25]


def test_fetch_retry_on_restarted_worker(tmp_path):
    """Killing a blob's owner *between execution and fetch* loses the
    result bytes; the driver re-executes the task instead of failing."""
    driver = ClusterDriver(num_workers=2, blob_threshold=64)
    killed = []

    def assassinate(blob):
        if not killed:
            killed.append(blob)
            os.kill(driver._handles[blob.worker].pid, signal.SIGKILL)
            time.sleep(0.05)

    driver._before_fetch = assassinate
    try:
        results = driver.run_tasks(
            _blob_payload, [(n,) for n in range(4)]
        )
        assert results == [_blob_payload(n) for n in range(4)]
        assert len(killed) == 1
        assert driver.pool_respawns >= 1
        assert driver.resubmitted_tasks >= 1
    finally:
        driver.shutdown()


def test_restarted_worker_reports_blob_missing():
    """The protocol-level half of fetch recovery: a worker that lost
    its spill files answers ``error/blob-missing``, which the driver
    maps to :class:`TaskLost` (and thence to re-execution)."""
    driver = ClusterDriver(num_workers=1, blob_threshold=64)
    try:
        driver.run_tasks(_blob_payload, [(1,)])
        port = driver._handles[0].port
        sock = connect(port, timeout=5.0)
        try:
            header, _ = request(
                sock, {"op": "fetch", "blob": "blob-999999"}
            )
        finally:
            sock.close()
        assert header["op"] == "error"
        assert header["kind"] == "blob-missing"
        with pytest.raises(TaskLost, match="no longer holds"):
            driver._fetch_blob(
                RemoteBlob(
                    worker=0, port=port, blob="blob-999999", size=10
                )
            )
    finally:
        driver.shutdown()


def test_muted_worker_is_declared_dead_and_replaced():
    """Dropped heartbeats alone — no task in flight — kill a worker.

    The ``mute`` op makes the worker swallow ping probes while staying
    otherwise healthy, exactly the silent-partition shape.  The
    monitor walks alive → suspect → dead, the driver kills the
    process, and the next dispatch recovers onto a fresh generation.
    """
    driver = ClusterDriver(
        num_workers=1, heartbeat_interval=0.1, miss_limit=3
    )
    try:
        assert driver.run_tasks(_square, [(2,)]) == [4]
        first_pid = driver.worker_pids()[0]
        sock = connect(driver._handles[0].port, timeout=5.0)
        try:
            header, _ = request(sock, {"op": "mute", "seconds": 30.0})
            assert header["op"] == "ok"
        finally:
            sock.close()
        deadline = time.monotonic() + 20.0
        process = driver._handles[0].process
        while process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not process.is_alive(), "heartbeat never declared death"
        # The next batch respawns the slot and completes normally.  On
        # a loaded box the aggressive ladder can declare the *fresh*
        # generation dead once too before its first pong lands, so the
        # respawn count is at-least-one, not exactly-one.
        assert driver.run_tasks(_square, [(6,)]) == [36]
        assert driver.pool_respawns >= 1
        assert driver.worker_pids()[0] != first_pid
    finally:
        driver.shutdown()


def test_speculative_backup_beats_cluster_straggler(tmp_path):
    driver = ClusterDriver(num_workers=2)
    sentinel = str(tmp_path / "slow")
    try:
        results, wins = driver.run_tasks_speculative(
            _sleep_once,
            [(sentinel, i, 30.0) for i in range(2)],
            timeout=0.2,
        )
        assert results == [0, 1]
        assert wins >= 1
    finally:
        driver.shutdown()


def test_worker_death_budget_exhaustion_raises_worker_died():
    from repro.mapreduce.cluster.driver import WorkerDied

    driver = ClusterDriver(num_workers=1, max_worker_respawns=1)
    try:
        # Every execution of this task kills its worker (fresh spill
        # dir per generation, so the sentinel trick can't save it);
        # one respawn is allowed, then the dispatch must fail loudly
        # rather than thrash forever.
        with pytest.raises(WorkerDied, match="respawns"):
            driver.run_tasks(os._exit, [(13,)])
    finally:
        driver.shutdown()


# -- executor: contract, shared pool, reaping -------------------------------


def test_resolve_executor_knows_cluster():
    executor = resolve_executor("cluster")
    assert isinstance(executor, ClusterExecutor)
    assert executor.name == "cluster"
    assert executor.picklable_tasks  # runtime must materialize spills
    alias = resolve_executor("distributed")
    assert isinstance(alias, ClusterExecutor)


def test_cluster_executor_close_reaps_workers():
    """The latent ``Executor.close()`` gap, fixed: no orphan worker
    daemons survive the executor — counted via live children."""
    baseline = {p.pid for p in multiprocessing.active_children()}
    executor = ClusterExecutor(max_workers=2)
    try:
        assert executor.run_tasks(_square, [(3,)]) == [9]
        spawned = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in baseline
        ]
        assert len(spawned) == 2
        assert ("cluster", 2) in _SHARED_POOLS
    finally:
        executor.close()
    assert ("cluster", 2) not in _SHARED_POOLS
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if not [
            p
            for p in multiprocessing.active_children()
            if p.pid not in baseline
        ]:
            break
        time.sleep(0.05)
    leaked = [
        p
        for p in multiprocessing.active_children()
        if p.pid not in baseline
    ]
    assert leaked == []
    # close() is idempotent and the fleet lazily rebuilds on reuse.
    executor.close()
    assert executor.run_tasks(_square, [(4,)]) == [16]
    executor.close()


def test_cluster_executor_meters_and_gauges(tmp_path):
    executor = ClusterExecutor(max_workers=2)
    try:
        sentinel = str(tmp_path / "boom")
        assert executor.run_tasks(
            _exit_once, [(sentinel, i) for i in range(4)]
        ) == list(range(4))
        assert executor.pool_respawns >= 1
        assert executor.resubmitted_tasks >= 1
        assert len(executor.last_task_workers) == 4
        registry = MetricsRegistry()
        executor.publish_metrics(registry)
        gauges = registry.snapshot()["gauges"]["cluster"]
        assert gauges["workers"] == 2
        assert gauges["worker.respawns"] >= 1
        assert gauges["task.resubmits"] >= 1
    finally:
        executor.close()


# -- runtime equivalence: cluster is bit-identical to serial ----------------


def _cell_runtime(backend, tmp, **kwargs):
    if STORAGE == "memory":
        storage = None
    else:
        storage = LocalDiskFileSystem(root=os.path.join(tmp, "dfs"))
    os.makedirs(tmp, exist_ok=True)
    return MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        backend=backend,
        max_workers=2 if backend == "cluster" else None,
        storage=storage,
        spill_threshold=SPILL_THRESHOLD,
        spill_dir=os.path.join(tmp, "spills"),
        **kwargs,
    )


def _observe(runtime):
    output = runtime.run(ClusterHistogram(), RECORDS)
    return (
        output,
        list(runtime.job_log),
        strip_volatile_counters(runtime.counters.snapshot()),
    )


def test_cluster_runtime_matches_serial(tmp_path):
    serial = _observe(_cell_runtime("serial", str(tmp_path / "s")))
    cluster = _observe(_cell_runtime("cluster", str(tmp_path / "c")))
    assert cluster == serial


def test_cluster_runtime_matches_serial_on_disk_with_spill(tmp_path):
    """The out-of-core cell of the matrix, pinned regardless of the
    env knobs: disk datasets + tiny spill threshold, still identical.

    This is the cell that forces the lazy-spill materialization path:
    ``picklable_tasks`` makes the runtime render disk-backed partition
    iterators into lists before framing tasks for the socket."""

    def cell(backend, tmp):
        os.makedirs(tmp, exist_ok=True)
        return MapReduceRuntime(
            num_map_tasks=3,
            num_reduce_tasks=3,
            counters=Counters(),
            backend=backend,
            max_workers=2 if backend == "cluster" else None,
            storage=LocalDiskFileSystem(root=os.path.join(tmp, "dfs")),
            spill_threshold=4,
            spill_dir=os.path.join(tmp, "spills"),
        )

    serial = _observe(cell("serial", str(tmp_path / "s")))
    cluster = _observe(cell("cluster", str(tmp_path / "c")))
    assert cluster == serial


def test_cluster_greedy_mr_matches_serial(tmp_path):
    from repro.graph import random_bipartite
    from repro.matching import greedy_mr_b_matching
    import random

    graph = random_bipartite(10, 10, 0.5, rng=random.Random(11))
    reference = greedy_mr_b_matching(
        graph, runtime=_cell_runtime("serial", str(tmp_path / "s"))
    )
    observed = greedy_mr_b_matching(
        graph, runtime=_cell_runtime("cluster", str(tmp_path / "c"))
    )
    assert sorted(observed.matching.edges()) == sorted(
        reference.matching.edges()
    )
    assert observed.value_history == reference.value_history
    assert observed.rounds == reference.rounds


def test_cluster_worker_spans_are_attributed(tmp_path):
    """Task spans carry the producing worker slot (telemetry plane)."""
    from repro.telemetry import Tracer

    tracer = Tracer()
    runtime = _cell_runtime(
        "cluster", str(tmp_path / "t"), tracer=tracer
    )
    runtime.run(ClusterHistogram(), RECORDS)
    tasks = [
        span
        for span in tracer.spans
        if span.kind == "task" and "worker" in span.attrs
    ]
    assert tasks, "no task span carried a worker attribution"
    assert all(span.attrs["worker"] in (0, 1) for span in tasks)
