"""Unit tests for the Hadoop-style counters."""

from repro.mapreduce import Counters


def test_increment_and_get():
    counters = Counters()
    counters.increment("g", "a")
    counters.increment("g", "a", 4)
    assert counters.get("g", "a") == 5


def test_get_missing_is_zero():
    counters = Counters()
    assert counters.get("nope", "nothing") == 0


def test_group_returns_copy():
    counters = Counters()
    counters.increment("g", "a", 2)
    group = counters.group("g")
    group["a"] = 999
    assert counters.get("g", "a") == 2


def test_merge_adds_counters():
    a = Counters()
    b = Counters()
    a.increment("g", "x", 1)
    b.increment("g", "x", 2)
    b.increment("h", "y", 3)
    a.merge(b)
    assert a.get("g", "x") == 3
    assert a.get("h", "y") == 3
    # merge must not alias: incrementing a afterwards leaves b intact
    a.increment("h", "y")
    assert b.get("h", "y") == 3


def test_snapshot_is_plain_dicts():
    counters = Counters()
    counters.increment("g", "a", 7)
    snap = counters.snapshot()
    assert snap == {"g": {"a": 7}}
    snap["g"]["a"] = 0
    assert counters.get("g", "a") == 7


def test_reset_clears_everything():
    counters = Counters()
    counters.increment("g", "a")
    counters.reset()
    assert counters.get("g", "a") == 0
    assert counters.snapshot() == {}


def test_iteration_is_sorted():
    counters = Counters()
    counters.increment("b", "z", 1)
    counters.increment("a", "y", 2)
    counters.increment("a", "x", 3)
    assert list(counters) == [("a", "x", 3), ("a", "y", 2), ("b", "z", 1)]
