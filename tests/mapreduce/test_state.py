"""Unit tests for the delta iteration plane's resident state store.

Covers the store contract (partition alignment with the shuffle,
out-of-core parking on both filesystems, the key index) and the
``run_stateful`` round semantics (scan vs frontier mode, quiescence by
equality, Retired departures with pruned notices, delta convergence,
and the ``iteration.*`` counters) on a toy job — the matching-layer
equivalents live in ``tests/matching``.
"""

import pytest

from repro.mapreduce import (
    Counters,
    HashPartitioner,
    IterativeDriver,
    JobValidationError,
    LocalDiskFileSystem,
    MapReduceJob,
    MapReduceRuntime,
    ResidentStateStore,
    Retired,
    canonical_bytes,
)
from repro.mapreduce.errors import DriverError
from repro.mapreduce.state import (
    STATE_POINT_COUNTERS,
    STATE_SPILL_COUNTERS,
    strip_volatile_counters,
)


class CountDown(MapReduceJob):
    """Toy stateful job: each key decrements until it retires.

    Scan mode sends each key one ("tick", 1) message per round;
    frontier mode makes changed keys tick themselves.
    """

    name = "count-down"

    def map_resident(self, key, state):
        yield key, ("tick", 1)

    def map_delta(self, key, delta):
        if isinstance(delta, Retired):
            return
        yield key, ("tick", 1)

    def reduce_state(self, key, state, values):
        if state is None:
            return None, []
        remaining = state - sum(amount for _, amount in values)
        if remaining <= 0:
            return Retired(), [((key, "done"), 0)]
        return remaining, []


class Idle(MapReduceJob):
    """Reduce returns an equal-but-not-identical state every round."""

    name = "idle"

    def map_resident(self, key, state):
        yield key, ("noop",)

    def reduce_state(self, key, state, values):
        return list(state), []


class Leave(MapReduceJob):
    """Every key retires at once, naming every peer."""

    name = "leave"

    def map_resident(self, key, state):
        yield key, ("go",)

    def reduce_state(self, key, state, values):
        if state is None:
            return None, []
        return Retired(state), []


class LeaveOne(MapReduceJob):
    """Only "goner" retires, notifying the surviving "stays"."""

    name = "leave-one"

    def map_resident(self, key, state):
        yield key, ("go",)

    def reduce_state(self, key, state, values):
        if key == "goner":
            return Retired(("stays",)), []
        return state, []


# -- store contract ---------------------------------------------------------


def test_store_partitions_align_with_shuffle_hash():
    store = ResidentStateStore("align", num_partitions=4)
    store.load([(f"k{i}", i) for i in range(40)])
    for i in range(40):
        key_bytes = canonical_bytes(f"k{i}")
        index = HashPartitioner.partition_bytes(key_bytes, 4)
        assert key_bytes in store.partition(index)


def test_store_records_order_is_partition_major_byte_sorted():
    store = ResidentStateStore("order", num_partitions=3)
    store.load([(f"k{i}", i) for i in range(20)])
    listed = list(store.records())
    expected = []
    for index in range(3):
        part = store.partition(index)
        expected.extend(part[kb] for kb in sorted(part))
    assert listed == expected
    assert len(store) == 20


@pytest.mark.parametrize("fs", ["memory", "disk"])
def test_store_parks_and_reloads_losslessly(fs, tmp_path):
    filesystem = (
        LocalDiskFileSystem(root=str(tmp_path / "dfs"))
        if fs == "disk"
        else None
    )
    counters = Counters()
    store = ResidentStateStore(
        "park",
        num_partitions=4,
        filesystem=filesystem,
        spill_threshold=5,
        counters=counters,
    )
    # Rich (non-JSON) state values must survive the round trip: the
    # store pickles them into bytes payloads for the record codec.
    states = {f"k{i}": {"adj": {f"n{j}": j / 3 for j in range(i)}} for i in range(12)}
    store.load(sorted(states.items()))
    store.maybe_park()  # 12 > 5: must park
    assert counters.get("park", "state.spilled_records") == 12
    assert counters.get("runtime", "state.spill_files") > 0
    # The key index answers membership without loading anything.
    assert store.contains("k3") and not store.contains("nope")
    assert len(store) == 12
    # Reloading returns the exact states.
    assert dict(store.records()) == states


def test_store_below_threshold_never_parks():
    counters = Counters()
    store = ResidentStateStore(
        "small", num_partitions=2, spill_threshold=100, counters=counters
    )
    store.load([("a", 1), ("b", 2)])
    store.maybe_park()
    assert counters.get("small", "state.spilled_records") == 0


def test_store_close_removes_parked_datasets(tmp_path):
    filesystem = LocalDiskFileSystem(root=str(tmp_path / "dfs"))
    store = ResidentStateStore(
        "gone", num_partitions=2, filesystem=filesystem, spill_threshold=0
    )
    store.load([("a", 1), ("b", 2)])
    store.park()
    assert filesystem.list_paths("/state")
    store.close()
    assert not filesystem.list_paths("/state")
    assert len(store) == 0


def _reversed_md5_partitioner(key, num_partitions):
    """A custom partitioner that disagrees with the default hash."""
    from repro.mapreduce import stable_hash

    return (num_partitions - 1) - stable_hash(key) % num_partitions


def test_store_honors_custom_shuffle_partitioner():
    """Regression: the store must route like the runtime's shuffle.

    With a custom partitioner the default byte-hash would place state
    in different partitions than the messages, and every reduce would
    see ``state=None`` — a silently empty result.
    """
    from repro.graph import star_graph
    from repro.matching import greedy_mr_b_matching

    graph = star_graph(6, center_capacity=2)
    results = {}
    for delta in (False, True):
        runtime = MapReduceRuntime(
            counters=Counters(), partitioner=_reversed_md5_partitioner
        )
        results[delta] = greedy_mr_b_matching(
            graph, runtime=runtime, delta=delta
        )
    assert sorted(results[True].matching.edges()) == sorted(
        results[False].matching.edges()
    )
    assert results[True].value_history == results[False].value_history
    assert len(results[True].matching) > 0


def test_runtime_rejects_misaligned_store():
    runtime = MapReduceRuntime(num_reduce_tasks=4)
    store = ResidentStateStore("bad", num_partitions=3)
    with pytest.raises(JobValidationError):
        runtime.run_stateful(CountDown(), store, scan=True)


# -- round semantics --------------------------------------------------------


def test_scan_rounds_converge_to_empty_delta_stream(runtime):
    store = runtime.state_store("countdown")
    store.load([("a", 1), ("b", 3), ("c", 2)])
    job = CountDown()
    done_at = {}
    rounds = 0
    while len(store):
        output, deltas = runtime.run_stateful(job, store, scan=True)
        rounds += 1
        for (key, _), _ in output:
            done_at[key] = rounds
        if not deltas and len(store):
            pytest.fail("non-empty store but empty delta stream")
    assert rounds == 3
    assert done_at == {"a": 1, "c": 2, "b": 3}
    assert runtime.counters.get("count-down", "iteration.delta_records") > 0


def test_frontier_rounds_visit_only_message_keys(runtime):
    """Frontier mode reduces only where messages arrive."""
    store = runtime.state_store("frontier")
    store.load([("hot", 5), ("cold", 5)])
    job = CountDown()
    # Only "hot" is in the delta stream: "cold" must stay untouched.
    output, deltas = runtime.run_stateful(
        job, store, deltas=[("hot", 5)], scan=False
    )
    assert deltas == [("hot", 4)]
    assert dict(store.records())["cold"] == 5
    assert runtime.counters.get(
        "count-down", "iteration.quiescent_records"
    ) == 1


def test_quiescence_is_detected_by_equality(runtime):
    store = runtime.state_store("idle")
    store.load([("a", [1, 2]), ("b", [3])])
    _, deltas = runtime.run_stateful(Idle(), store, scan=True)
    assert deltas == []
    assert runtime.counters.get("idle", "iteration.delta_records") == 0
    assert runtime.counters.get("idle", "iteration.quiescent_records") == 2


def test_retired_notices_are_pruned_to_survivors(runtime):
    # Everyone retires at once, naming everyone else: all notices must
    # be pruned, leaving an empty delta stream.
    store = runtime.state_store("leave")
    peers = ("a", "b", "c")
    store.load(
        [(k, tuple(p for p in peers if p != k)) for k in peers]
    )
    _, deltas = runtime.run_stateful(Leave(), store, scan=True)
    assert deltas == []
    assert len(store) == 0


def test_retired_notices_reach_survivors(runtime):
    store = runtime.state_store("leave-one")
    store.load([("goner", 0), ("stays", 1)])
    _, deltas = runtime.run_stateful(LeaveOne(), store, scan=True)
    assert deltas == [("goner", Retired(("stays",)))]
    assert len(store) == 1 and store.contains("stays")


def test_stateful_rounds_count_as_jobs(runtime):
    store = runtime.state_store("jobs")
    store.load([("a", 1)])
    before = runtime.jobs_executed
    runtime.run_stateful(CountDown(), store, scan=True)
    assert runtime.jobs_executed == before + 1
    assert runtime.job_log[-1] == "count-down"


def test_outputs_bit_identical_across_backends_and_storage(tmp_path):
    """The stateful plane inherits the runtime equivalence contract."""
    def run(backend, storage, spill):
        runtime = MapReduceRuntime(
            num_map_tasks=3,
            num_reduce_tasks=3,
            counters=Counters(),
            backend=backend,
            storage=storage,
            spill_threshold=spill,
            spill_dir=str(tmp_path / f"sp-{backend}-{spill}"),
        )
        store = runtime.state_store("equiv")
        store.load([(f"k{i}", 1 + i % 4) for i in range(23)])
        transcript = []
        job = CountDown()
        while len(store):
            output, deltas = runtime.run_stateful(job, store, scan=True)
            transcript.append((output, deltas))
        return transcript, strip_volatile_counters(
            runtime.counters.snapshot()
        )

    baseline = run("serial", None, None)
    for backend in ("serial", "threads", "processes"):
        for storage, spill in (
            (None, 0),
            (LocalDiskFileSystem(root=str(tmp_path / f"d-{backend}")), 2),
        ):
            assert run(backend, storage, spill) == baseline


def test_driver_integration(runtime):
    driver = IterativeDriver(runtime, name="countdown")
    with pytest.raises(DriverError):
        driver.run_stateful(CountDown())
    driver.create_store([("a", 2), ("b", 9)])
    # Frontier rounds driven by "a" alone: "b" stays quiescent (and
    # resident) throughout, which the savings meter must reflect.
    deltas = [("a", 2)]
    rounds = 0
    while deltas:
        _, deltas = driver.run_stateful(CountDown(), deltas=deltas)
        rounds += 1
    assert rounds == 2
    assert len(driver.store) == 1 and driver.store.contains("b")
    assert driver.quiescent_ratio() == 0.5
    driver.close()
    assert driver.store is None


def test_strip_volatile_counters_drops_both_spill_families():
    counters = Counters()
    counters.increment("g", "spilled_records", 5)
    for name in STATE_SPILL_COUNTERS:
        counters.increment("g", name, 7)
    counters.increment("g", "kept", 1)
    assert strip_volatile_counters(counters.snapshot()) == {
        "g": {"kept": 1}
    }


def test_strip_volatile_counters_drops_point_counters():
    counters = Counters()
    for name in STATE_POINT_COUNTERS:
        counters.increment("g", name, 3)
    counters.increment("g", "kept", 1)
    assert strip_volatile_counters(counters.snapshot()) == {
        "g": {"kept": 1}
    }


# -- the single-key apply path on parked partitions -------------------------


def _parked_store(tmp_path, counters=None):
    """A parked 2-partition store holding k0..k5 (threshold 0)."""
    store = ResidentStateStore(
        "point",
        num_partitions=2,
        filesystem=LocalDiskFileSystem(root=str(tmp_path / "dfs")),
        spill_threshold=0,
        counters=counters,
    )
    store.load([(f"k{i}", i * 10) for i in range(6)])
    store.park()
    assert all(part is None for part in store._partitions)
    return store


def test_point_put_leaves_partition_parked(tmp_path):
    counters = Counters()
    store = _parked_store(tmp_path, counters)
    store.put(canonical_bytes("new"), "new", 99)
    store.put(canonical_bytes("k0"), "k0", -1)  # overwrite, same path
    # No partition was unparked by the writes...
    assert all(part is None for part in store._partitions)
    assert counters.get("point", "state.point_applies") == 2
    # ...yet the index and the data both see them.
    assert store.contains("new") and len(store) == 7
    assert store.get("new") == 99
    assert store.get("k0") == -1
    assert dict(store.records())["k0"] == -1
    store.close()


def test_point_discard_tombstones_without_unparking(tmp_path):
    counters = Counters()
    store = _parked_store(tmp_path, counters)
    store.discard(canonical_bytes("k1"), "k1")
    assert all(part is None for part in store._partitions)
    assert counters.get("point", "state.point_applies") == 1
    assert not store.contains("k1") and len(store) == 5
    assert store.get("k1", "gone") == "gone"
    assert "k1" not in dict(store.records())
    # Discarding an absent key is a no-op, not a tombstone.
    store.discard(canonical_bytes("nope"), "nope")
    assert counters.get("point", "state.point_applies") == 1
    store.close()


def test_point_get_scans_parked_file_without_caching(tmp_path):
    counters = Counters()
    store = _parked_store(tmp_path, counters)
    assert store.get("k2") == 20
    assert all(part is None for part in store._partitions)
    assert counters.get("point", "state.point_reads") == 1
    # Misses answer from the key index without touching the file.
    assert store.get("nope", -1) == -1
    assert counters.get("point", "state.point_reads") == 1
    # Resident reads are direct (no point meter).
    resident = ResidentStateStore("res", num_partitions=2)
    resident.load([("a", 1)])
    assert resident.get("a") == 1
    store.close()


def test_reparking_folds_the_overlay_into_the_file(tmp_path):
    store = _parked_store(tmp_path)
    store.put(canonical_bytes("new"), "new", 99)
    store.discard(canonical_bytes("k0"), "k0")
    store.park()  # folds the overlay, rewrites the parked files
    assert all(not overlay for overlay in store._overlay)
    assert store.get("new") == 99
    assert store.get("k0", "gone") == "gone"
    expected = {f"k{i}": i * 10 for i in range(1, 6)}
    expected["new"] = 99
    assert dict(store.records()) == expected
    store.close()


def test_point_apply_then_load_partition_sees_overlay(tmp_path):
    """Loading a partition (e.g. a frontier round visiting it) folds
    pending point writes in, so rounds and point ops interleave."""
    store = _parked_store(tmp_path)
    store.put(canonical_bytes("new"), "new", 99)
    store.discard(canonical_bytes("k1"), "k1")
    for index in range(2):
        part = store.partition(index)  # unpark + fold
        for key_bytes, (key, value) in part.items():
            assert store.get(key) == value
    assert not store.contains("k1")
    assert store.get("new") == 99
    store.close()
