"""Tests for declarative job pipelines."""

import pytest

from repro.mapreduce import (
    InMemoryFileSystem,
    MapReduceError,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
)


class Tokenize(MapReduceJob):
    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def reduce(self, word, ones):
        yield word, sum(ones)


class FilterBig(MapReduceJob):
    """Keeps words whose count is at least side_data['min']."""

    def map(self, word, count):
        if count >= self.side_data["min"]:
            yield word, count

    def reduce(self, word, counts):
        yield word, counts[0]


@pytest.fixture
def pipeline():
    p = Pipeline()
    p.filesystem.write("/in", [(0, "a b a c a b")])
    return p


def test_two_stage_pipeline(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(),
        ["/counts"],
        "/big",
        side_data=lambda fs: {"min": 2},
    )
    output = pipeline.run()
    assert dict(output) == {"a": 3, "b": 2}
    assert pipeline.filesystem.read("/counts")  # intermediate persisted
    assert pipeline.records_out == {"/counts": 3, "/big": 2}


def test_side_data_factory_sees_filesystem(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(),
        ["/counts"],
        "/big",
        side_data=lambda fs: {"min": max(dict(fs.read("/counts")).values())},
    )
    output = pipeline.run()
    assert dict(output) == {"a": 3}


def test_validate_missing_input():
    p = Pipeline()
    p.add(Tokenize(), ["/nope"], "/out")
    with pytest.raises(MapReduceError, match="which does not exist"):
        p.run()


def test_validate_duplicate_output(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/out")
    pipeline.add(Tokenize(), ["/in"], "/out")
    with pytest.raises(MapReduceError, match="two stages write"):
        p = pipeline.run()


def test_later_stage_may_consume_earlier_output(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(), ["/counts"], "/big", side_data=lambda fs: {"min": 1}
    )
    pipeline.validate()  # inputs satisfied by the declared wiring


def test_describe(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    text = pipeline.describe()
    assert "Tokenize" in text
    assert "/in" in text and "/counts" in text


def test_multi_input_stage():
    p = Pipeline()
    p.filesystem.write("/a", [(0, "x y")])
    p.filesystem.write("/b", [(1, "y z")])
    p.add(Tokenize(), ["/a", "/b"], "/counts")
    output = dict(p.run())
    assert output == {"x": 1, "y": 2, "z": 1}
