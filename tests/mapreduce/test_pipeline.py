"""Tests for declarative job pipelines."""

import pytest

from repro.mapreduce import (
    InMemoryFileSystem,
    MapReduceError,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
)


class Tokenize(MapReduceJob):
    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def reduce(self, word, ones):
        yield word, sum(ones)


class FilterBig(MapReduceJob):
    """Keeps words whose count is at least side_data['min']."""

    def map(self, word, count):
        if count >= self.side_data["min"]:
            yield word, count

    def reduce(self, word, counts):
        yield word, counts[0]


@pytest.fixture
def pipeline():
    p = Pipeline()
    p.filesystem.write("/in", [(0, "a b a c a b")])
    return p


def test_two_stage_pipeline(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(),
        ["/counts"],
        "/big",
        side_data=lambda fs: {"min": 2},
    )
    output = pipeline.run()
    assert dict(output) == {"a": 3, "b": 2}
    assert pipeline.filesystem.read("/counts")  # intermediate persisted
    assert pipeline.records_out == {"/counts": 3, "/big": 2}


def test_side_data_factory_sees_filesystem(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(),
        ["/counts"],
        "/big",
        side_data=lambda fs: {"min": max(dict(fs.read("/counts")).values())},
    )
    output = pipeline.run()
    assert dict(output) == {"a": 3}


def test_validate_missing_input():
    p = Pipeline()
    p.add(Tokenize(), ["/nope"], "/out")
    with pytest.raises(MapReduceError, match="which does not exist"):
        p.run()


def test_validate_duplicate_output(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/out")
    pipeline.add(Tokenize(), ["/in"], "/out")
    with pytest.raises(MapReduceError, match="two stages write"):
        p = pipeline.run()


def test_later_stage_may_consume_earlier_output(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.add(
        FilterBig(), ["/counts"], "/big", side_data=lambda fs: {"min": 1}
    )
    pipeline.validate()  # inputs satisfied by the declared wiring


def test_describe(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    text = pipeline.describe()
    assert "Tokenize" in text
    assert "/in" in text and "/counts" in text


def test_multi_input_stage():
    p = Pipeline()
    p.filesystem.write("/a", [(0, "x y")])
    p.filesystem.write("/b", [(1, "y z")])
    p.add(Tokenize(), ["/a", "/b"], "/counts")
    output = dict(p.run())
    assert output == {"x": 1, "y": 2, "z": 1}


# -- streaming regression ---------------------------------------------------
# Pipeline.run used to materialize every stage's full output in driver
# memory before writing it to the filesystem; it now streams the
# runtime's task outputs straight into filesystem.write and derives
# records_out from the dataset's own du() accounting.


class _StreamSpyFS(InMemoryFileSystem):
    """Records whether each write received a lazy iterator or a list."""

    def __init__(self):
        super().__init__()
        self.write_types = {}

    def write(self, path, records, overwrite=False):
        self.write_types[path] = type(records).__name__
        return super().write(path, records, overwrite=overwrite)


def test_run_streams_stage_output_into_filesystem():
    p = Pipeline(filesystem=_StreamSpyFS())
    p.filesystem.write("/in", [(0, "a b a c a b")])
    p.add(Tokenize(), ["/in"], "/counts")
    output = p.run()
    # The stage's write got a generator, not a materialized list...
    assert p.filesystem.write_types["/counts"] == "generator"
    # ...and the result read back from storage is complete and exact.
    assert dict(output) == {"a": 3, "b": 2, "c": 1}


def test_records_out_comes_from_dataset_accounting(pipeline):
    pipeline.add(Tokenize(), ["/in"], "/counts")
    pipeline.run()
    du = pipeline.filesystem.du("/counts")
    assert pipeline.records_out["/counts"] == du.records == 3


def test_run_returns_the_persisted_dataset(pipeline):
    """What run() returns is the stored dataset, byte-for-byte: the
    storage codec round trip, not the in-flight objects."""
    pipeline.add(Tokenize(), ["/in"], "/counts")
    output = pipeline.run()
    assert output == pipeline.filesystem.read("/counts")


def test_run_with_no_stages_is_empty():
    assert Pipeline().run() == []


def test_streaming_run_honors_spill_threshold():
    """A spill-forcing runtime changes the IO path, never the data:
    the streamed, spilled pipeline output is bit-identical to the
    in-memory one."""
    def run(threshold):
        p = Pipeline(
            runtime=MapReduceRuntime(spill_threshold=threshold)
        )
        p.filesystem.write(
            "/in", [(i, f"w{i % 5} w{i % 3}") for i in range(40)]
        )
        p.add(Tokenize(), ["/in"], "/counts")
        output = p.run()
        return output, p.records_out["/counts"]

    unspilled, n1 = run(None)
    spilled, n2 = run(1)  # every partition buffer spills
    assert spilled == unspilled
    assert n1 == n2 == len(unspilled)
