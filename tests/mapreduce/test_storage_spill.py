"""The out-of-core contract: spilling and storage change *nothing*.

The storage subsystem's hard guarantee — outputs, ``job_log``, and
counter totals (minus the spill counters) are bit-identical across

* filesystems (``memory`` / ``disk``),
* spill thresholds (``None`` = never spill, ``0`` = spill every
  record, and sizes in between), and
* execution backends (``serial`` / ``threads`` / ``processes``)

— plus the crash-safety clause: a failing job never leaves a visible
partial dataset, on any filesystem.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    ExternalShuffle,
    Counters,
    InMemoryFileSystem,
    LocalDiskFileSystem,
    MapReduceError,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
    SPILL_COUNTERS,
    canonical_bytes,
    strip_spill_counters,
)
from repro.simjoin import mapreduce_similarity_join

SPILL_THRESHOLDS = (None, 0, 1, 7)


# -- module-level jobs (picklable for the processes backend) ---------------


class WordCount(MapReduceJob):
    has_combiner = True

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def combine(self, word, counts):
        yield word, sum(counts)

    def reduce(self, word, counts):
        yield word, sum(counts)


class OrderSensitive(MapReduceJob):
    """Reduce output depends on the *arrival order* of equal-key values.

    The sharpest probe of shuffle determinism: if spilling or merging
    ever reorders values within a key group, this job's output changes.
    """

    def map(self, key, value):
        yield key % 3, (key, value)

    def reduce(self, key, values):
        yield key, list(values)  # order preserved verbatim


class ExplodingReduce(MapReduceJob):
    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        raise RuntimeError("reduce blew up")


# -- ExternalShuffle unit behavior ------------------------------------------
#
# The shuffle operates on the runtime's encoded plane: records are
# (key_bytes, key, value) triples whose first element was computed once
# at map time.  The unit tests encode explicitly at the boundary.


def _encoded(records):
    return [(canonical_bytes(k), k, v) for k, v in records]


def test_external_shuffle_merges_sorted(tmp_path):
    shuffle = ExternalShuffle(2, 3, spill_dir=str(tmp_path))
    records = [("b", 1), ("a", 2), ("c", 3), ("a", 4), ("b", 5), ("a", 6)]
    with shuffle:
        for record in _encoded(records):
            shuffle.add(0, record)
        merged = shuffle.merged_partition(0)
        assert merged == sorted(_encoded(records), key=lambda r: r[0])
        assert shuffle.merged_partition(1) == []
        assert shuffle.spilled_records > 0
        assert shuffle.spill_files > 0
        assert shuffle.spilled_bytes > 0
        assert shuffle.spill_seconds > 0.0


def test_external_shuffle_stable_across_thresholds(tmp_path):
    """Equal keys keep arrival order at every threshold (incl. 0)."""
    records = _encoded(
        [("k", i) for i in range(20)] + [("j", i) for i in range(5)]
    )
    baseline = None
    for threshold in (0, 1, 3, 100):
        shuffle = ExternalShuffle(
            1, threshold, spill_dir=str(tmp_path / str(threshold))
        )
        with shuffle:
            for record in records:
                shuffle.add(0, record)
            merged = shuffle.merged_partition(0)
        if baseline is None:
            baseline = merged
        assert merged == baseline


def test_external_shuffle_streams_lazily(tmp_path):
    """merged_stream is an iterator over the same merged sequence."""
    records = _encoded([("b", 1), ("a", 2), ("a", 3), ("c", 4)])
    shuffle = ExternalShuffle(1, 1, spill_dir=str(tmp_path))
    with shuffle:
        for record in records:
            shuffle.add(0, record)
        stream = shuffle.merged_stream(0)
        assert iter(stream) is iter(stream)  # a lazy iterator...
        assert list(stream) == shuffle.merged_partition(0)  # ...same data


def test_external_shuffle_multipass_merge_is_bounded_and_stable(tmp_path):
    """With many runs, prefix batches compact first (multi-pass merge):
    no more than merge_factor+1 files open at once, output unchanged."""
    records = _encoded([(f"k{i % 5}", i) for i in range(120)])
    baseline_shuffle = ExternalShuffle(
        1, 1000, spill_dir=str(tmp_path / "base")
    )
    with baseline_shuffle:
        for record in records:
            baseline_shuffle.add(0, record)
        baseline = baseline_shuffle.merged_partition(0)
    shuffle = ExternalShuffle(
        1, 0, spill_dir=str(tmp_path / "multi"), merge_factor=3
    )
    with shuffle:
        for record in records:
            shuffle.add(0, record)
        assert shuffle.spill_files > 100  # one run per record...
        merged = shuffle.merged_partition(0)
        # ...compacted down to at most merge_factor run files.
        assert len(shuffle._runs[0]) <= 3
    assert merged == baseline


def test_run_codec_raises_on_truncated_frames(tmp_path):
    """Every truncation point of a spill-run frame is a loud
    FileSystemError, never a silent partial read."""
    import io

    from repro.mapreduce import FileSystemError
    from repro.mapreduce.storage.codec import (
        read_run_records,
        write_run_record,
    )

    buffer = io.BytesIO()
    record = (canonical_bytes("key"), "key", [1, 2, 3])
    write_run_record(buffer, record)
    intact = buffer.getvalue()
    assert list(read_run_records(io.BytesIO(intact))) == [record]
    # Cut at every byte boundary inside the frame: each prefix either
    # reads zero records cleanly (empty) or raises FileSystemError.
    for cut in range(1, len(intact)):
        with pytest.raises(FileSystemError, match="truncated spill-run"):
            list(read_run_records(io.BytesIO(intact[:cut])))


def test_external_shuffle_rejects_bad_merge_factor():
    with pytest.raises(MapReduceError, match="merge_factor"):
        ExternalShuffle(1, 0, merge_factor=1)


def test_external_shuffle_close_removes_run_files(tmp_path):
    shuffle = ExternalShuffle(1, 0, spill_dir=str(tmp_path))
    shuffle.add(0, (canonical_bytes("a"), "a", 1))
    shuffle.add(0, (canonical_bytes("b"), "b", 2))
    assert any(files for _, _, files in os.walk(tmp_path))
    shuffle.close()
    assert not any(files for _, _, files in os.walk(tmp_path))
    shuffle.close()  # idempotent


def test_external_shuffle_meter(tmp_path):
    shuffle = ExternalShuffle(1, 0, spill_dir=str(tmp_path))
    with shuffle:
        shuffle.add(0, (canonical_bytes("a"), "a", 1))
        counters = Counters()
        shuffle.meter(counters, "job-x")
        for name in SPILL_COUNTERS:
            assert counters.get("job-x", name) > 0
            assert counters.get("runtime", name) > 0


def test_external_shuffle_rejects_bad_config():
    with pytest.raises(MapReduceError):
        ExternalShuffle(0, 1)
    with pytest.raises(MapReduceError):
        ExternalShuffle(1, -1)


def test_runtime_rejects_negative_spill_threshold():
    with pytest.raises(MapReduceError):
        MapReduceRuntime(spill_threshold=-5)


def test_strip_spill_counters():
    snapshot = {
        "job": {"shuffle.records": 10, "spilled_records": 4},
        "runtime": {"spill_files": 2, "spilled_bytes": 99},
    }
    assert strip_spill_counters(snapshot) == {
        "job": {"shuffle.records": 10}
    }


# -- the bit-identical equivalence property ---------------------------------


def _fs_for(kind, tmp_path, tag):
    if kind == "memory":
        return InMemoryFileSystem()
    return LocalDiskFileSystem(root=str(tmp_path / f"dfs-{tag}"))


def _observe(job_factory, records, *, backend="serial", storage=None,
             spill_threshold=None, tmp_path=None, tag=""):
    runtime = MapReduceRuntime(
        num_map_tasks=3,
        num_reduce_tasks=3,
        backend=backend,
        max_workers=3,
        storage=storage,
        spill_threshold=spill_threshold,
        spill_dir=str(tmp_path) if tmp_path is not None else None,
    )
    output = runtime.run(job_factory(), records)
    return (
        output,
        list(runtime.job_log),
        strip_spill_counters(runtime.counters.snapshot()),
    )


@settings(max_examples=15)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.text(alphabet=st.sampled_from("abcd "), max_size=16),
        ),
        max_size=25,
    )
)
def test_wordcount_identical_across_spill_thresholds(records):
    baseline = _observe(WordCount, records)
    for threshold in SPILL_THRESHOLDS[1:]:
        observed = _observe(WordCount, records, spill_threshold=threshold)
        assert observed == baseline


@settings(max_examples=15)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=30,
    )
)
def test_value_order_identical_across_spill_thresholds(records):
    """Equal-key value order survives sort-and-spill at any threshold."""
    baseline = _observe(OrderSensitive, records)
    for threshold in SPILL_THRESHOLDS[1:]:
        observed = _observe(
            OrderSensitive, records, spill_threshold=threshold
        )
        assert observed == baseline


@pytest.mark.parametrize("threshold", SPILL_THRESHOLDS)
def test_wordcount_identical_across_backends_with_spill(
    threshold, tmp_path
):
    records = [(i, "a b c a b a" * (1 + i % 3)) for i in range(30)]
    baseline = _observe(WordCount, records, tmp_path=tmp_path)
    for backend in ("serial", "threads", "processes"):
        observed = _observe(
            WordCount,
            records,
            backend=backend,
            spill_threshold=threshold,
            tmp_path=tmp_path,
        )
        assert observed == baseline


def test_spill_counters_metered_when_spilling(tmp_path):
    runtime = MapReduceRuntime(
        spill_threshold=0, spill_dir=str(tmp_path)
    )
    runtime.run(WordCount(), [(0, "a b c"), (1, "a a")])
    assert runtime.counters.get("runtime", "spilled_records") > 0
    assert runtime.counters.get("runtime", "spill_files") > 0
    assert runtime.counters.get("runtime", "spilled_bytes") > 0
    assert runtime.counters.get("WordCount", "spilled_records") > 0


def test_no_spill_counters_without_spilling(tmp_path):
    runtime = MapReduceRuntime(
        spill_threshold=10_000, spill_dir=str(tmp_path)
    )
    runtime.run(WordCount(), [(0, "a b c")])
    assert runtime.counters.get("runtime", "spilled_records") == 0
    assert runtime.counters.get("runtime", "spill_files") == 0


def test_spill_runs_cleaned_up_after_job(tmp_path):
    runtime = MapReduceRuntime(spill_threshold=0, spill_dir=str(tmp_path))
    runtime.run(WordCount(), [(0, "a b c a b")])
    assert not any(files for _, _, files in os.walk(tmp_path))


def test_spill_runs_cleaned_up_after_failed_job(tmp_path):
    runtime = MapReduceRuntime(spill_threshold=0, spill_dir=str(tmp_path))
    with pytest.raises(RuntimeError, match="reduce blew up"):
        runtime.run(ExplodingReduce(), [(0, 1), (1, 2)])
    assert not any(files for _, _, files in os.walk(tmp_path))


# -- pipelines across filesystems -------------------------------------------


@pytest.mark.parametrize("storage", ("memory", "disk"))
@pytest.mark.parametrize("threshold", SPILL_THRESHOLDS)
def test_pipeline_identical_across_filesystems_and_thresholds(
    storage, threshold, tmp_path
):
    fs = _fs_for(storage, tmp_path, f"{storage}-{threshold}")
    runtime = MapReduceRuntime(
        storage=fs, spill_threshold=threshold, spill_dir=str(tmp_path)
    )
    pipeline = Pipeline(runtime=runtime)
    pipeline.filesystem.write(
        "/in", [(i, "alpha beta alpha gamma"[: 5 + i]) for i in range(12)]
    )
    pipeline.add(WordCount(), ["/in"], "/counts")
    output = pipeline.run()

    baseline_pipeline = Pipeline()
    baseline_pipeline.filesystem.write(
        "/in", [(i, "alpha beta alpha gamma"[: 5 + i]) for i in range(12)]
    )
    baseline_pipeline.add(WordCount(), ["/in"], "/counts")
    baseline = baseline_pipeline.run()

    assert output == baseline
    assert pipeline.filesystem.read("/counts") == baseline
    assert strip_spill_counters(runtime.counters.snapshot()) == (
        strip_spill_counters(
            baseline_pipeline.runtime.counters.snapshot()
        )
    )


@pytest.mark.parametrize("storage", ("memory", "disk"))
def test_simjoin_identical_across_filesystems_with_spill(
    storage, tmp_path
):
    items = {
        f"t{i}": {f"w{j}": float(1 + (i + j) % 4) for j in range(4)}
        for i in range(6)
    }
    consumers = {
        f"c{i}": {f"w{j}": float(1 + (i * j) % 3) for j in range(4)}
        for i in range(5)
    }
    baseline_runtime = MapReduceRuntime()
    baseline = mapreduce_similarity_join(
        items, consumers, 4.0, runtime=baseline_runtime
    )
    fs = _fs_for(storage, tmp_path, storage)
    runtime = MapReduceRuntime(
        storage=fs, spill_threshold=2, spill_dir=str(tmp_path)
    )
    rows = mapreduce_similarity_join(
        items, consumers, 4.0, runtime=runtime
    )
    assert rows == baseline
    assert runtime.job_log == baseline_runtime.job_log
    assert strip_spill_counters(runtime.counters.snapshot()) == (
        strip_spill_counters(baseline_runtime.counters.snapshot())
    )
    if storage == "disk":
        # Intermediates live on disk and stay inspectable.
        assert fs.list_paths("/simjoin") == [
            "/simjoin/candidates",
            "/simjoin/documents",
            "/simjoin/edges",
            "/simjoin/term_bounds",
        ]
        assert runtime.counters.get("runtime", "spilled_records") > 0
    else:
        # On the default in-memory path the wrapper cleans up after
        # itself — no duplicate of the corpus stays on the runtime.
        assert fs.list_paths("/simjoin") == []


def test_simjoin_cleanup_spares_caller_datasets():
    """The in-memory cleanup removes exactly the pipeline's datasets,
    not caller data that happens to share the /simjoin prefix."""
    runtime = MapReduceRuntime()
    runtime.filesystem.write("/simjoin_baseline", [("mine", 1)])
    runtime.filesystem.write("/simjoin/my_notes", [("note", 2)])
    items = {"t0": {"w0": 3.0}}
    consumers = {"c0": {"w0": 3.0}}
    rows = mapreduce_similarity_join(
        items, consumers, 4.0, runtime=runtime
    )
    assert rows == [("t0", "c0", 9.0)]
    assert runtime.filesystem.read("/simjoin_baseline") == [("mine", 1)]
    assert runtime.filesystem.read("/simjoin/my_notes") == [("note", 2)]
    assert not runtime.filesystem.exists("/simjoin/candidates")


# -- crash safety ------------------------------------------------------------


@pytest.mark.parametrize("storage", ("memory", "disk"))
def test_failing_job_leaves_no_visible_partial_dataset(
    storage, tmp_path
):
    fs = _fs_for(storage, tmp_path, storage)
    pipeline = Pipeline(
        runtime=MapReduceRuntime(storage=fs)
    )
    pipeline.filesystem.write("/in", [(0, 1), (1, 2)])
    pipeline.add(ExplodingReduce(), ["/in"], "/out")
    with pytest.raises(RuntimeError, match="reduce blew up"):
        pipeline.run()
    assert not pipeline.filesystem.exists("/out")
    assert pipeline.filesystem.list_paths() == ["/in"]
    if storage == "disk":
        # ... and no in-progress temp files on disk either.
        leftovers = [
            name
            for _, _, files in os.walk(fs.root)
            for name in files
            if "inprogress" in name
        ]
        assert leftovers == []


def test_pipeline_describe_includes_du_stats(tmp_path):
    pipeline = Pipeline(storage="disk")
    pipeline.filesystem.root  # disk-backed
    pipeline.filesystem.write("/in", [(0, "a b a")])
    pipeline.add(WordCount(), ["/in"], "/counts")
    before = pipeline.describe()
    assert "records" not in before  # output not produced yet
    pipeline.run()
    after = pipeline.describe()
    assert "/counts" in after
    assert "2 records" in after
    assert "B]" in after


def test_pipeline_storage_name_and_conflicts(tmp_path):
    assert Pipeline(storage="memory").filesystem.name == "memory"
    runtime = MapReduceRuntime(storage="memory")
    with pytest.raises(MapReduceError, match="not both"):
        Pipeline(runtime=runtime, storage="memory")
    with pytest.raises(MapReduceError, match="not both"):
        Pipeline(
            filesystem=InMemoryFileSystem(), storage="memory"
        )
    # A pipeline inherits its runtime's filesystem by default.
    disk_runtime = MapReduceRuntime(
        storage=LocalDiskFileSystem(root=str(tmp_path / "dfs"))
    )
    assert Pipeline(runtime=disk_runtime).filesystem is (
        disk_runtime.filesystem
    )
