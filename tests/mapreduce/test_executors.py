"""Execution backends are observationally equivalent to serial.

The heart of the pluggable-executor contract: for any job, input, and
task-count choice, the output records, the ``job_log``, and the merged
counter totals must be *bit-identical* across the ``serial``,
``threads``, and ``processes`` backends.  These tests also cover the
failure paths — job errors must traverse the process boundary with
their original type, and unpicklable work must fail with a diagnosable
:class:`ExecutorError` rather than a bare pool error.
"""

import random

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import random_bipartite
from repro.mapreduce import (
    EXECUTOR_BACKENDS,
    Counters,
    ExecutorError,
    JobValidationError,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.matching import greedy_mr_b_matching, stack_mr_b_matching
from repro.simjoin import mapreduce_similarity_join

PARALLEL_BACKENDS = ("threads", "processes")


# -- module-level jobs (picklable for the processes backend) ---------------


class WordCount(MapReduceJob):
    has_combiner = True

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def combine(self, word, counts):
        yield word, sum(counts)

    def reduce(self, word, counts):
        yield word, sum(counts)


class MixedKeys(MapReduceJob):
    """Exercises heterogeneous keys through the canonical sort order."""

    def map(self, key, value):
        yield (key % 3, "bucket"), value
        yield key, value * 2

    def reduce(self, key, values):
        yield key, sorted(values)


class ExplodingMap(MapReduceJob):
    """Raises a plain ValueError from user map code."""

    def map(self, key, value):
        raise ValueError("boom in map")

    def reduce(self, key, values):
        return []


class NoneReduce(MapReduceJob):
    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        return None


class NoneMap(MapReduceJob):
    def map(self, key, value):
        return None

    def reduce(self, key, values):
        return []


def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError("task three failed")
    return x


# -- executor unit behavior -------------------------------------------------


def test_resolve_executor_names_and_aliases():
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert isinstance(resolve_executor("threads"), ThreadExecutor)
    assert isinstance(resolve_executor("processes"), ProcessExecutor)
    assert isinstance(resolve_executor("multiprocessing"), ProcessExecutor)
    assert isinstance(resolve_executor(None), SerialExecutor)
    existing = ThreadExecutor(max_workers=2)
    assert resolve_executor(existing) is existing


def test_resolve_executor_rejects_unknown():
    with pytest.raises(ExecutorError, match="unknown executor backend"):
        resolve_executor("gpu")
    with pytest.raises(ExecutorError, match="serial, threads, processes"):
        resolve_executor(42)


@pytest.mark.parametrize("name", EXECUTOR_BACKENDS)
def test_run_tasks_preserves_input_order(name):
    executor = resolve_executor(name, max_workers=3)
    tasks = [(i,) for i in range(20)]
    assert executor.run_tasks(_square, tasks) == [
        i * i for i in range(20)
    ]
    assert executor.run_tasks(_square, []) == []


@pytest.mark.parametrize("name", EXECUTOR_BACKENDS)
def test_run_tasks_propagates_original_exception(name):
    executor = resolve_executor(name, max_workers=2)
    with pytest.raises(ValueError, match="task three failed"):
        executor.run_tasks(_maybe_fail, [(i,) for i in range(6)])


def test_runtime_exposes_backend_name():
    assert MapReduceRuntime().backend == "serial"
    assert MapReduceRuntime(backend="threads").backend == "threads"
    assert MapReduceRuntime(backend="processes").backend == "processes"


def test_shared_pools_recreate_after_shutdown():
    from repro.mapreduce import shutdown_shared_pools

    records = [(0, "a b a")]
    baseline = MapReduceRuntime().run(WordCount(), records)
    runtime = MapReduceRuntime(backend="threads")
    assert runtime.run(WordCount(), records) == baseline
    shutdown_shared_pools()
    # Pools are lazily rebuilt: the same runtime keeps working.
    assert runtime.run(WordCount(), records) == baseline


def test_pipeline_accepts_backend_name():
    pipeline = Pipeline(backend="threads")
    assert pipeline.runtime.backend == "threads"
    with pytest.raises(Exception, match="not both"):
        Pipeline(runtime=MapReduceRuntime(), backend="threads")


def test_counters_survive_pickling():
    counters = Counters()
    counters.increment("g", "a", 7)
    counters.increment("h", "b", 2)
    clone = pickle.loads(pickle.dumps(counters))
    assert clone.snapshot() == counters.snapshot()
    clone.increment("g", "a")
    assert counters.get("g", "a") == 7


# -- the bit-identical equivalence property --------------------------------


def _observe(job_factory, records, maps, reduces, backend):
    """Run a job and capture everything observable about the run."""
    runtime = MapReduceRuntime(
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        backend=backend,
        max_workers=3,
    )
    output = runtime.run(job_factory(), records)
    return output, list(runtime.job_log), runtime.counters.snapshot()


@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.text(
                alphabet=st.sampled_from("abcdef "), max_size=20
            ),
        ),
        max_size=30,
    ),
    maps=st.integers(min_value=1, max_value=5),
    reduces=st.integers(min_value=1, max_value=5),
)
def test_wordcount_bit_identical_across_backends(records, maps, reduces):
    baseline = _observe(WordCount, records, maps, reduces, "serial")
    for backend in PARALLEL_BACKENDS:
        observed = _observe(WordCount, records, maps, reduces, backend)
        assert observed == baseline


@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=25,
    ),
    maps=st.integers(min_value=1, max_value=4),
    reduces=st.integers(min_value=1, max_value=7),
)
def test_mixed_keys_bit_identical_across_backends(records, maps, reduces):
    baseline = _observe(MixedKeys, records, maps, reduces, "serial")
    for backend in PARALLEL_BACKENDS:
        observed = _observe(MixedKeys, records, maps, reduces, backend)
        assert observed == baseline


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.text(alphabet=st.sampled_from("xyz "), max_size=12),
        ),
        max_size=20,
    ),
    maps=st.integers(min_value=1, max_value=5),
    reduces=st.integers(min_value=1, max_value=5),
)
def test_task_count_independence_per_backend(backend, records, maps, reduces):
    """On every backend, task counts only move task boundaries."""
    many = _observe(WordCount, records, maps, reduces, backend)
    one = _observe(WordCount, records, 1, 1, backend)
    assert sorted(many[0]) == sorted(one[0])
    groups_many = many[2].get("WordCount", {}).get(
        "reduce.input.groups", 0
    )
    groups_one = one[2].get("WordCount", {}).get("reduce.input.groups", 0)
    assert groups_many == groups_one


# -- the paper's pipelines run unmodified on every backend -----------------


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_greedy_mr_identical_across_backends(backend):
    graph = random_bipartite(
        12, 9, 0.35, rng=random.Random(7), max_capacity=3
    )
    serial = greedy_mr_b_matching(
        graph, runtime=MapReduceRuntime(backend="serial")
    )
    runtime = MapReduceRuntime(backend=backend)
    parallel = greedy_mr_b_matching(graph, runtime=runtime)
    assert sorted(parallel.matching) == sorted(serial.matching)
    assert parallel.value == serial.value
    assert parallel.rounds == serial.rounds
    assert parallel.value_history == serial.value_history


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_stack_mr_identical_across_backends(backend):
    graph = random_bipartite(
        10, 8, 0.4, rng=random.Random(3), max_capacity=2
    )
    serial = stack_mr_b_matching(
        graph, seed=5, runtime=MapReduceRuntime(backend="serial")
    )
    parallel = stack_mr_b_matching(
        graph, seed=5, runtime=MapReduceRuntime(backend=backend)
    )
    assert sorted(parallel.matching) == sorted(serial.matching)
    assert parallel.value == serial.value
    assert parallel.rounds == serial.rounds


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_simjoin_identical_across_backends(backend):
    items = {
        f"t{i}": {f"w{j}": float(1 + (i + j) % 4) for j in range(4)}
        for i in range(6)
    }
    consumers = {
        f"c{i}": {f"w{j}": float(1 + (i * j) % 3) for j in range(4)}
        for i in range(5)
    }
    serial_runtime = MapReduceRuntime(backend="serial")
    serial_rows = mapreduce_similarity_join(
        items, consumers, 4.0, runtime=serial_runtime
    )
    runtime = MapReduceRuntime(backend=backend)
    rows = mapreduce_similarity_join(
        items, consumers, 4.0, runtime=runtime
    )
    assert rows == serial_rows
    assert runtime.job_log == serial_runtime.job_log
    assert (
        runtime.counters.snapshot() == serial_runtime.counters.snapshot()
    )


# -- failure paths ----------------------------------------------------------


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_map_job_validation_error_surfaces(backend):
    """The original JobValidationError crosses the backend boundary."""
    runtime = MapReduceRuntime(backend=backend)
    with pytest.raises(JobValidationError, match="returned None"):
        runtime.run(NoneMap(), [(i, i) for i in range(8)])


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_reduce_job_validation_error_surfaces(backend):
    runtime = MapReduceRuntime(backend=backend)
    with pytest.raises(JobValidationError, match="returned None"):
        runtime.run(NoneReduce(), [(i, i) for i in range(8)])


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_user_exception_keeps_its_type(backend):
    runtime = MapReduceRuntime(backend=backend)
    with pytest.raises(ValueError, match="boom in map"):
        runtime.run(ExplodingMap(), [(i, i) for i in range(8)])


def test_unpicklable_job_fails_with_executor_error():
    class LocalJob(MapReduceJob):  # local classes cannot be pickled
        def map(self, key, value):
            yield key, value

        def reduce(self, key, values):
            yield key, list(values)

    runtime = MapReduceRuntime(backend="processes")
    with pytest.raises(ExecutorError, match="picklable"):
        runtime.run(LocalJob(), [(1, "a"), (2, "b")])
