"""Tests for the pluggable storage subsystem (filesystems + codec).

The contract tests run against *every* filesystem backend via the
parametrized ``fs`` fixture — one behavior, two implementations.  The
disk-specific tests pin down what only disk can get wrong: atomic
rename-on-close, crash invisibility, gzip, and persistence across
instances.
"""

import gzip
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import (
    DatasetStats,
    FileSystem,
    FileSystemError,
    InMemoryFileSystem,
    LocalDiskFileSystem,
    resolve_filesystem,
)
from repro.mapreduce.storage import (
    FILESYSTEM_BACKENDS,
    dumps_record,
    loads_record,
    read_scalars,
    read_vectors,
    write_scalars,
    write_vectors,
)

FS_KINDS = ("memory", "disk", "disk-gz")


@pytest.fixture(params=FS_KINDS)
def fs(request, tmp_path) -> FileSystem:
    """Each filesystem backend in turn (disk twice: plain and gzip)."""
    if request.param == "memory":
        return InMemoryFileSystem()
    return LocalDiskFileSystem(
        root=str(tmp_path / "dfs"),
        compress=request.param.endswith("gz"),
    )


# -- the shared FileSystem contract -----------------------------------------


def test_write_read_roundtrip(fs):
    assert fs.write("/data/in", [("a", 1), ("b", 2)]) == 2
    assert fs.read("/data/in") == [("a", 1), ("b", 2)]
    assert fs.size("/data/in") == 2
    assert fs.exists("/data/in")
    assert "/data/in" in fs


def test_read_returns_caller_owned_data(fs):
    fs.write("/x", [("a", 1)])
    records = fs.read("/x")
    records.append(("evil", 2))
    assert fs.read("/x") == [("a", 1)]


def test_overwrite_protection(fs):
    fs.write("/x", [("a", 1)])
    with pytest.raises(FileSystemError, match="already exists"):
        fs.write("/x", [("b", 2)])
    fs.write("/x", [("b", 2)], overwrite=True)
    assert fs.read("/x") == [("b", 2)]


def test_missing_path(fs):
    with pytest.raises(FileSystemError, match="no such path"):
        fs.read("/missing")
    with pytest.raises(FileSystemError, match="no such path"):
        fs.delete("/missing")
    with pytest.raises(FileSystemError, match="no such path"):
        fs.du("/missing")
    assert not fs.exists("/missing")


def test_path_validation(fs):
    for bad in ("relative", "/trailing/", "", "/a//b", "/a/./b", "/.."):
        with pytest.raises(FileSystemError):
            fs.write(bad, [])


def test_record_validation(fs):
    with pytest.raises(FileSystemError, match="pairs"):
        fs.write("/bad", ["not-a-pair"])
    assert not fs.exists("/bad")  # nothing becomes visible


def test_failing_record_iterator_leaves_nothing_visible(fs):
    """The all-or-nothing visibility clause of the contract."""

    def explode():
        yield ("a", 1)
        yield ("b", 2)
        raise RuntimeError("source died mid-stream")

    with pytest.raises(RuntimeError, match="mid-stream"):
        fs.write("/partial", explode())
    assert not fs.exists("/partial")
    assert fs.list_paths() == []


def test_failing_overwrite_keeps_previous_dataset(fs):
    fs.write("/keep", [("old", 0)])

    def explode():
        yield ("new", 1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        fs.write("/keep", explode(), overwrite=True)
    assert fs.read("/keep") == [("old", 0)]


def test_read_many_concatenates(fs):
    fs.write("/a", [("k", 1)])
    fs.write("/b", [("k", 2)])
    assert fs.read_many(["/a", "/b"]) == [("k", 1), ("k", 2)]


def test_delete(fs):
    fs.write("/x", [("a", 1)])
    fs.delete("/x")
    assert not fs.exists("/x")


def test_list_paths_by_prefix(fs):
    fs.write("/job/out1", [("a", 1)])
    fs.write("/job/out2", [("a", 1)])
    fs.write("/other", [("a", 1)])
    assert fs.list_paths("/job") == ["/job/out1", "/job/out2"]
    assert len(fs.list_paths()) == 3
    with pytest.raises(FileSystemError):
        fs.list_paths("job")


def test_du_reports_records_and_bytes(fs):
    fs.write("/stats/a", [("k", [1, 2, 3]), ("l", "value")])
    fs.write("/stats/b", [])
    stats = fs.du("/stats/a")
    assert isinstance(stats, DatasetStats)
    assert stats.records == 2
    assert stats.bytes > 0
    empty = fs.du("/stats/b")
    assert empty.records == 0
    all_stats = fs.du()
    assert all_stats["/stats/a"] == stats
    assert all_stats["/stats/b"] == empty


def test_roundtrip_preserves_record_types(fs):
    """The record types the pipelines actually ship must round-trip
    exactly — tuples as tuples, int dict keys as ints, floats to the
    identical double."""
    records = [
        (("item-1", "consumer-2"), 0.1 + 0.2),
        (3, {"term": 1.5, "other": -2.25}),
        (None, [True, False, None]),
        ((1, ("nested", 2.0)), b"\x00\xffbytes"),
        ("unicode-é中", {1: "int-key", (2, 3): "tuple-key"}),
        (True, 1),  # bool key stays bool, int value stays int
        (-0.0, float("inf")),
    ]
    fs.write("/types", records)
    back = fs.read("/types")
    assert back == records
    for (key, value), (bkey, bvalue) in zip(records, back):
        assert type(bkey) is type(key)
        assert type(bvalue) is type(value)


# -- codec ------------------------------------------------------------------

_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.floats(allow_nan=False)
    | st.text(max_size=12)
    | st.binary(max_size=12)
)

_values = st.recursive(
    _scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(
            st.text(max_size=6) | st.integers(), children, max_size=4
        )
    ),
    max_leaves=12,
)


@given(key=_values, value=_values)
def test_codec_roundtrip_is_exact(key, value):
    back_key, back_value = loads_record(dumps_record(key, value))
    assert back_key == key
    assert back_value == value
    assert type(back_key) is type(key)
    assert type(back_value) is type(value)


def test_codec_rejects_unsupported_types():
    class Opaque:
        pass

    with pytest.raises(FileSystemError, match="cannot serialize"):
        dumps_record("k", Opaque())


def test_codec_rejects_malformed_lines():
    for bad in (
        "not json",
        '["key-only"]',  # not a pair
        '["k", {"a": 1, "b": 2}]',  # multi-key object is no valid tag
        '["k", {"zz": []}]',  # unknown tag
    ):
        with pytest.raises(FileSystemError, match="malformed|unknown"):
            loads_record(bad)


# -- disk-specific behavior -------------------------------------------------


def test_disk_datasets_survive_reopening(tmp_path):
    root = str(tmp_path / "dfs")
    first = LocalDiskFileSystem(root=root)
    first.write("/a/b", [(("k", 1), 2.5)])
    second = LocalDiskFileSystem(root=root)
    assert second.list_paths() == ["/a/b"]
    assert second.read("/a/b") == [(("k", 1), 2.5)]
    assert second.du("/a/b").records == 1


def test_disk_no_temp_litter_after_crash(tmp_path):
    fs = LocalDiskFileSystem(root=str(tmp_path / "dfs"))

    def explode():
        yield ("a", 1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        fs.write("/crashed", explode())
    leftovers = [
        name
        for _, _, files in os.walk(fs.root)
        for name in files
    ]
    assert leftovers == []


def test_disk_gzip_actually_compresses(tmp_path):
    records = [(f"key-{i % 3}", "x" * 200) for i in range(200)]
    plain = LocalDiskFileSystem(root=str(tmp_path / "plain"))
    packed = LocalDiskFileSystem(
        root=str(tmp_path / "packed"), compress=True
    )
    plain.write("/d", records)
    packed.write("/d", records)
    assert packed.read("/d") == plain.read("/d") == records
    assert packed.du("/d").bytes < plain.du("/d").bytes


def test_disk_gzip_file_is_valid_gzip(tmp_path):
    fs = LocalDiskFileSystem(root=str(tmp_path / "dfs"), compress=True)
    fs.write("/d", [("a", 1)])
    (file_path,) = [
        os.path.join(directory, name)
        for directory, _, files in os.walk(fs.root)
        for name in files
    ]
    assert file_path.endswith(".jsonl.gz")
    with gzip.open(file_path, "rt", encoding="utf-8") as handle:
        assert handle.read().strip()


def test_disk_overwrite_switches_compression(tmp_path):
    root = str(tmp_path / "dfs")
    LocalDiskFileSystem(root=root).write("/d", [("a", 1)])
    packed = LocalDiskFileSystem(root=root, compress=True)
    packed.write("/d", [("b", 2)], overwrite=True)
    assert packed.read("/d") == [("b", 2)]
    assert packed.list_paths() == ["/d"]  # no stale twin


def test_disk_newer_representation_shadows_crash_leftover(tmp_path):
    """A compression-switching overwrite killed between its rename and
    the stale twin's unlink must still read as the *new* dataset."""
    root = str(tmp_path / "dfs")
    plain = LocalDiskFileSystem(root=root)
    plain.write("/d", [("old", 1)])
    stale = os.path.join(root, "d.jsonl")
    os.utime(stale, ns=(0, 0))  # definitely older than the overwrite
    packed = LocalDiskFileSystem(root=root, compress=True)
    packed.write("/d", [("new", 2)], overwrite=True)
    # Simulate the crash window: resurrect the stale plain twin.
    with open(stale, "w", encoding="utf-8") as handle:
        handle.write('["old",1]\n')
    os.utime(stale, ns=(0, 0))
    fresh = LocalDiskFileSystem(root=root)
    assert fresh.read("/d") == [("new", 2)]  # newer file wins
    assert fresh.list_paths() == ["/d"]  # no duplicate listing
    fresh.delete("/d")  # removes every representation
    assert not os.path.exists(stale)
    assert not fresh.exists("/d")


def test_disk_du_cache_invalidated_by_other_writer(tmp_path):
    root = str(tmp_path / "dfs")
    writer = LocalDiskFileSystem(root=root)
    reader = LocalDiskFileSystem(root=root)
    writer.write("/d", [("a", 1)])
    assert reader.du("/d").records == 1  # cached in `reader` now
    writer.write(
        "/d", [("a", 1), ("b", "a-longer-value"), ("c", 3)],
        overwrite=True,
    )
    stats = reader.du("/d")
    assert stats.records == 3  # signature change busts the stale cache
    assert stats.bytes == writer.du("/d").bytes


def test_disk_default_root_is_temporary():
    fs = LocalDiskFileSystem()
    try:
        assert os.path.isdir(fs.root)
        fs.write("/x", [("a", 1)])
        assert fs.read("/x") == [("a", 1)]
    finally:
        import shutil

        shutil.rmtree(fs.root, ignore_errors=True)


# -- resolve_filesystem -----------------------------------------------------


def test_resolve_filesystem_names_and_aliases(tmp_path):
    assert isinstance(resolve_filesystem(None), InMemoryFileSystem)
    assert isinstance(resolve_filesystem("memory"), InMemoryFileSystem)
    assert isinstance(resolve_filesystem("ram"), InMemoryFileSystem)
    disk = resolve_filesystem("disk", root=str(tmp_path / "d"))
    assert isinstance(disk, LocalDiskFileSystem)
    assert disk.root == str(tmp_path / "d")
    existing = InMemoryFileSystem()
    assert resolve_filesystem(existing) is existing


def test_resolve_filesystem_rejects_unknown():
    with pytest.raises(FileSystemError, match="unknown storage backend"):
        resolve_filesystem("tape")
    with pytest.raises(FileSystemError, match="memory, disk"):
        resolve_filesystem(42)
    assert FILESYSTEM_BACKENDS == ("memory", "disk")


# -- TSV corpus helpers (moved out of cli.py) -------------------------------


def test_vectors_tsv_roundtrip(tmp_path):
    path = str(tmp_path / "vectors.tsv")
    vectors = {
        "doc-b": {"beta": 2.5, "alpha": 1.0 / 3.0},
        "doc-a": {"gamma": -0.125},
    }
    assert write_vectors(path, vectors) == 2
    assert read_vectors(path) == vectors
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert lines[0].startswith("doc-a\t")  # sorted, deterministic bytes


def test_scalars_tsv_roundtrip(tmp_path):
    path = str(tmp_path / "scalars.tsv")
    scalars = {"n1": 0.1, "n2": 7.0, "n3": 1e-17}
    assert write_scalars(path, scalars) == 3
    assert read_scalars(path) == scalars  # repr round-trips exactly


def test_tsv_readers_report_malformed_lines(tmp_path):
    bad_vectors = tmp_path / "v.tsv"
    bad_vectors.write_text("doc-without-payload\n")
    with pytest.raises(ValueError, match="v.tsv:1"):
        read_vectors(str(bad_vectors))
    bad_scalars = tmp_path / "s.tsv"
    bad_scalars.write_text("key\tnot-a-float\n")
    with pytest.raises(ValueError, match="s.tsv:1"):
        read_scalars(str(bad_scalars))
