"""Tests for the in-memory distributed filesystem."""

import pytest

from repro.mapreduce import FileSystemError, InMemoryFileSystem


@pytest.fixture
def fs():
    return InMemoryFileSystem()


def test_write_read_roundtrip(fs):
    assert fs.write("/data/in", [("a", 1), ("b", 2)]) == 2
    assert fs.read("/data/in") == [("a", 1), ("b", 2)]
    assert fs.size("/data/in") == 2
    assert fs.exists("/data/in")
    assert "/data/in" in fs


def test_read_returns_copies(fs):
    fs.write("/x", [("a", 1)])
    records = fs.read("/x")
    records.append(("evil", 2))
    assert fs.read("/x") == [("a", 1)]


def test_overwrite_protection(fs):
    fs.write("/x", [("a", 1)])
    with pytest.raises(FileSystemError, match="already exists"):
        fs.write("/x", [("b", 2)])
    fs.write("/x", [("b", 2)], overwrite=True)
    assert fs.read("/x") == [("b", 2)]


def test_missing_path(fs):
    with pytest.raises(FileSystemError, match="no such path"):
        fs.read("/missing")
    with pytest.raises(FileSystemError, match="no such path"):
        fs.delete("/missing")
    assert not fs.exists("/missing")


def test_path_validation(fs):
    with pytest.raises(FileSystemError):
        fs.write("relative", [])
    with pytest.raises(FileSystemError):
        fs.write("/trailing/", [])
    with pytest.raises(FileSystemError):
        fs.write("", [])


def test_record_validation(fs):
    with pytest.raises(FileSystemError, match="pairs"):
        fs.write("/bad", ["not-a-pair"])


def test_read_many_concatenates(fs):
    fs.write("/a", [("k", 1)])
    fs.write("/b", [("k", 2)])
    assert fs.read_many(["/a", "/b"]) == [("k", 1), ("k", 2)]


def test_delete(fs):
    fs.write("/x", [("a", 1)])
    fs.delete("/x")
    assert not fs.exists("/x")


def test_list_paths_by_prefix(fs):
    fs.write("/job/out1", [])
    fs.write("/job/out2", [])
    fs.write("/other", [])
    assert fs.list_paths("/job") == ["/job/out1", "/job/out2"]
    assert len(fs.list_paths()) == 3
    with pytest.raises(FileSystemError):
        fs.list_paths("job")
