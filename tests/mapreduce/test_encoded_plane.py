"""The encoded shuffle plane's contracts.

The runtime computes ``canonical_bytes(key)`` exactly once per
intermediate record — at map-emit time — and carries the
``(key_bytes, key, value)`` triple through partitioning, the in-memory
shuffle, the external sort-and-spill shuffle, and the reduce-side
sort/group.  These tests pin:

* the **encode-once invariant**, by counting calls through a patched
  codec (with and without a combiner, with and without spilling);
* **equal-key arrival order** through the encoded plane, at every
  spill threshold;
* the **presorted hand-off**: the spill path delivers merge-sorted
  partitions and the reduce task must not destroy that (outputs match
  the in-memory path bit-identically);
* the ``shuffle.encoded_bytes`` counter and ``phase_timings`` meters.
"""

import pytest

from repro.mapreduce import (
    MapReduceJob,
    MapReduceRuntime,
    canonical_bytes,
)
from repro.mapreduce import runtime as runtime_module
from repro.mapreduce import partitioner as partitioner_module


class PlainWordCount(MapReduceJob):
    name = "PlainWordCount"

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def reduce(self, word, counts):
        yield word, sum(counts)


class CombiningWordCount(PlainWordCount):
    name = "CombiningWordCount"
    has_combiner = True

    def combine(self, word, counts):
        yield word, sum(counts)


class ArrivalOrder(MapReduceJob):
    """Reduce output is the exact value arrival sequence per key."""

    def map(self, key, value):
        yield key % 2, (key, value)

    def reduce(self, key, values):
        yield key, list(values)


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog the fox"),
    (2, "jumps over the lazy dog"),
]


class _CountingCodec:
    """A transparent wrapper around canonical_bytes that counts calls."""

    def __init__(self):
        self.calls = 0

    def __call__(self, key):
        self.calls += 1
        return canonical_bytes(key)


@pytest.fixture
def counting_codec(monkeypatch):
    codec = _CountingCodec()
    # The runtime's task units are the only legal encoding site; patch
    # the name they resolve, plus the partitioner module's own global
    # so any regression that re-routes encoding through it is counted
    # too.
    monkeypatch.setattr(runtime_module, "canonical_bytes", codec)
    monkeypatch.setattr(partitioner_module, "canonical_bytes", codec)
    return codec


def _map_emissions(job_factory, records):
    """How many records the raw map phase emits (pre-combine)."""
    emissions = 0
    job = job_factory()
    for key, value in records:
        emissions += len(list(job.map(key, value)))
    return emissions


def test_encode_once_without_combiner(counting_codec):
    runtime = MapReduceRuntime(num_map_tasks=3, num_reduce_tasks=3)
    runtime.run(PlainWordCount(), LINES)
    assert counting_codec.calls == _map_emissions(PlainWordCount, LINES)


def test_encode_once_with_combiner(counting_codec):
    """With a combiner, the combiner's outputs are new intermediate
    records: total encodes == map emissions + combiner emissions."""
    runtime = MapReduceRuntime(num_map_tasks=3, num_reduce_tasks=3)
    runtime.run(CombiningWordCount(), LINES)
    map_emitted = _map_emissions(CombiningWordCount, LINES)
    combined = runtime.counters.get(
        "CombiningWordCount", "map.output.records"
    )
    assert counting_codec.calls == map_emitted + combined


@pytest.mark.parametrize("threshold", [0, 2])
def test_encode_once_with_spilling(counting_codec, tmp_path, threshold):
    """The external shuffle spills, merges, and regroups without a
    single re-encode: run files carry the cached bytes."""
    runtime = MapReduceRuntime(
        num_map_tasks=3,
        num_reduce_tasks=3,
        spill_threshold=threshold,
        spill_dir=str(tmp_path),
    )
    runtime.run(PlainWordCount(), LINES)
    assert runtime.counters.get("runtime", "spilled_records") > 0
    assert counting_codec.calls == _map_emissions(PlainWordCount, LINES)


@pytest.mark.parametrize("threshold", [None, 0, 1, 5])
def test_equal_key_arrival_order_preserved(tmp_path, threshold):
    """Values of equal keys reach reduce in arrival order — i.e. map
    task index order, then emission order — on every shuffle path."""
    records = [(i, f"v{i}") for i in range(40)]
    runtime = MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=3,
        spill_threshold=threshold,
        spill_dir=str(tmp_path),
    )
    output = dict(runtime.run(ArrivalOrder(), records))
    for parity, values in output.items():
        # Arrival order: split k holds keys k, k+4, ...; splits are
        # routed in task order, so per key-parity the (key, value)
        # pairs arrive sorted by (key % 4, key).
        expected = sorted(
            ((k, f"v{k}") for k, _ in records if k % 2 == parity),
            key=lambda kv: (kv[0] % 4, kv[0]),
        )
        assert values == expected


def test_spill_path_bit_identical_to_memory_path(tmp_path):
    """The presorted hand-off (reduce skips its sort after a spill
    merge) changes nothing observable."""
    records = [(i % 7, i) for i in range(60)]
    baseline = MapReduceRuntime(num_map_tasks=3, num_reduce_tasks=4)
    expected = baseline.run(ArrivalOrder(), records)
    for threshold in (0, 3, 1000):
        runtime = MapReduceRuntime(
            num_map_tasks=3,
            num_reduce_tasks=4,
            spill_threshold=threshold,
            spill_dir=str(tmp_path / str(threshold)),
        )
        assert runtime.run(ArrivalOrder(), records) == expected


def test_shuffle_encoded_bytes_metered():
    """shuffle.encoded_bytes = total cached key bytes, unconditionally
    metered (no meter_bytes flag needed) and config-independent."""
    runtime = MapReduceRuntime()
    runtime.run(PlainWordCount(), LINES)
    expected = sum(
        len(canonical_bytes(word))
        for _, line in LINES
        for word in line.split()
    )
    assert (
        runtime.counters.get("PlainWordCount", "shuffle.encoded_bytes")
        == expected
    )
    assert (
        runtime.counters.get("runtime", "shuffle.encoded_bytes")
        == expected
    )


def test_meter_bytes_uses_cached_encoding():
    """--meter-bytes sizes the key side from the cached encoding; the
    counter is at least keys + 1 byte of pickled value per record."""
    runtime = MapReduceRuntime(meter_bytes=True)
    runtime.run(PlainWordCount(), LINES)
    encoded = runtime.counters.get(
        "PlainWordCount", "shuffle.encoded_bytes"
    )
    total = runtime.counters.get("PlainWordCount", "shuffle.bytes")
    shuffled = runtime.counters.get("PlainWordCount", "shuffle.records")
    assert total > encoded  # keys plus pickled values...
    assert total >= encoded + shuffled  # ...at least one byte each


def test_phase_timings_accumulate():
    runtime = MapReduceRuntime()
    assert set(runtime.phase_timings) == {
        "map",
        "shuffle",
        "reduce",
        "spill",
    }
    runtime.run(PlainWordCount(), LINES)
    assert runtime.phase_timings["map"] > 0.0
    assert runtime.phase_timings["shuffle"] > 0.0
    assert runtime.phase_timings["reduce"] > 0.0
    assert runtime.phase_timings["spill"] == 0.0
    after_first = dict(runtime.phase_timings)
    runtime.run(PlainWordCount(), LINES)
    for phase in ("map", "shuffle", "reduce"):
        assert runtime.phase_timings[phase] > after_first[phase]


def test_phase_timings_record_spill_time(tmp_path):
    runtime = MapReduceRuntime(
        spill_threshold=0, spill_dir=str(tmp_path)
    )
    runtime.run(PlainWordCount(), LINES)
    assert runtime.phase_timings["spill"] > 0.0
    # Timing meters never leak into the counter determinism contract.
    snapshot = runtime.counters.snapshot()
    for group in snapshot.values():
        assert not any("seconds" in name for name in group)


class KeyPartitioner:
    """A custom partitioner without a byte-level entry point."""

    def __init__(self):
        self.keys_seen = []

    def __call__(self, key, num_partitions):
        self.keys_seen.append(key)
        return 0


def test_custom_partitioner_receives_decoded_keys():
    """Custom (key, n) partitioners still get the key itself."""
    partitioner = KeyPartitioner()
    runtime = MapReduceRuntime(
        num_reduce_tasks=2, partitioner=partitioner
    )
    output = dict(runtime.run(PlainWordCount(), LINES))
    assert output["the"] == 4
    assert set(partitioner.keys_seen) == {
        word for _, line in LINES for word in line.split()
    }


def test_hashpartitioner_subclass_override_is_honored():
    """Overriding __call__ on a HashPartitioner subclass must not be
    bypassed by the inherited byte-level entry point."""
    from repro.mapreduce import HashPartitioner

    class Sticky(HashPartitioner):
        def __call__(self, key, num_partitions):
            return 0  # everything to partition 0

    runtime = MapReduceRuntime(
        num_reduce_tasks=4, partitioner=Sticky()
    )
    runtime.run(PlainWordCount(), LINES)
    groups = runtime.counters.get("PlainWordCount", "reduce.input.groups")
    baseline = MapReduceRuntime(num_reduce_tasks=4)
    baseline.run(PlainWordCount(), LINES)
    # Same distinct keys either way; the point is the output ORDER —
    # with everything in partition 0, output is globally key-sorted.
    assert groups == baseline.counters.get(
        "PlainWordCount", "reduce.input.groups"
    )
    output = runtime.run(PlainWordCount(), LINES)
    assert output == sorted(output, key=lambda kv: canonical_bytes(kv[0]))


def test_custom_partitioner_defining_partition_bytes_gets_bytes():
    """A partitioner class that defines partition_bytes itself is fed
    the cached canonical encoding."""

    class ByteSticky:
        def __init__(self):
            self.bytes_seen = []

        def __call__(self, key, num_partitions):  # pragma: no cover
            raise AssertionError("byte-level entry point not used")

        def partition_bytes(self, key_bytes, num_partitions):
            self.bytes_seen.append(key_bytes)
            return 0

    partitioner = ByteSticky()
    runtime = MapReduceRuntime(
        num_reduce_tasks=2, partitioner=partitioner
    )
    output = dict(runtime.run(PlainWordCount(), LINES))
    assert output["the"] == 4
    assert all(isinstance(b, bytes) for b in partitioner.bytes_seen)


class OutOfRangePartitioner:
    def __call__(self, key, num_partitions):
        return num_partitions  # off by one


def test_custom_partitioner_out_of_range_rejected():
    from repro.mapreduce import JobValidationError

    runtime = MapReduceRuntime(
        num_reduce_tasks=2, partitioner=OutOfRangePartitioner()
    )
    with pytest.raises(JobValidationError, match="partitioner returned"):
        runtime.run(PlainWordCount(), LINES)
