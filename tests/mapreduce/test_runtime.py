"""Behavioral tests for the simulated MapReduce runtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import (
    Counters,
    JobValidationError,
    MapReduceJob,
    MapReduceRuntime,
)


class WordCount(MapReduceJob):
    """The canonical wordcount job (with combiner)."""

    has_combiner = True

    def map(self, key, line):
        for word in line.split():
            yield word, 1

    def combine(self, word, counts):
        yield word, sum(counts)

    def reduce(self, word, counts):
        yield word, sum(counts)


class Identity(MapReduceJob):
    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        for value in values:
            yield key, value


class GroupSizes(MapReduceJob):
    """Reports how many values each key group received."""

    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        yield key, len(values)


class UsesSide(MapReduceJob):
    """Adds a side-data offset to every value (module-level: picklable)."""

    def map(self, key, value):
        yield key, self.side_data["offset"] + value

    def reduce(self, key, values):
        yield key, sum(values)


class BadEmit(MapReduceJob):
    """Emits a bare key instead of a pair (rejected by the runtime)."""

    def map(self, key, value):
        yield "just-a-key"

    def reduce(self, key, values):
        return []


class BadNone(MapReduceJob):
    """Returns None from map (rejected by the runtime)."""

    def map(self, key, value):
        return None

    def reduce(self, key, values):
        return []


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the fox jumps over the dog"),
]


def test_wordcount_basics(runtime):
    output = dict(runtime.run(WordCount(), LINES))
    assert output["the"] == 4
    assert output["fox"] == 2
    assert output["jumps"] == 1


@pytest.mark.parametrize("maps", [1, 2, 3, 7])
@pytest.mark.parametrize("reduces", [1, 2, 5])
def test_result_independent_of_task_counts(maps, reduces):
    runtime = MapReduceRuntime(num_map_tasks=maps, num_reduce_tasks=reduces)
    output = sorted(runtime.run(WordCount(), LINES))
    baseline = sorted(
        MapReduceRuntime(num_map_tasks=1, num_reduce_tasks=1).run(
            WordCount(), LINES
        )
    )
    assert output == baseline


@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9), st.text(max_size=20)
        ),
        max_size=30,
    ),
    maps=st.integers(min_value=1, max_value=5),
    reduces=st.integers(min_value=1, max_value=5),
)
def test_wordcount_partition_independence_property(records, maps, reduces):
    runtime = MapReduceRuntime(num_map_tasks=maps, num_reduce_tasks=reduces)
    single = MapReduceRuntime(num_map_tasks=1, num_reduce_tasks=1)
    assert sorted(runtime.run(WordCount(), records)) == sorted(
        single.run(WordCount(), records)
    )


def test_each_key_reduced_exactly_once(runtime):
    records = [("a", 1), ("a", 2), ("b", 3), ("a", 4)]
    output = dict(runtime.run(GroupSizes(), records))
    assert output == {"a": 3, "b": 1}


def test_reduce_groups_never_split_across_partitions():
    # Even with many reducers, one key's values arrive in one group.
    runtime = MapReduceRuntime(num_map_tasks=3, num_reduce_tasks=11)
    records = [("hot", i) for i in range(50)]
    output = runtime.run(GroupSizes(), records)
    assert output == [("hot", 50)]


def test_counters_meter_records(runtime):
    runtime.run(WordCount(), LINES)
    group = runtime.counters.group("WordCount")
    assert group["map.input.records"] == 3
    # combiner compresses per-split duplicates, so output <= 13 tokens
    assert 0 < group["map.output.records"] <= 13
    assert group["shuffle.records"] == group["map.output.records"]
    assert group["reduce.input.groups"] == 8  # distinct words
    assert runtime.counters.get("runtime", "jobs") == 1


def test_jobs_executed_and_log(runtime):
    runtime.run(Identity(), [("k", "v")])
    runtime.run(WordCount(), LINES)
    assert runtime.jobs_executed == 2
    assert runtime.job_log == ["Identity", "WordCount"]


def test_meter_bytes_optional():
    runtime = MapReduceRuntime(meter_bytes=True)
    runtime.run(Identity(), [("k", "v")])
    assert runtime.counters.get("Identity", "shuffle.bytes") > 0


def test_side_data_reaches_job(runtime):
    output = runtime.run(
        UsesSide(), [("k", 1)], side_data={"offset": 10}
    )
    assert output == [("k", 11)]


def test_side_data_cleared_between_runs(runtime):
    job = Identity()
    runtime.run(job, [("k", 1)], side_data={"x": 1})
    runtime.run(job, [("k", 1)])
    assert job.side_data == {}


def test_invalid_input_record_rejected(runtime):
    with pytest.raises(JobValidationError):
        runtime.run(Identity(), ["not-a-pair"])


def test_map_emitting_non_pair_rejected(runtime):
    with pytest.raises(JobValidationError):
        runtime.run(BadEmit(), [("k", "v")])


def test_map_returning_none_rejected(runtime):
    with pytest.raises(JobValidationError):
        runtime.run(BadNone(), [("k", "v")])


def test_bad_task_counts_rejected():
    with pytest.raises(JobValidationError):
        MapReduceRuntime(num_map_tasks=0)
    with pytest.raises(JobValidationError):
        MapReduceRuntime(num_reduce_tasks=0)


def test_empty_input_produces_empty_output(runtime):
    assert runtime.run(WordCount(), []) == []


def test_tuple_keys_group_correctly(runtime):
    records = [(("a", 1), "x"), (("a", 1), "y"), (("a", 2), "z")]
    output = dict(runtime.run(GroupSizes(), records))
    assert output == {("a", 1): 2, ("a", 2): 1}


def test_shared_counters_accumulate_across_jobs():
    counters = Counters()
    r1 = MapReduceRuntime(counters=counters)
    r2 = MapReduceRuntime(counters=counters)
    r1.run(Identity(), [("k", 1)])
    r2.run(Identity(), [("k", 2)])
    assert counters.get("runtime", "jobs") == 2


def test_combiner_preserves_result_but_shrinks_shuffle():
    records = [(0, "a a a a a a a a b")]
    with_combiner = MapReduceRuntime(num_map_tasks=1)
    out1 = sorted(with_combiner.run(WordCount(), records))

    class NoCombine(WordCount):
        has_combiner = False

    without = MapReduceRuntime(num_map_tasks=1)
    out2 = sorted(without.run(NoCombine(), records))
    assert out1 == out2
    assert with_combiner.counters.get(
        "WordCount", "shuffle.records"
    ) < without.counters.get("NoCombine", "shuffle.records")
