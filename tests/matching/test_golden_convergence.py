"""Golden Figure-5 convergence curves for GreedyMR and StackMR.

``golden_convergence.json`` pins the full ``value_history`` sequence
(plus rounds, layers, and the certified dual bound) of the two
MapReduce matching algorithms on seeded flickr-small and zipf
workloads, mirroring ``tests/mapreduce/golden_hashes.json``: the
matrix tests prove the planes agree with *each other*, the golden file
proves they agree with *yesterday* — a refactor that silently changes
round dynamics (an extra round, a different tie-break, a reordered
float sum) fails here even if it stays self-consistent.

Both iteration planes are checked against the same pinned curves, so
the file doubles as a cross-machine bit-identity witness for the delta
plane.

Regenerate (only for a deliberate, CHANGES.md-worthy semantic change)::

    PYTHONPATH=src python tests/matching/test_golden_convergence.py
"""

import json
import os
import random

import pytest

from repro.graph import random_bipartite
from repro.matching import greedy_mr_b_matching, stack_mr_b_matching

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden_convergence.json"
)


def _flickr_graph():
    """A small but non-trivial Problem-1 instance (§6 generative model)."""
    from repro.datasets import load_dataset

    dataset = load_dataset("flickr-small", seed=1, scale=0.05)
    return dataset.graph(sigma=2.0, alpha=2.0)


def _zipf_graph():
    """A power-law-weighted bipartite instance (Figure 6's heavy tail)."""
    from repro.datasets.zipf import discrete_power_law

    rng = random.Random(20110829)  # the paper's VLDB year, why not

    def zipf_weight(r: random.Random) -> float:
        return float(discrete_power_law(r, 1.8, minimum=1, maximum=60))

    return random_bipartite(
        num_items=40,
        num_consumers=25,
        edge_probability=0.18,
        rng=rng,
        weight_sampler=zipf_weight,
        max_capacity=4,
    )


WORKLOADS = {
    "flickr-small": _flickr_graph,
    "zipf": _zipf_graph,
}


def _measurements(graph):
    rows = {}
    for delta in (False, True):
        greedy = greedy_mr_b_matching(graph, delta=delta)
        stack = stack_mr_b_matching(graph, seed=7, delta=delta)
        row = {
            "greedy_value_history": greedy.value_history,
            "greedy_rounds": greedy.rounds,
            "greedy_mr_jobs": greedy.mr_jobs,
            "stack_value_history": stack.value_history,
            "stack_rounds": stack.rounds,
            "stack_layers": stack.layers,
            "stack_mr_jobs": stack.mr_jobs,
            "stack_dual_upper_bound": stack.dual_upper_bound,
        }
        rows[f"delta={delta}"] = row
    # The planes must agree before anything is pinned or compared.
    assert rows["delta=False"] == rows["delta=True"]
    return rows["delta=False"]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_convergence_curves_pinned(workload):
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    expected = golden[workload]
    measured = _measurements(WORKLOADS[workload]())
    # Compare curve prefixes first for a readable failure, then all.
    assert measured["greedy_rounds"] == expected["greedy_rounds"]
    assert measured["stack_rounds"] == expected["stack_rounds"]
    assert (
        measured["greedy_value_history"]
        == expected["greedy_value_history"]
    )
    assert measured == expected


def test_golden_curves_are_nontrivial():
    """The pinned workloads must actually exercise convergence."""
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    for workload, row in golden.items():
        assert row["greedy_rounds"] >= 4, workload
        assert len(row["greedy_value_history"]) == row["greedy_rounds"]
        history = row["greedy_value_history"]
        assert all(b >= a for a, b in zip(history, history[1:]))
        assert row["stack_layers"] >= 1


def _regenerate() -> None:
    golden = {
        name: _measurements(builder())
        for name, builder in sorted(WORKLOADS.items())
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"-> {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
