"""Tests for GreedyMR (Algorithm 3) — the MapReduce greedy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import Graph, ascending_path, check_matching, star_graph
from repro.mapreduce import MapReduceRuntime
from repro.mapreduce.errors import RoundLimitExceeded
from repro.matching import greedy_b_matching, greedy_mr_b_matching
from repro.matching.greedy_mr import default_max_rounds

from ..strategies import small_bipartite_graphs, small_general_graphs


def test_simulates_sequential_greedy_on_star():
    g = star_graph(6, center_capacity=2)
    sequential = greedy_b_matching(g)
    parallel = greedy_mr_b_matching(g)
    assert set(parallel.matching) == set(sequential.matching)
    assert parallel.value == pytest.approx(sequential.value)


@given(graph=small_bipartite_graphs())
def test_equals_sequential_greedy_bipartite(graph):
    """The key §5.4 property: local-dominance rounds = sequential greedy."""
    sequential = greedy_b_matching(graph)
    parallel = greedy_mr_b_matching(graph)
    assert set(parallel.matching) == set(sequential.matching)


@given(graph=small_general_graphs())
def test_equals_sequential_greedy_general(graph):
    sequential = greedy_b_matching(graph)
    parallel = greedy_mr_b_matching(graph)
    assert set(parallel.matching) == set(sequential.matching)


@given(
    graph=small_general_graphs(),
    maps=st.integers(min_value=1, max_value=3),
    reduces=st.integers(min_value=1, max_value=3),
)
def test_independent_of_task_layout(graph, maps, reduces):
    runtime = MapReduceRuntime(
        num_map_tasks=maps, num_reduce_tasks=reduces
    )
    result = greedy_mr_b_matching(graph, runtime=runtime)
    baseline = greedy_mr_b_matching(graph)
    assert set(result.matching) == set(baseline.matching)


def test_ascending_path_takes_linear_rounds():
    """The §5.4 worst case: cascading updates, Θ(n) iterations."""
    n = 24
    g = ascending_path(n)
    result = greedy_mr_b_matching(g)
    # Each round matches exactly the currently heaviest (rightmost)
    # remaining edge, so rounds grow linearly with the path length.
    assert result.rounds >= n // 2 - 2
    # and the result still equals sequential greedy
    assert result.value == pytest.approx(greedy_b_matching(g).value)


def test_alternating_path_is_fast():
    # Alternating heavy/light weights make every heavy edge locally
    # dominant at once: a handful of rounds regardless of length.
    g = Graph()
    n = 24
    for i in range(n):
        g.add_node(f"u{i:03d}", 1)
    for i in range(n - 1):
        weight = 10.0 + i * 0.01 if i % 2 == 0 else 1.0
        g.add_edge(f"u{i:03d}", f"u{i + 1:03d}", weight)
    result = greedy_mr_b_matching(g)
    assert result.rounds <= 4
    assert result.value == pytest.approx(greedy_b_matching(g).value)


def test_value_history_is_anytime():
    g = ascending_path(16)
    result = greedy_mr_b_matching(g)
    history = result.value_history
    assert len(history) == result.rounds
    assert all(b >= a for a, b in zip(history, history[1:]))
    assert history[-1] == pytest.approx(result.value)


def test_one_job_per_round(runtime):
    g = star_graph(5, center_capacity=1)
    result = greedy_mr_b_matching(g, runtime=runtime)
    assert result.mr_jobs == result.rounds
    assert runtime.jobs_executed == result.rounds


def test_zero_capacity_nodes_excluded():
    g = Graph()
    g.add_node("a", 0)
    g.add_node("b", 2)
    g.add_node("c", 1)
    g.add_edge("a", "b", 10.0)  # unusable: a has no budget
    g.add_edge("b", "c", 1.0)
    result = greedy_mr_b_matching(g)
    assert set(result.matching) == {("b", "c")}


def test_empty_graph_zero_rounds():
    result = greedy_mr_b_matching(Graph())
    assert result.rounds == 0
    assert result.value == 0.0


def test_round_limit_enforced():
    g = ascending_path(30)
    with pytest.raises(RoundLimitExceeded):
        greedy_mr_b_matching(g, max_rounds=2)


def test_default_round_cap_is_linear_not_quadratic():
    """Regression: the default cap follows the progress guarantee.

    Every round with live edges matches at least one edge (no round's
    delta stream is empty before convergence), so rounds never exceed
    |E| and the default cap is ``|E| + 1`` — the old ``2·|E| + 4``
    made ``RoundLimitExceeded`` unreachable-or-quadratic on adversarial
    inputs.
    """
    g = ascending_path(30)
    assert default_max_rounds(g) == g.num_edges + 1
    assert default_max_rounds(Graph()) == 1


@pytest.mark.parametrize("delta", [False, True])
def test_ascending_path_converges_within_default_cap(delta):
    """The adversarial worst case fits the derived cap with room: the
    cascade is one match per round, which is exactly what the progress
    guarantee promises."""
    g = ascending_path(40)
    result = greedy_mr_b_matching(g, delta=delta)
    assert result.rounds <= default_max_rounds(g)
    assert result.value == pytest.approx(greedy_b_matching(g).value)
    # A cap below the true round count still trips the guard.
    with pytest.raises(RoundLimitExceeded):
        greedy_mr_b_matching(g, max_rounds=result.rounds - 1, delta=delta)


@given(graph=small_general_graphs())
def test_feasibility_after_every_round(graph):
    """The any-time property: the partial matching is always feasible.

    Since capacities only shrink and matched edges are never retracted,
    checking the final matching plus the monotone history suffices.
    """
    result = greedy_mr_b_matching(graph)
    report = check_matching(graph.capacities(), iter(result.matching))
    assert report.feasible
    history = result.value_history
    assert all(b >= a - 1e-12 for a, b in zip(history, history[1:]))
