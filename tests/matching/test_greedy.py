"""Tests for the sequential greedy ½-approximation (Theorem 2)."""

import pytest
from hypothesis import given

from repro.graph import (
    check_matching,
    greedy_tightness_triangle,
    star_graph,
)
from repro.matching import bruteforce_b_matching, greedy_b_matching

from ..strategies import small_bipartite_graphs, small_general_graphs


def test_greedy_on_star_picks_heaviest():
    g = star_graph(5, center_capacity=2)
    result = greedy_b_matching(g)
    assert result.value == pytest.approx(9.0)  # spokes 5 + 4
    assert result.rounds == 1


def test_greedy_feasible_on_star():
    g = star_graph(8, center_capacity=3)
    result = greedy_b_matching(g)
    report = check_matching(g.capacities(), iter(result.matching))
    assert report.feasible


def test_tightness_triangle_from_appendix_a():
    """The Appendix A instance: greedy = 1+ε, optimum = 2."""
    epsilon = 0.1
    g = greedy_tightness_triangle(epsilon)
    greedy = greedy_b_matching(g)
    optimum = bruteforce_b_matching(g)
    assert greedy.value == pytest.approx(1.0 + epsilon)
    assert optimum.value == pytest.approx(2.0)
    ratio = greedy.value / optimum.value
    assert ratio == pytest.approx((1 + epsilon) / 2)
    assert ratio >= 0.5  # never below the guarantee


def test_empty_graph():
    from repro.graph import Graph

    result = greedy_b_matching(Graph())
    assert result.value == 0.0
    assert len(result.matching) == 0


@given(graph=small_bipartite_graphs())
def test_greedy_feasible_and_half_approx_bipartite(graph):
    result = greedy_b_matching(graph)
    report = check_matching(graph.capacities(), iter(result.matching))
    assert report.feasible
    optimum = bruteforce_b_matching(graph)
    assert result.value >= 0.5 * optimum.value - 1e-9


@given(graph=small_general_graphs())
def test_greedy_feasible_and_half_approx_general(graph):
    result = greedy_b_matching(graph)
    report = check_matching(graph.capacities(), iter(result.matching))
    assert report.feasible
    optimum = bruteforce_b_matching(graph)
    assert result.value >= 0.5 * optimum.value - 1e-9


@given(graph=small_general_graphs())
def test_greedy_matching_is_maximal(graph):
    """Greedy can never leave an addable edge behind."""
    result = greedy_b_matching(graph)
    residual = graph.capacities()
    for u, v in result.matching:
        residual[u] -= 1
        residual[v] -= 1
    for edge in graph.edges():
        if edge.key in result.matching:
            continue
        assert residual[edge.u] == 0 or residual[edge.v] == 0
