"""Tests for the b-Suitor engine (must equal sequential greedy)."""

import pytest
from hypothesis import given

from repro.graph import (
    ascending_path,
    check_matching,
    greedy_tightness_triangle,
    star_graph,
)
from repro.matching import (
    bruteforce_b_matching,
    greedy_b_matching,
    suitor_b_matching,
)

from ..strategies import (
    degenerate_bipartite_graphs,
    degenerate_matching_graphs,
    small_bipartite_graphs,
    small_general_graphs,
)


def test_star_matches_greedy():
    g = star_graph(6, center_capacity=2)
    assert suitor_b_matching(g).value == pytest.approx(
        greedy_b_matching(g).value
    )


def test_triangle_tightness_instance():
    g = greedy_tightness_triangle(0.1)
    suitor = suitor_b_matching(g)
    assert suitor.value == pytest.approx(1.1)
    assert set(suitor.matching) == set(greedy_b_matching(g).matching)


def test_ascending_path():
    g = ascending_path(15)
    assert set(suitor_b_matching(g).matching) == set(
        greedy_b_matching(g).matching
    )


@given(graph=small_bipartite_graphs())
def test_equals_greedy_bipartite(graph):
    """The b-Suitor theorem: same matching as sequential greedy."""
    suitor = suitor_b_matching(graph)
    greedy = greedy_b_matching(graph)
    assert set(suitor.matching) == set(greedy.matching)
    assert suitor.value == pytest.approx(greedy.value)


@given(graph=small_general_graphs())
def test_equals_greedy_general(graph):
    suitor = suitor_b_matching(graph)
    greedy = greedy_b_matching(graph)
    assert set(suitor.matching) == set(greedy.matching)


@given(graph=small_general_graphs())
def test_feasible_and_half_approx(graph):
    result = suitor_b_matching(graph)
    assert check_matching(
        graph.capacities(), iter(result.matching)
    ).feasible
    optimum = bruteforce_b_matching(graph)
    assert result.value >= 0.5 * optimum.value - 1e-9


def test_zero_capacity_nodes_skipped():
    from repro.graph import Graph

    g = Graph()
    g.add_node("a", 0)
    g.add_node("b", 1)
    g.add_node("c", 1)
    g.add_edge("a", "b", 100.0)
    g.add_edge("b", "c", 1.0)
    assert set(suitor_b_matching(g).matching) == {("b", "c")}


def test_empty_graph():
    from repro.graph import Graph

    result = suitor_b_matching(Graph())
    assert result.value == 0.0


def test_registered_in_solver_registry():
    from repro.matching import solve

    g = star_graph(4, center_capacity=2)
    assert solve(g, "suitor").value == pytest.approx(7.0)


def test_proposal_attempts_bounded_by_edges():
    g = star_graph(30, center_capacity=5)
    result = suitor_b_matching(g)
    # every attempt consumes a preference-list cursor position; with
    # displacements the total is still O(|E|)
    assert result.rounds <= 2 * g.num_edges + g.num_nodes


# -- degenerate-graph equivalence (shared hypothesis strategies) ------------
# The b-Suitor == greedy theorem holds with no happy-path assumptions:
# empty graphs, edgeless graphs, b = 0 nodes, isolated nodes, and
# heavily duplicated weights (where only the strict total edge order
# keeps the outcome well-defined) must all agree exactly.


@given(graph=degenerate_matching_graphs())
def test_equals_greedy_on_degenerate_general_graphs(graph):
    suitor = suitor_b_matching(graph)
    greedy = greedy_b_matching(graph)
    assert set(suitor.matching) == set(greedy.matching)
    assert suitor.value == pytest.approx(greedy.value)
    assert check_matching(
        graph.capacities(), iter(suitor.matching)
    ).feasible


@given(graph=degenerate_bipartite_graphs())
def test_equals_greedy_on_degenerate_bipartite_graphs(graph):
    suitor = suitor_b_matching(graph)
    greedy = greedy_b_matching(graph)
    assert set(suitor.matching) == set(greedy.matching)
    assert suitor.value == pytest.approx(greedy.value)
