"""Cross-backend matching test matrix (executors × filesystems × delta).

``tests/mapreduce`` pins the runtime's equivalence contract on generic
jobs; this module pins it *end to end* through the matching layer: for
every cell of the matrix —

* execution backend (``runtime`` fixture, via ``REPRO_TEST_BACKENDS``),
* storage backend / spill threshold (``REPRO_TEST_FS`` /
  ``REPRO_TEST_SPILL_THRESHOLD``),
* iteration plane (``delta`` fixture: full-state vs resident-state),

GreedyMR and StackMR must produce bit-identical matchings,
``value_history``, round counts, and job counts; and counter totals
minus the spill counters (shuffle spill + state-store parking, the
only threshold-dependent meters) must be bit-identical across cells
sharing a delta mode.  The reference cell is always a fresh
serial/in-memory, no-spill runtime on the full-state plane.

The degenerate property tests at the bottom are the satellite of the
shared hypothesis strategies: ``greedy_mr == greedy`` and the StackMR
(1+ε)-violation bound hold on empty graphs, ``b = 0`` nodes, and
duplicate-weight ties.
"""

import math
import os
import tempfile
from contextlib import contextmanager

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import check_matching
from repro.mapreduce import Counters, LocalDiskFileSystem, MapReduceRuntime
from repro.mapreduce.state import strip_volatile_counters
from repro.matching import (
    greedy_b_matching,
    greedy_mr_b_matching,
    stack_mr_b_matching,
)

from ..conftest import BACKENDS, SPILL_THRESHOLD, STORAGE
from ..strategies import (
    degenerate_bipartite_graphs,
    degenerate_matching_graphs,
    small_general_graphs,
)

#: One marker per configured execution backend; combined with the env
#: storage knobs and the delta axis this spans the full matrix.
#: (Markers rather than fixtures inside ``@given`` tests: hypothesis
#: forbids function-scoped fixtures there, and parametrized arguments
#: are regenerated per test id anyway.)
backend_matrix = pytest.mark.parametrize("backend", BACKENDS)
delta_matrix = pytest.mark.parametrize(
    "delta", [False, True], ids=["full-state", "delta"]
)


def _reference_runtime() -> MapReduceRuntime:
    """The fixed comparison cell: serial, in-memory, never spilling."""
    return MapReduceRuntime(
        num_map_tasks=4, num_reduce_tasks=4, counters=Counters()
    )


@contextmanager
def _cell_runtime(backend: str):
    """A fresh runtime for one matrix cell (fresh counters per example).

    Mirrors the top-level ``runtime`` fixture's configuration but is a
    context manager, so hypothesis examples each get pristine counters
    and the disk-backed cells clean their temporary roots up.
    """
    with tempfile.TemporaryDirectory(prefix="repro-matrix-") as tmp:
        if STORAGE == "memory":
            storage = None
        else:
            storage = LocalDiskFileSystem(root=os.path.join(tmp, "dfs"))
        yield MapReduceRuntime(
            num_map_tasks=4,
            num_reduce_tasks=4,
            counters=Counters(),
            backend=backend,
            storage=storage,
            spill_threshold=SPILL_THRESHOLD,
            spill_dir=os.path.join(tmp, "spills"),
        )


def _result_fingerprint(result):
    return (
        sorted(result.matching.edges()),
        result.value_history,
        result.rounds,
        result.mr_jobs,
    )


@backend_matrix
@delta_matrix
@given(graph=small_general_graphs())
def test_greedy_mr_matrix_cell_matches_reference(graph, backend, delta):
    """Matchings/history/rounds/jobs identical across every cell."""
    with _cell_runtime(backend) as runtime:
        cell = greedy_mr_b_matching(graph, runtime=runtime, delta=delta)
    reference = greedy_mr_b_matching(
        graph, runtime=_reference_runtime(), delta=False
    )
    assert _result_fingerprint(cell) == _result_fingerprint(reference)


@backend_matrix
@delta_matrix
@given(
    graph=small_general_graphs(),
    seed=st.integers(min_value=0, max_value=2),
)
def test_stack_mr_matrix_cell_matches_reference(graph, seed, backend, delta):
    with _cell_runtime(backend) as runtime:
        cell = stack_mr_b_matching(
            graph, seed=seed, runtime=runtime, delta=delta
        )
    reference = stack_mr_b_matching(
        graph, seed=seed, runtime=_reference_runtime(), delta=False
    )
    assert _result_fingerprint(cell) == _result_fingerprint(reference)
    assert cell.duals == reference.duals
    assert cell.dual_upper_bound == reference.dual_upper_bound
    assert cell.layers == reference.layers


@backend_matrix
@delta_matrix
@given(graph=small_general_graphs())
def test_greedy_mr_counters_identical_within_delta_mode(
    graph, backend, delta
):
    """Counters minus spill are a pure function of (input, delta mode).

    The cell's runtime may spill its shuffle or park its state store
    (threshold-dependent); everything else it meters must equal a
    serial in-memory run of the same plane exactly.
    """
    reference_runtime = _reference_runtime()
    with _cell_runtime(backend) as runtime:
        greedy_mr_b_matching(graph, runtime=runtime, delta=delta)
        greedy_mr_b_matching(
            graph, runtime=reference_runtime, delta=delta
        )
        assert strip_volatile_counters(
            runtime.counters.snapshot()
        ) == strip_volatile_counters(
            reference_runtime.counters.snapshot()
        )
        assert runtime.job_log == reference_runtime.job_log


@backend_matrix
@delta_matrix
@given(
    graph=small_general_graphs(),
    seed=st.integers(min_value=0, max_value=1),
)
def test_stack_mr_counters_identical_within_delta_mode(
    graph, seed, backend, delta
):
    reference_runtime = _reference_runtime()
    with _cell_runtime(backend) as runtime:
        stack_mr_b_matching(
            graph, seed=seed, runtime=runtime, delta=delta
        )
        stack_mr_b_matching(
            graph, seed=seed, runtime=reference_runtime, delta=delta
        )
        assert strip_volatile_counters(
            runtime.counters.snapshot()
        ) == strip_volatile_counters(
            reference_runtime.counters.snapshot()
        )
        assert runtime.job_log == reference_runtime.job_log


def test_delta_plane_meters_iteration_savings(runtime):
    """The delta path reports resident/delta/quiescent records."""
    from repro.graph import ascending_path

    greedy_mr_b_matching(ascending_path(20), runtime=runtime, delta=True)
    resident = runtime.counters.get(
        "runtime", "iteration.resident_records"
    )
    deltas = runtime.counters.get("runtime", "iteration.delta_records")
    quiescent = runtime.counters.get(
        "runtime", "iteration.quiescent_records"
    )
    assert resident > 0 and deltas > 0
    assert resident == deltas + quiescent
    # The ascending path is the frontier showcase: most of the graph
    # is quiescent in most rounds.
    assert quiescent > resident // 2


def test_delta_plane_shuffles_fewer_records(runtime):
    """The point of the plane: strictly less shuffle, same answer."""
    from repro.graph import ascending_path

    graph = ascending_path(24)
    full_runtime = _reference_runtime()
    full = greedy_mr_b_matching(graph, runtime=full_runtime, delta=False)
    lean = greedy_mr_b_matching(graph, runtime=runtime, delta=True)
    assert set(full.matching) == set(lean.matching)
    assert runtime.counters.get(
        "runtime", "shuffle.records"
    ) < full_runtime.counters.get("runtime", "shuffle.records")
    assert runtime.counters.get(
        "runtime", "shuffle.encoded_bytes"
    ) < full_runtime.counters.get("runtime", "shuffle.encoded_bytes")


# -- degenerate-case property tests (shared strategies satellite) -----------


@delta_matrix
@given(
    graph=st.one_of(
        degenerate_matching_graphs(), degenerate_bipartite_graphs()
    )
)
def test_greedy_mr_equals_greedy_on_degenerate_graphs(graph, delta):
    parallel = greedy_mr_b_matching(graph, delta=delta)
    sequential = greedy_b_matching(graph)
    assert set(parallel.matching) == set(sequential.matching)
    assert parallel.value == pytest.approx(sequential.value)


@delta_matrix
@given(
    graph=degenerate_matching_graphs(),
    epsilon=st.sampled_from([0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=1),
)
def test_stack_mr_violation_bound_on_degenerate_graphs(
    graph, epsilon, seed, delta
):
    """Theorem 1's (1+ε) guarantee survives b=0 nodes and weight ties."""
    result = stack_mr_b_matching(
        graph, epsilon=epsilon, seed=seed, delta=delta
    )
    capacities = graph.capacities()
    for node in capacities:
        degree = result.matching.degree(node)
        if degree == 0:
            continue
        layer = max(1, math.ceil(epsilon * capacities[node]))
        assert degree <= capacities[node] + layer
        # Zero-capacity nodes must never be matched at all.
        assert capacities[node] > 0
    report = check_matching(capacities, iter(result.matching))
    assert report.num_nodes == len(capacities)
