"""Tests for the centralized Garrido et al. maximal b-matching."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import check_matching, random_graph
from repro.matching import (
    MARKING_STRATEGIES,
    is_maximal,
    maximal_b_matching,
    maximal_b_matching_adjacency,
)
from repro.matching.maximal import choose_edges

from ..strategies import small_bipartite_graphs, small_general_graphs


@given(
    graph=small_general_graphs(),
    strategy=st.sampled_from(MARKING_STRATEGIES),
    seed=st.integers(min_value=0, max_value=5),
)
def test_output_is_feasible_and_maximal(graph, strategy, seed):
    matched = maximal_b_matching(
        graph, rng=random.Random(seed), strategy=strategy
    )
    capacities = graph.capacities()
    report = check_matching(capacities, matched.keys())
    assert report.feasible
    assert is_maximal(graph.adjacency_copy(), capacities, matched.keys())


@given(graph=small_bipartite_graphs())
def test_bipartite_instances_work_too(graph):
    matched = maximal_b_matching(graph, rng=random.Random(1))
    assert is_maximal(
        graph.adjacency_copy(), graph.capacities(), matched.keys()
    )


def test_capacity_override_restricts_matching():
    g = random_graph(10, 0.5, rng=random.Random(4), max_capacity=4)
    tight = {node: 1 for node in g.nodes()}
    matched = maximal_b_matching(
        g, rng=random.Random(0), capacities=tight
    )
    degrees = {}
    for u, v in matched:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    assert all(d <= 1 for d in degrees.values())
    assert is_maximal(g.adjacency_copy(), tight, matched.keys())


def test_deterministic_for_fixed_seed():
    g = random_graph(12, 0.4, rng=random.Random(9))
    a = maximal_b_matching(g, rng=random.Random(5))
    b = maximal_b_matching(g, rng=random.Random(5))
    assert a == b


def test_zero_capacity_nodes_never_matched():
    adjacency = {
        "a": {"b": 1.0},
        "b": {"a": 1.0, "c": 2.0},
        "c": {"b": 2.0},
    }
    matched = maximal_b_matching_adjacency(
        adjacency, {"a": 0, "b": 1, "c": 1}, rng=random.Random(0)
    )
    assert ("a", "b") not in matched
    assert matched == {("b", "c"): 2.0}


def test_empty_graph():
    assert maximal_b_matching_adjacency({}, {}) == {}


def test_inputs_not_mutated():
    adjacency = {"a": {"b": 1.0}, "b": {"a": 1.0}}
    capacities = {"a": 1, "b": 1}
    maximal_b_matching_adjacency(
        adjacency, capacities, rng=random.Random(0)
    )
    assert adjacency == {"a": {"b": 1.0}, "b": {"a": 1.0}}
    assert capacities == {"a": 1, "b": 1}


# ---- choose_edges (the marking-strategy engine) -------------------------


CANDIDATES = [("n1", 5.0), ("n2", 1.0), ("n3", 3.0), ("n4", 3.0)]


def test_choose_greedy_picks_heaviest_with_ties_by_name():
    chosen = choose_edges(CANDIDATES, 2, random.Random(0), "greedy")
    assert chosen == ["n1", "n3"]


def test_choose_all_when_quota_large():
    for strategy in MARKING_STRATEGIES:
        chosen = choose_edges(CANDIDATES, 10, random.Random(0), strategy)
        assert sorted(chosen) == ["n1", "n2", "n3", "n4"]


def test_choose_uniform_subset():
    chosen = choose_edges(CANDIDATES, 2, random.Random(3), "uniform")
    assert len(chosen) == 2
    assert set(chosen) <= {"n1", "n2", "n3", "n4"}


def test_choose_weighted_prefers_heavy():
    heavy_hits = 0
    for seed in range(200):
        chosen = choose_edges(
            [("heavy", 100.0), ("light", 1.0)],
            1,
            random.Random(seed),
            "weighted",
        )
        heavy_hits += chosen == ["heavy"]
    assert heavy_hits > 150  # ~99% expected


def test_choose_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        choose_edges(CANDIDATES, 1, random.Random(0), "psychic")


@given(
    count=st.integers(min_value=0, max_value=6),
    strategy=st.sampled_from(MARKING_STRATEGIES),
    seed=st.integers(min_value=0, max_value=20),
)
def test_choose_edges_properties(count, strategy, seed):
    chosen = choose_edges(CANDIDATES, count, random.Random(seed), strategy)
    assert len(chosen) == min(count, len(CANDIDATES))
    assert len(set(chosen)) == len(chosen)  # no duplicates
