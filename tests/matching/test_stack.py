"""Tests for the centralized stack algorithm (Algorithms 1 and 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import check_matching, star_graph
from repro.matching import (
    bruteforce_b_matching,
    layer_capacities,
    stack_b_matching,
)
from repro.matching.stack import COVERAGE_TOLERANCE

from ..strategies import small_bipartite_graphs, small_general_graphs

EPSILONS = [0.25, 0.5, 1.0, 2.0]


def test_layer_capacities_formula():
    caps = {"a": 1, "b": 4, "c": 10, "dead": 0}
    assert layer_capacities(caps, 0.5) == {
        "a": 1,
        "b": 2,
        "c": 5,
        "dead": 0,
    }
    assert layer_capacities(caps, 1.0) == {
        "a": 1,
        "b": 4,
        "c": 10,
        "dead": 0,
    }
    # tiny epsilon: every capacitated node still gets a layer slot
    assert layer_capacities(caps, 0.01)["c"] == 1
    with pytest.raises(ValueError):
        layer_capacities(caps, 0.0)


@given(
    graph=small_general_graphs(),
    epsilon=st.sampled_from(EPSILONS),
    seed=st.integers(min_value=0, max_value=3),
)
def test_violations_within_one_epsilon_layer(graph, epsilon, seed):
    """Theorem 1: capacities exceeded by at most a (1+ε) layer."""
    result = stack_b_matching(graph, epsilon=epsilon, seed=seed)
    capacities = graph.capacities()
    for node, overflow in result.violations(
        capacities
    ).violated_nodes.items():
        layer = max(1, math.ceil(epsilon * capacities[node]))
        assert overflow <= layer - 1 + layer  # strictly below one extra layer
        assert result.matching.degree(node) <= capacities[node] + layer


@given(
    graph=small_general_graphs(),
    epsilon=st.sampled_from(EPSILONS),
    seed=st.integers(min_value=0, max_value=3),
)
def test_feasible_variant_never_violates(graph, epsilon, seed):
    """Algorithm 1 satisfies every capacity constraint exactly."""
    result = stack_b_matching(
        graph, epsilon=epsilon, seed=seed, feasible=True
    )
    report = check_matching(graph.capacities(), iter(result.matching))
    assert report.feasible


@given(
    graph=small_general_graphs(),
    epsilon=st.sampled_from([0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2),
)
def test_duals_weakly_cover_every_edge(graph, epsilon, seed):
    """After the push phase every edge satisfies Definition 1."""
    result = stack_b_matching(graph, epsilon=epsilon, seed=seed)
    duals = result.duals
    capacities = graph.capacities()
    factor = 1.0 / (3.0 + 2.0 * epsilon)
    for edge in graph.edges():
        if capacities[edge.u] <= 0 or capacities[edge.v] <= 0:
            continue
        coverage = (
            duals[edge.u] / capacities[edge.u]
            + duals[edge.v] / capacities[edge.v]
        )
        assert coverage >= factor * edge.weight - 1e-9


@given(
    graph=small_bipartite_graphs(),
    epsilon=st.sampled_from([0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2),
)
def test_approximation_guarantee_and_dual_bound(graph, epsilon, seed):
    """Value within 1/(6+ε) of optimum; dual bound certifies optimum."""
    result = stack_b_matching(graph, epsilon=epsilon, seed=seed)
    optimum = bruteforce_b_matching(graph).value
    assert result.value >= optimum / (6.0 + epsilon) - 1e-9
    assert result.dual_upper_bound >= optimum - 1e-6


@given(graph=small_general_graphs(), seed=st.integers(0, 2))
def test_feasible_variant_also_meets_guarantee(graph, seed):
    result = stack_b_matching(
        graph, epsilon=1.0, seed=seed, feasible=True
    )
    optimum = bruteforce_b_matching(graph).value
    assert result.value >= optimum / 7.0 - 1e-9


def test_deltas_are_positive_on_star():
    g = star_graph(6, center_capacity=2)
    result = stack_b_matching(g, epsilon=1.0, seed=0)
    assert result.layers >= 1
    assert all(y >= -1e-12 for y in result.duals.values())


def test_strategies_run_and_label_results():
    g = star_graph(6, center_capacity=2)
    assert stack_b_matching(g, strategy="uniform").algorithm == "Stack"
    assert (
        stack_b_matching(g, strategy="greedy").algorithm == "StackGreedy"
    )
    assert (
        stack_b_matching(g, feasible=True).algorithm == "StackFeasible"
    )


def test_zero_capacity_nodes_ignored():
    from repro.graph import Graph

    g = Graph()
    g.add_node("a", 0)
    g.add_node("b", 1)
    g.add_node("c", 1)
    g.add_edge("a", "b", 100.0)
    g.add_edge("b", "c", 1.0)
    result = stack_b_matching(g, epsilon=1.0)
    assert set(result.matching) == {("b", "c")}


def test_empty_graph():
    from repro.graph import Graph

    result = stack_b_matching(Graph())
    assert result.value == 0.0
    assert result.layers == 0
    assert result.dual_upper_bound == pytest.approx(0.0)


def test_rounds_counts_push_and_pop():
    g = star_graph(8, center_capacity=2)
    result = stack_b_matching(g, epsilon=0.5, seed=1)
    assert result.rounds == 2 * result.layers
