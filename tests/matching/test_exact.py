"""Tests for the exact solvers (min-cost flow and LP)."""

import pytest
from hypothesis import given

from repro.graph import BipartiteGraph, star_graph
from repro.matching import (
    bruteforce_b_matching,
    exact_b_matching,
    flow_b_matching,
    lp_b_matching,
    lp_upper_bound,
)

from ..strategies import small_bipartite_graphs, small_general_graphs


def _bipartite_star(num_leaves: int, center_capacity: int):
    g = BipartiteGraph()
    g.add_item("center", center_capacity)
    for i in range(num_leaves):
        g.add_consumer(f"leaf{i}", 1)
        g.add_edge("center", f"leaf{i}", float(i + 1))
    return g


def test_flow_star_takes_heaviest_spokes():
    g = _bipartite_star(6, 2)
    result = flow_b_matching(g)
    assert result.value == pytest.approx(11.0)  # 6 + 5
    assert len(result.matching) == 2


def test_lp_star_matches_flow():
    g = _bipartite_star(6, 2)
    assert lp_b_matching(g).value == pytest.approx(11.0)


def test_flow_prefers_weight_over_cardinality():
    # Two items, one consumer slot each side arranged so the max-weight
    # solution is smaller than the max-cardinality one.
    g = BipartiteGraph()
    g.add_item("t1", 1)
    g.add_item("t2", 1)
    g.add_consumer("c1", 1)
    g.add_consumer("c2", 1)
    g.add_edge("t1", "c1", 10.0)
    g.add_edge("t1", "c2", 9.0)
    g.add_edge("t2", "c1", 9.0)
    # max cardinality: {t1c2, t2c1} = 18 ; both beat single 10
    result = flow_b_matching(g)
    assert result.value == pytest.approx(18.0)


def test_flow_stops_at_negative_marginal():
    # Matching more edges than profitable must not happen; with all
    # positive weights every augmentation gains, so the solution is the
    # full feasible set here.
    g = BipartiteGraph()
    g.add_item("t1", 2)
    g.add_consumer("c1", 1)
    g.add_consumer("c2", 1)
    g.add_edge("t1", "c1", 1.0)
    g.add_edge("t1", "c2", 0.5)
    assert flow_b_matching(g).value == pytest.approx(1.5)


def test_exact_dispatch():
    g = _bipartite_star(3, 1)
    assert exact_b_matching(g, "flow").value == pytest.approx(3.0)
    assert exact_b_matching(g, "lp").value == pytest.approx(3.0)
    with pytest.raises(ValueError):
        exact_b_matching(g, "magic")


def test_empty_graph():
    g = BipartiteGraph()
    assert flow_b_matching(g).value == 0.0
    assert lp_b_matching(g).value == 0.0
    assert lp_upper_bound(g) == 0.0


@given(graph=small_bipartite_graphs())
def test_flow_equals_bruteforce(graph):
    flow = flow_b_matching(graph)
    optimum = bruteforce_b_matching(graph)
    assert flow.value == pytest.approx(optimum.value)
    # and the matching itself is feasible
    report = flow.violations(graph.capacities())
    assert report.feasible


@given(graph=small_bipartite_graphs())
def test_lp_equals_bruteforce_on_bipartite(graph):
    """Total unimodularity: the bipartite LP optimum is integral."""
    lp = lp_b_matching(graph)
    optimum = bruteforce_b_matching(graph)
    assert lp.value == pytest.approx(optimum.value, abs=1e-6)
    assert lp.violations(graph.capacities()).feasible


@given(graph=small_general_graphs())
def test_lp_upper_bounds_general_graphs(graph):
    """On general graphs the LP may be fractional but bounds OPT."""
    bound = lp_upper_bound(graph)
    optimum = bruteforce_b_matching(graph).value
    assert bound >= optimum - 1e-6


def test_lp_upper_bound_is_half_integral_on_triangle():
    from repro.graph import greedy_tightness_triangle

    g = greedy_tightness_triangle(1.0)  # all weights meaningful
    bound = lp_upper_bound(g)
    optimum = bruteforce_b_matching(g).value
    assert bound >= optimum
