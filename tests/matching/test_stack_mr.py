"""Tests for StackMR / StackGreedyMR (the MapReduce stack algorithm)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import check_matching, star_graph
from repro.mapreduce import MapReduceRuntime
from repro.matching import (
    bruteforce_b_matching,
    stack_mr_b_matching,
)

from ..strategies import small_bipartite_graphs, small_general_graphs


@given(
    graph=small_general_graphs(),
    epsilon=st.sampled_from([0.5, 1.0, 2.0]),
    seed=st.integers(min_value=0, max_value=2),
)
def test_violations_within_one_epsilon_layer(graph, epsilon, seed):
    result = stack_mr_b_matching(graph, epsilon=epsilon, seed=seed)
    capacities = graph.capacities()
    for node in capacities:
        degree = result.matching.degree(node)
        if degree == 0:
            continue
        layer = max(1, math.ceil(epsilon * capacities[node]))
        assert degree <= capacities[node] + layer


@given(
    graph=small_general_graphs(),
    seed=st.integers(min_value=0, max_value=2),
)
def test_duals_weakly_cover_every_edge(graph, seed):
    epsilon = 1.0
    result = stack_mr_b_matching(graph, epsilon=epsilon, seed=seed)
    duals = result.duals
    capacities = graph.capacities()
    factor = 1.0 / (3.0 + 2.0 * epsilon)
    for edge in graph.edges():
        if capacities[edge.u] <= 0 or capacities[edge.v] <= 0:
            continue
        coverage = (
            duals[edge.u] / capacities[edge.u]
            + duals[edge.v] / capacities[edge.v]
        )
        assert coverage >= factor * edge.weight - 1e-9


@given(
    graph=small_bipartite_graphs(),
    seed=st.integers(min_value=0, max_value=2),
)
def test_approximation_and_dual_bound(graph, seed):
    epsilon = 1.0
    result = stack_mr_b_matching(graph, epsilon=epsilon, seed=seed)
    optimum = bruteforce_b_matching(graph).value
    assert result.value >= optimum / (6.0 + epsilon) - 1e-9
    assert result.dual_upper_bound >= optimum - 1e-6


@given(
    graph=small_general_graphs(),
    maps=st.integers(min_value=1, max_value=3),
    reduces=st.integers(min_value=1, max_value=3),
)
def test_independent_of_task_layout(graph, maps, reduces):
    """Same seed => identical matching on any simulated cluster shape."""
    runtime = MapReduceRuntime(
        num_map_tasks=maps, num_reduce_tasks=reduces
    )
    result = stack_mr_b_matching(graph, seed=7, runtime=runtime)
    baseline = stack_mr_b_matching(graph, seed=7)
    assert set(result.matching) == set(baseline.matching)
    assert result.duals == pytest.approx(baseline.duals)


def test_algorithm_names_by_strategy():
    g = star_graph(5, center_capacity=2)
    assert stack_mr_b_matching(g).algorithm == "StackMR"
    assert (
        stack_mr_b_matching(g, strategy="greedy").algorithm
        == "StackGreedyMR"
    )
    assert (
        stack_mr_b_matching(g, strategy="weighted").algorithm
        == "StackWeightedMR"
    )


def test_job_accounting(runtime):
    g = star_graph(6, center_capacity=2)
    result = stack_mr_b_matching(g, runtime=runtime)
    assert result.mr_jobs == runtime.jobs_executed
    assert result.mr_jobs > 0
    assert result.layers >= 1
    # push phase jobs: >= 4 (maximal) + 2 (update+coverage) per round;
    # pop phase: one job per layer.
    assert result.mr_jobs >= 6 + result.layers


def test_star_graph_quality():
    g = star_graph(10, center_capacity=3)
    result = stack_mr_b_matching(g, epsilon=1.0, seed=0)
    optimum = bruteforce_b_matching(g).value
    assert result.value >= optimum / 7.0
    report = check_matching(g.capacities(), iter(result.matching))
    # center may overflow by at most ceil(eps*b) = 3
    assert result.matching.degree("center") <= 6


def test_empty_graph():
    from repro.graph import Graph

    result = stack_mr_b_matching(Graph())
    assert result.value == 0.0
    assert result.mr_jobs == 0


def test_zero_capacity_nodes_ignored():
    from repro.graph import Graph

    g = Graph()
    g.add_node("a", 0)
    g.add_node("b", 1)
    g.add_node("c", 1)
    g.add_edge("a", "b", 100.0)
    g.add_edge("b", "c", 1.0)
    result = stack_mr_b_matching(g)
    assert set(result.matching) == {("b", "c")}
