"""Tests for the brute-force oracle itself."""

import itertools

import pytest

from repro.graph import Graph, greedy_tightness_triangle, star_graph
from repro.matching import bruteforce_b_matching


def _naive_optimum(graph):
    """Check all 2^m subsets — the oracle's oracle."""
    edges = list(graph.edges())
    best = 0.0
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            degrees = {}
            for edge in subset:
                degrees[edge.u] = degrees.get(edge.u, 0) + 1
                degrees[edge.v] = degrees.get(edge.v, 0) + 1
            if all(
                degrees[node] <= graph.capacity(node) for node in degrees
            ):
                best = max(best, sum(e.weight for e in subset))
    return best


def test_against_naive_enumeration():
    g = Graph()
    for node, cap in [("a", 2), ("b", 1), ("c", 1), ("d", 2)]:
        g.add_node(node, cap)
    g.add_edge("a", "b", 3.0)
    g.add_edge("a", "c", 2.0)
    g.add_edge("b", "c", 4.0)
    g.add_edge("c", "d", 1.0)
    g.add_edge("a", "d", 2.5)
    assert bruteforce_b_matching(g).value == pytest.approx(
        _naive_optimum(g)
    )


def test_triangle_known_optimum():
    g = greedy_tightness_triangle(0.2)
    assert bruteforce_b_matching(g).value == pytest.approx(2.0)


def test_star_known_optimum():
    g = star_graph(6, center_capacity=3)
    assert bruteforce_b_matching(g).value == pytest.approx(15.0)


def test_result_is_feasible():
    g = greedy_tightness_triangle(0.2)
    result = bruteforce_b_matching(g)
    assert result.violations(g.capacities()).feasible


def test_edge_limit_enforced():
    g = Graph()
    for i in range(30):
        g.add_node(f"v{i}", 1)
    for i in range(27):
        g.add_edge(f"v{i}", f"v{i + 1}", 1.0)
    with pytest.raises(ValueError, match="limited"):
        bruteforce_b_matching(g)


def test_empty_graph():
    assert bruteforce_b_matching(Graph()).value == 0.0
