"""Tests for the Matching / MatchingResult types."""

import pytest

from repro.matching import Matching, MatchingResult


def test_add_and_totals():
    m = Matching()
    m.add("b", "a", 2.0)
    m.add("a", "c", 3.0)
    assert len(m) == 2
    assert m.value == pytest.approx(5.0)
    assert ("a", "b") in m  # normalized
    assert m.weight("b", "a") == 2.0
    assert m.degree("a") == 2
    assert m.degree("b") == 1
    assert m.degree("zzz") == 0


def test_add_duplicate_rejected():
    m = Matching()
    m.add("a", "b", 1.0)
    with pytest.raises(ValueError):
        m.add("b", "a", 1.0)


def test_discard():
    m = Matching()
    m.add("a", "b", 2.0)
    assert m.discard("b", "a") is True
    assert m.discard("b", "a") is False
    assert len(m) == 0
    assert m.value == pytest.approx(0.0)
    assert m.degrees() == {}


def test_edges_sorted_rows():
    m = Matching()
    m.add("t2", "c1", 1.0)
    m.add("t1", "c1", 2.0)
    assert m.edges() == [("c1", "t1", 2.0), ("c1", "t2", 1.0)]


def test_copy_independent():
    m = Matching()
    m.add("a", "b", 1.0)
    clone = m.copy()
    clone.add("c", "d", 5.0)
    assert len(m) == 1
    assert clone.value == pytest.approx(6.0)


def test_result_violations_delegates():
    m = Matching()
    m.add("a", "b", 1.0)
    result = MatchingResult(matching=m, algorithm="X")
    report = result.violations({"a": 1, "b": 1})
    assert report.feasible
    assert result.value == pytest.approx(1.0)


def test_iterations_to_fraction():
    m = Matching()
    result = MatchingResult(
        matching=m,
        algorithm="X",
        value_history=[10.0, 50.0, 90.0, 99.0, 100.0],
    )
    assert result.iterations_to_fraction(0.95) == 4
    assert result.iterations_to_fraction(0.5) == 2
    assert result.iterations_to_fraction(1.0) == 5
    empty = MatchingResult(matching=m, algorithm="X")
    assert empty.iterations_to_fraction(0.95) is None
