"""Tests for the MapReduce maximal b-matching (four-stage jobs)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import check_matching, random_graph
from repro.mapreduce import MapReduceRuntime
from repro.matching import (
    MARKING_STRATEGIES,
    is_maximal,
    mm_records_from_adjacency,
    mr_maximal_b_matching,
)

from ..strategies import small_general_graphs


def _run(graph, seed=0, strategy="uniform", maps=4, reduces=4, delta=False):
    runtime = MapReduceRuntime(
        num_map_tasks=maps, num_reduce_tasks=reduces
    )
    records = mm_records_from_adjacency(
        graph.adjacency_copy(), graph.capacities()
    )
    matched, rounds = mr_maximal_b_matching(
        records, runtime, seed=seed, strategy=strategy, delta=delta
    )
    return matched, rounds, runtime


@given(
    graph=small_general_graphs(),
    strategy=st.sampled_from(MARKING_STRATEGIES),
    seed=st.integers(min_value=0, max_value=3),
)
def test_mr_output_is_feasible_and_maximal(graph, strategy, seed):
    matched, _, _ = _run(graph, seed=seed, strategy=strategy)
    capacities = graph.capacities()
    assert check_matching(capacities, matched.keys()).feasible
    assert is_maximal(graph.adjacency_copy(), capacities, matched.keys())


@given(
    graph=small_general_graphs(),
    maps=st.integers(min_value=1, max_value=3),
    reduces=st.integers(min_value=1, max_value=3),
)
def test_mr_result_independent_of_task_layout(graph, maps, reduces):
    """Node-seeded RNG makes runs identical across task placements."""
    matched, _, _ = _run(graph, maps=maps, reduces=reduces)
    baseline, _, _ = _run(graph, maps=1, reduces=1)
    assert matched == baseline


def test_mr_deterministic_per_seed_and_varies_across_seeds():
    g = random_graph(14, 0.4, rng=random.Random(8), max_capacity=2)
    a, _, _ = _run(g, seed=1)
    b, _, _ = _run(g, seed=1)
    c, _, _ = _run(g, seed=2)
    assert a == b
    # different seeds should usually explore different matchings
    assert a != c or len(a) == 0


def test_round_offset_changes_random_stream():
    g = random_graph(14, 0.4, rng=random.Random(8), max_capacity=2)
    runtime = MapReduceRuntime()
    records = mm_records_from_adjacency(
        g.adjacency_copy(), g.capacities()
    )
    m1, _ = mr_maximal_b_matching(records, runtime, seed=0, round_offset=0)
    records = mm_records_from_adjacency(
        g.adjacency_copy(), g.capacities()
    )
    m2, _ = mr_maximal_b_matching(
        records, runtime, seed=0, round_offset=1000
    )
    assert check_matching(g.capacities(), m2.keys()).feasible
    # both valid; streams differ so results typically differ
    assert m1 != m2 or len(m1) <= 1


@given(
    graph=small_general_graphs(),
    strategy=st.sampled_from(MARKING_STRATEGIES),
    seed=st.integers(min_value=0, max_value=3),
)
def test_delta_plane_matches_full_state(graph, strategy, seed):
    """Resident-scan stages = classic stages: same edges, rounds, jobs."""
    full, full_rounds, full_runtime = _run(
        graph, seed=seed, strategy=strategy, delta=False
    )
    lean, lean_rounds, lean_runtime = _run(
        graph, seed=seed, strategy=strategy, delta=True
    )
    assert full == lean
    assert full_rounds == lean_rounds
    assert full_runtime.jobs_executed == lean_runtime.jobs_executed
    assert full_runtime.job_log == lean_runtime.job_log


def test_four_jobs_per_round():
    g = random_graph(10, 0.5, rng=random.Random(3))
    matched, rounds, runtime = _run(g)
    assert runtime.jobs_executed == 4 * rounds
    assert rounds >= 1


def test_records_builder_filters_dead_nodes():
    adjacency = {
        "a": {"b": 1.0, "z": 2.0},
        "b": {"a": 1.0},
        "z": {"a": 2.0},
    }
    records = mm_records_from_adjacency(
        adjacency, {"a": 1, "b": 1, "z": 0}
    )
    nodes = {key for key, _ in records}
    assert nodes == {"a", "b"}
    state = dict(records)["a"]
    assert "z" not in state.adj  # edge to dead node pruned


def test_empty_records_no_jobs(runtime):
    matched, rounds = mr_maximal_b_matching([], runtime)
    assert matched == {}
    assert rounds == 0
    assert runtime.jobs_executed == 0
