"""White-box tests of the stack algorithm's push/pop mechanics."""

import random

import pytest

from repro.graph import Graph, star_graph
from repro.matching.stack import (
    StackLayer,
    _pop_feasible,
    _pop_violating,
    _push_phase,
)


def _layers(edge_rows):
    """Build a stack from [(u, v, w, delta)] rows per layer."""
    layers = []
    for rows in edge_rows:
        layer = StackLayer()
        for u, v, w, delta in rows:
            key = (u, v) if u < v else (v, u)
            layer.edges[key] = w
            layer.deltas[key] = delta
        layers.append(layer)
    return layers


def test_pop_is_lifo_later_layers_win_capacity():
    # Two layers share node x (capacity 1).  The LIFO pop must include
    # the *later* layer's edge and discard the earlier one.
    layers = _layers(
        [
            [("x", "a", 5.0, 1.0)],  # pushed first
            [("x", "b", 1.0, 0.5)],  # pushed last -> popped first
        ]
    )
    matching = _pop_violating(layers, {"x": 1, "a": 1, "b": 1})
    assert ("b", "x") in matching
    assert ("a", "x") not in matching


def test_pop_violating_allows_one_layer_overflow():
    # One layer with two edges at x (capacity 1): both are included in
    # parallel, which is exactly the (1+eps) overflow the paper allows.
    layers = _layers(
        [[("x", "a", 5.0, 1.0), ("x", "b", 4.0, 1.0)]]
    )
    matching = _pop_violating(layers, {"x": 1, "a": 1, "b": 1})
    assert matching.degree("x") == 2


def test_pop_feasible_repairs_overflow():
    layers = _layers(
        [[("x", "a", 5.0, 2.0), ("x", "b", 4.0, 1.0)]]
    )
    matching = _pop_feasible(
        layers,
        {"x": 1, "a": 1, "b": 1},
        epsilon=1.0,
        rng=random.Random(0),
        strategy="uniform",
        max_rounds=100,
    )
    # exactly one of the two conflicting edges survives
    assert matching.degree("x") == 1
    assert len(matching) == 1


def test_push_phase_stacks_everything_eventually():
    g = star_graph(7, center_capacity=3)
    layers, duals = _push_phase(
        g, epsilon=1.0, rng=random.Random(1), strategy="uniform",
        max_rounds=1000,
    )
    stacked = {key for layer in layers for key in layer.edges}
    # not every edge is stacked (weak coverage removes some), but the
    # push phase must terminate with no live edge and positive duals
    assert stacked  # at least one layer
    assert duals["center"] > 0


def test_push_phase_deltas_match_dual_increases():
    g = star_graph(5, center_capacity=2)
    layers, duals = _push_phase(
        g, epsilon=1.0, rng=random.Random(2), strategy="uniform",
        max_rounds=1000,
    )
    total_delta = sum(
        delta for layer in layers for delta in layer.deltas.values()
    )
    # each delta is added to BOTH endpoints: sum(y) == 2 * sum(deltas)
    assert sum(duals.values()) == pytest.approx(2 * total_delta)


def test_zero_capacity_component_yields_empty_stack():
    g = Graph()
    g.add_node("a", 0)
    g.add_node("b", 0)
    g.add_edge("a", "b", 3.0)
    layers, duals = _push_phase(
        g, epsilon=1.0, rng=random.Random(0), strategy="uniform",
        max_rounds=10,
    )
    assert layers == []
    assert duals == {}
