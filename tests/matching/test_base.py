"""Tests for the algorithm registry."""

import pytest

from repro.graph import star_graph
from repro.matching import ALGORITHMS, solve


def test_all_registered_algorithms_run():
    g = star_graph(4, center_capacity=2)
    for name in ALGORITHMS:
        if name == "exact":  # needs a bipartite graph; tested elsewhere
            continue
        if name.startswith("exact") or name == "bruteforce":
            continue
        result = solve(g, name)
        assert result.value > 0, name


def test_solve_forwards_kwargs():
    g = star_graph(4, center_capacity=2)
    result = solve(g, "stack", epsilon=0.5, seed=3)
    assert result.algorithm == "Stack"


def test_unknown_algorithm():
    g = star_graph(3, center_capacity=1)
    with pytest.raises(ValueError, match="unknown algorithm"):
        solve(g, "oracle")


def test_registry_names_are_stable():
    expected = {
        "greedy",
        "greedy_mr",
        "stack",
        "stack_greedy",
        "stack_feasible",
        "stack_mr",
        "stack_greedy_mr",
        "stack_weighted_mr",
        "suitor",
        "exact_flow",
        "exact_lp",
        "exact",
        "bruteforce",
    }
    assert set(ALGORITHMS) == expected
