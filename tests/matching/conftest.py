"""Fixtures for the matching test matrix.

The matching suite runs across the same execution/storage matrix as
``tests/mapreduce`` — the ``runtime`` fixture from the top-level
conftest cycles execution backends (``REPRO_TEST_BACKENDS``) and
follows the ``REPRO_TEST_FS`` / ``REPRO_TEST_SPILL_THRESHOLD`` storage
knobs — plus one matching-specific axis: ``delta`` toggles the
iteration plane (resident-state delta rounds vs the classic full-state
rounds).  The contract asserted in ``test_matrix.py``: matchings,
``value_history``, round counts, and job counts are bit-identical
across *every* cell, and counter totals (minus the spill counters)
are bit-identical across cells that share a delta mode.
"""

from __future__ import annotations

import pytest


@pytest.fixture(params=[False, True], ids=["full-state", "delta"])
def delta(request) -> bool:
    """Both iteration planes of the *_mr matching algorithms."""
    return request.param
