"""Tests for the delivery-plan projection helpers."""

import pytest
from hypothesis import given

from repro.graph import BipartiteGraph
from repro.matching import greedy_mr_b_matching
from repro.matching.assignments import (
    audiences_by_item,
    deliveries_by_consumer,
)

from ..strategies import small_bipartite_graphs


@pytest.fixture
def solved():
    g = BipartiteGraph()
    g.add_item("t1", 2)
    g.add_item("t2", 1)
    g.add_consumer("c1", 2)
    g.add_consumer("c2", 1)
    g.add_edge("t1", "c1", 3.0)
    g.add_edge("t1", "c2", 2.0)
    g.add_edge("t2", "c1", 1.0)
    return g, greedy_mr_b_matching(g).matching


def test_deliveries_ranked_best_first(solved):
    graph, matching = solved
    plan = deliveries_by_consumer(graph, matching)
    assert plan["c1"] == [("t1", 3.0), ("t2", 1.0)]
    assert plan["c2"] == [("t1", 2.0)]


def test_audiences_by_item(solved):
    graph, matching = solved
    plan = audiences_by_item(graph, matching)
    assert plan["t1"] == [("c1", 3.0), ("c2", 2.0)]
    assert plan["t2"] == [("c1", 1.0)]


@given(graph=small_bipartite_graphs())
def test_projections_partition_the_matching(graph):
    matching = greedy_mr_b_matching(graph).matching
    by_consumer = deliveries_by_consumer(graph, matching)
    by_item = audiences_by_item(graph, matching)
    total = sum(len(v) for v in by_consumer.values())
    assert total == len(matching)
    assert total == sum(len(v) for v in by_item.values())
    # every projected pair is a matched edge with the right weight
    for consumer, ranked in by_consumer.items():
        for item, weight in ranked:
            assert matching.weight(item, consumer) == weight
    # degrees respected
    for consumer, ranked in by_consumer.items():
        assert len(ranked) == matching.degree(consumer)
