"""Tests for the telemetry plane: registry, spans, exporter, loadgen."""
