"""The /metrics endpoint: exposition format and live HTTP scrapes."""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import MetricsRegistry, render_prometheus
from repro.telemetry.exporter import MetricsExporter


def _registry():
    registry = MetricsRegistry()
    registry.increment("runtime", "shuffle.records", 42)
    registry.gauge("runtime", "phase.map_seconds").add(0.5)
    hist = registry.histogram("runtime", "task.map_output_records", (1, 10))
    for value in (1, 5, 100):
        hist.observe(value)
    return registry


def test_render_prometheus_format():
    text = render_prometheus(_registry().snapshot())
    lines = text.splitlines()
    assert "# TYPE repro_runtime_shuffle_records counter" in lines
    assert "repro_runtime_shuffle_records 42" in lines
    assert "repro_runtime_phase_map_seconds 0.5" in lines
    # Histogram buckets are cumulative and close with +Inf, sum, count.
    assert 'repro_runtime_task_map_output_records_bucket{le="1.0"} 1' in lines
    assert 'repro_runtime_task_map_output_records_bucket{le="10.0"} 2' in lines
    assert (
        'repro_runtime_task_map_output_records_bucket{le="+Inf"} 3' in lines
    )
    assert "repro_runtime_task_map_output_records_count 3" in lines
    assert text.endswith("\n")


def test_render_sanitizes_names_and_emits_extras():
    registry = MetricsRegistry()
    registry.increment("greedy-round", "map.input_records", 1)
    text = render_prometheus(
        registry.snapshot(), extra={"latency_p99_ms": 12.5}
    )
    assert "repro_greedy_round_map_input_records 1" in text
    assert "repro_service_latency_p99_ms 12.5" in text


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


def test_exporter_serves_metrics_and_json():
    registry = _registry()
    calls = []

    def extra():
        calls.append(1)
        return {"latency_p99_ms": 9.0}

    with MetricsExporter(registry=registry, extra_metrics=extra) as exporter:
        assert exporter.port != 0  # ephemeral port resolved
        status, text = _get(f"{exporter.url}/metrics")
        assert status == 200
        # The scrape is the same render the in-process API would give,
        # plus the exporter's own health counter.
        assert text == render_prometheus(registry.snapshot(), extra()) + (
            "# TYPE repro_exporter_scrape_errors counter\n"
            "repro_exporter_scrape_errors 0\n"
        )
        status, payload = _get(f"{exporter.url}/metrics.json")
        snapshot = json.loads(payload)
        assert (
            snapshot["registry"]["counters"]["runtime"]["shuffle.records"]
            == 42
        )
        assert snapshot["service"]["latency_p99_ms"] == 9.0
        status, body = _get(f"{exporter.url}/healthz")
        assert body == "ok\n"
        # Health checks are not scrapes; /metrics and /metrics.json are.
        assert exporter.scrape_count == 2
        assert exporter.wait_for_scrapes(2, timeout=0.2)
        assert not exporter.wait_for_scrapes(3, timeout=0.1)
        assert calls  # extra_metrics re-evaluated per scrape
    assert exporter._server is None  # context exit stopped the server


def test_exporter_scrape_sees_live_updates():
    registry = MetricsRegistry()
    with MetricsExporter(registry=registry) as exporter:
        registry.increment("g", "n", 1)
        _, first = _get(f"{exporter.url}/metrics")
        registry.increment("g", "n", 4)
        _, second = _get(f"{exporter.url}/metrics")
    assert "repro_g_n 1" in first
    assert "repro_g_n 5" in second


def test_exporter_unknown_path_is_404_and_double_start_raises():
    exporter = MetricsExporter().start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{exporter.url}/nope")
        assert excinfo.value.code == 404
        with pytest.raises(RuntimeError, match="already started"):
            exporter.start()
    finally:
        exporter.stop()
    exporter.stop()  # idempotent


def test_scrape_errors_count_and_degrade_health():
    state = {"fail": True}

    def extra():
        if state["fail"]:
            raise RuntimeError("backing store unavailable")
        return {"latency_p99_ms": 1.0}

    with MetricsExporter(registry=_registry(), extra_metrics=extra) as exporter:
        # A failing extra_metrics callable answers 500 — the serving
        # thread survives and the failure is counted, not swallowed.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{exporter.url}/metrics")
        assert excinfo.value.code == 500
        assert exporter.scrape_errors == 1
        assert exporter.scrape_count == 0
        # /healthz reports degradation with the last failure inline.
        _, body = _get(f"{exporter.url}/healthz")
        assert body == "degraded: RuntimeError: backing store unavailable\n"
        # Once scrapes succeed again, health recovers and the error
        # counter rides along in the exposition itself.
        state["fail"] = False
        _, text = _get(f"{exporter.url}/metrics")
        assert "repro_exporter_scrape_errors 1" in text
        _, body = _get(f"{exporter.url}/healthz")
        assert body == "ok\n"
        _, payload = _get(f"{exporter.url}/metrics.json")
        health = json.loads(payload)["exporter"]
        # The JSON view renders before its own scrape is counted.
        assert health == {"scrape_count": 1, "scrape_errors": 1}
