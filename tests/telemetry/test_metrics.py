"""The metrics registry: pure-merge semantics and the determinism contract.

The property tests here are the tentpole's claim: histogram bucket
totals and counter sums are (a) identical across execution backends and
(b) independent of merge (task-completion) order — the bit-identical
contract the counters already carried, extended to distributions.
"""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import Counters, MapReduceJob, MapReduceRuntime
from repro.mapreduce.state import strip_volatile_counters
from repro.telemetry import (
    COUNT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary_ms,
    percentile,
)

from ..conftest import BACKENDS


# -- the shared nearest-rank percentile ---------------------------------------


def test_percentile_nearest_rank():
    values = list(range(1, 11))  # 1..10
    assert percentile(values, 0.0) == 1
    assert percentile(values, 0.5) == 5
    assert percentile(values, 0.95) == 10
    assert percentile(values, 1.0) == 10
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_does_not_require_sorted_input():
    assert percentile([3, 1, 2], 0.5) == 2


def test_percentile_empty_and_range_validation():
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        percentile([1.0], 1.5)


def test_latency_summary_is_milliseconds():
    summary = latency_summary_ms([0.010, 0.020, 0.030])
    assert set(summary) == {
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
    }
    assert summary["latency_p50_ms"] == pytest.approx(20.0)
    assert summary["latency_p99_ms"] == pytest.approx(30.0)


# -- histograms ---------------------------------------------------------------


def test_histogram_buckets_have_le_semantics():
    hist = Histogram(upper_bounds=(1, 10, 100))
    for value in (0.5, 1, 5, 10, 50, 100, 1000):
        hist.observe(value)
    # le=1 catches {0.5, 1}; le=10 catches {5, 10}; le=100 catches
    # {50, 100}; 1000 overflows.
    assert hist.bucket_counts == [2, 2, 2, 1]
    assert hist.count == 7
    assert hist.minimum == 0.5
    assert hist.maximum == 1000
    assert hist.total == pytest.approx(1166.5)


def test_histogram_validates_bounds():
    with pytest.raises(ValueError, match="ascending"):
        Histogram(upper_bounds=(1, 1, 2))
    with pytest.raises(ValueError, match="at least one"):
        Histogram(upper_bounds=())


def test_histogram_merge_requires_identical_spec():
    hist = Histogram(upper_bounds=(1, 2))
    with pytest.raises(ValueError, match="different specs"):
        hist.merge(Histogram(upper_bounds=(1, 2, 3)))
    with pytest.raises(ValueError, match="different specs"):
        hist.merge(Histogram(upper_bounds=(1, 2), volatile=True))


def test_histogram_merge_adds_buckets_and_folds_extrema():
    left = Histogram(upper_bounds=(10, 100), keep_samples=True)
    right = Histogram(upper_bounds=(10, 100), keep_samples=True)
    for value in (5, 50):
        left.observe(value)
    for value in (1, 500):
        right.observe(value)
    left.merge(right)
    assert left.bucket_counts == [2, 1, 1]
    assert left.count == 4
    assert left.minimum == 1
    assert left.maximum == 500
    assert left.samples == [5, 50, 1, 500]


def test_histogram_percentile_exact_with_samples_quantized_without():
    exact = Histogram(upper_bounds=(1, 10, 100), keep_samples=True)
    coarse = Histogram(upper_bounds=(1, 10, 100))
    for value in (2.0, 3.0, 4.0, 200.0):
        exact.observe(value)
        coarse.observe(value)
    assert exact.percentile(0.5) == 3.0
    # Without samples the answer is the holding bucket's upper bound;
    # the overflow bucket reports the observed maximum.
    assert coarse.percentile(0.5) == 10
    assert coarse.percentile(1.0) == 200.0
    assert Histogram(upper_bounds=(1,)).percentile(0.5) == 0.0


def test_histogram_survives_pickling():
    hist = Histogram(upper_bounds=(1, 10), keep_samples=True)
    hist.observe(5)
    clone = pickle.loads(pickle.dumps(hist))
    assert clone.snapshot() == hist.snapshot()
    assert clone.samples == [5]


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=200_000), max_size=8),
        min_size=2,
        max_size=5,
    ),
    st.randoms(use_true_random=False),
)
def test_histogram_merge_order_independence(task_outputs, rng):
    """Bucket totals and counts never depend on task completion order."""
    def merged(order):
        accumulator = Histogram(upper_bounds=COUNT_BUCKETS)
        for index in order:
            part = Histogram(upper_bounds=COUNT_BUCKETS)
            for value in task_outputs[index]:
                part.observe(value)
            accumulator.merge(part)
        return accumulator

    baseline = merged(range(len(task_outputs)))
    shuffled = list(range(len(task_outputs)))
    rng.shuffle(shuffled)
    permuted = merged(shuffled)
    assert permuted.bucket_counts == baseline.bucket_counts
    assert permuted.count == baseline.count
    assert permuted.minimum == baseline.minimum
    assert permuted.maximum == baseline.maximum


# -- gauges and the registry --------------------------------------------------


def test_gauge_set_add_merge():
    gauge = Gauge()
    gauge.set(2.5)
    gauge.add(0.5)
    other = Gauge(1.0)
    gauge.merge(other)
    assert gauge.value == pytest.approx(4.0)


def test_registry_counters_delegate_to_the_injected_store():
    counters = Counters()
    registry = MetricsRegistry(counters=counters)
    registry.increment("g", "n", 3)
    counters.increment("g", "n", 2)
    # Same object: both write paths land in one store.
    assert registry.get("g", "n") == 5


def test_registry_histogram_create_then_spec_mismatch():
    registry = MetricsRegistry()
    hist = registry.histogram("g", "h", upper_bounds=(1, 2))
    assert registry.histogram("g", "h", upper_bounds=(1, 2)) is hist
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("g", "h", upper_bounds=(1, 2, 3))


def test_registry_merge_folds_all_three_kinds():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.increment("c", "n", 1)
    right.increment("c", "n", 2)
    left.gauge("g", "v").add(1.5)
    right.gauge("g", "v").add(0.5)
    left.observe("h", "d", 5, upper_bounds=(10,))
    right.observe("h", "d", 50, upper_bounds=(10,))
    left.merge(right)
    assert left.get("c", "n") == 3
    assert left.gauge("g", "v").value == pytest.approx(2.0)
    snap = left.snapshot()["histograms"]["h"]["d"]
    assert snap["bucket_counts"] == [1, 1]


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.increment("c", "n")
    registry.gauge("g", "v").set(1.0)
    registry.observe("h", "d", 0.5)
    snap = registry.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert snap["gauges"] == {"g": {"v": 1.0}}
    assert snap["histograms"]["h"]["d"]["count"] == 1


# -- strip_volatile_counters over registry snapshots --------------------------


def test_strip_drops_gauges_and_volatile_histograms():
    registry = MetricsRegistry()
    registry.increment("runtime", "map.input_records", 7)
    registry.increment("runtime", "spilled_records", 3)  # volatile
    registry.gauge("runtime", "phase.map_seconds").add(0.25)
    registry.observe(
        "runtime", "task.map_output_records", 12, upper_bounds=COUNT_BUCKETS
    )
    registry.observe("service", "flush_seconds", 0.01, volatile=True)
    stripped = strip_volatile_counters(registry.snapshot())
    assert set(stripped) == {"counters", "histograms"}
    assert stripped["counters"]["runtime"] == {"map.input_records": 7}
    assert list(stripped["histograms"]) == ["runtime"]
    assert (
        stripped["histograms"]["runtime"]["task.map_output_records"]["count"]
        == 1
    )


def test_strip_still_handles_plain_counter_snapshots():
    counters = Counters()
    counters.increment("runtime", "map.input_records", 7)
    counters.increment("runtime", "spilled_records", 3)
    stripped = strip_volatile_counters(counters.snapshot())
    assert stripped == {"runtime": {"map.input_records": 7}}


# -- cross-backend determinism ------------------------------------------------


class _Rollup(MapReduceJob):
    """Fans each record out by key prefix; group sizes vary per key."""

    def map(self, key, value):
        for index in range(value):
            yield f"k{index % 5}", index

    def reduce(self, key, values):
        yield key, sum(values)


def _run_job(backend):
    runtime = MapReduceRuntime(
        num_map_tasks=4,
        num_reduce_tasks=4,
        counters=Counters(),
        backend=backend,
    )
    data = [(f"r{index}", 3 + (index * 7) % 11) for index in range(40)]
    list(runtime.run_iter(_Rollup(), data))
    return strip_volatile_counters(runtime.metrics.snapshot())


def test_registry_snapshot_identical_across_backends():
    """Counter sums AND histogram buckets match on every backend."""
    snapshots = {backend: _run_job(backend) for backend in BACKENDS}
    reference = snapshots[BACKENDS[0]]
    hists = reference["histograms"]["runtime"]
    assert hists["task.map_output_records"]["count"] == 4
    assert hists["task.reduce_output_records"]["count"] == 4
    for backend, snapshot in snapshots.items():
        assert snapshot == reference, f"{backend} diverged"


def test_task_count_changes_the_histogram_but_not_the_counters():
    """Sanity: the distributions really are per-task resolution."""
    four = _run_job(BACKENDS[0])
    runtime = MapReduceRuntime(
        num_map_tasks=1, num_reduce_tasks=1, counters=Counters()
    )
    data = [(f"r{index}", 3 + (index * 7) % 11) for index in range(40)]
    list(runtime.run_iter(_Rollup(), data))
    one = strip_volatile_counters(runtime.metrics.snapshot())
    assert one["histograms"]["runtime"]["task.map_output_records"][
        "count"
    ] == 1
    assert (
        one["counters"]["_Rollup"]["map.output.records"]
        == four["counters"]["_Rollup"]["map.output.records"]
    )
