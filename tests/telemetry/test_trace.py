"""Span trees: nesting, JSON round-trips, rendering, runtime wiring."""

import pytest

from repro.mapreduce import Counters, MapReduceRuntime
from repro.telemetry import Span, Tracer, load_spans, render_spans

from .test_metrics import _Rollup


def test_span_nesting_follows_the_stack():
    tracer = Tracer()
    with tracer.span("job:x", kind="job"):
        with tracer.span("phase:map", kind="phase", tasks=2):
            tracer.record("map-0", seconds=0.25)
            tracer.record("map-1", seconds=0.75)
        with tracer.span("phase:reduce", kind="phase"):
            pass
    job, map_phase, task0, task1, reduce_phase = tracer.spans
    assert job.parent_id is None
    assert map_phase.parent_id == job.span_id
    assert task0.parent_id == task1.parent_id == map_phase.span_id
    assert reduce_phase.parent_id == job.span_id
    assert map_phase.attrs == {"tasks": 2}
    assert task0.seconds == 0.25
    assert job.seconds is not None and job.seconds >= 0


def test_span_stack_recovers_from_exceptions():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    # Both spans were closed on the way out; new spans are root-level.
    assert all(span.end is not None for span in tracer.spans)
    with tracer.span("after"):
        pass
    assert tracer.spans[-1].parent_id is None


def test_export_load_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("job", kind="job", mode="scan"):
        tracer.record("map-0", seconds=0.001, records=10)
    path = str(tmp_path / "spans.json")
    assert tracer.export(path) == 2
    loaded = load_spans(path)
    assert [span.to_dict() for span in loaded] == [
        span.to_dict() for span in tracer.spans
    ]


def test_load_rejects_unknown_versions(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "spans": []}')
    with pytest.raises(ValueError, match="version"):
        load_spans(str(path))


def test_render_elides_task_floods():
    tracer = Tracer()
    with tracer.span("phase:map", kind="phase"):
        for index in range(10):
            tracer.record(f"map-{index}", seconds=0.001)
    text = render_spans(tracer.spans, max_tasks_per_parent=3)
    assert "map-0 (task) 1.00ms" in text
    assert "map-2" in text and "map-3" not in text
    assert "... 7 more tasks (7.00ms total)" in text
    # Children indent under their parent.
    assert "\n  map-0" in text


def test_render_marks_open_spans():
    text = render_spans([Span(span_id=1, parent_id=None, name="x", kind="job")])
    assert text == "x (job) open"


def test_runtime_emits_job_phase_task_spans():
    tracer = Tracer()
    runtime = MapReduceRuntime(
        num_map_tasks=2,
        num_reduce_tasks=2,
        counters=Counters(),
        tracer=tracer,
    )
    data = [(f"r{index}", 4) for index in range(8)]
    list(runtime.run_iter(_Rollup(), data))
    kinds = {}
    for span in tracer.spans:
        kinds.setdefault(span.kind, []).append(span)
    assert [span.name for span in kinds["job"]] == ["job:_Rollup"]
    assert {span.name for span in kinds["phase"]} == {
        "phase:map",
        "phase:shuffle",
        "phase:reduce",
    }
    # Per-task spans carry executor-measured seconds and hang off the
    # right phase.
    job = kinds["job"][0]
    by_id = {span.span_id: span for span in tracer.spans}
    for task in kinds["task"]:
        assert task.seconds is not None and task.seconds >= 0
        assert by_id[task.parent_id].kind == "phase"
        assert by_id[by_id[task.parent_id].parent_id] is job
    assert len([s for s in kinds["task"] if s.name.startswith("map-")]) == 2
    assert len([s for s in kinds["task"] if s.name.startswith("reduce-")]) == 2


def test_untraced_runtime_records_nothing():
    runtime = MapReduceRuntime(
        num_map_tasks=2, num_reduce_tasks=2, counters=Counters()
    )
    assert runtime.tracer is None
    data = [(f"r{index}", 4) for index in range(8)]
    list(runtime.run_iter(_Rollup(), data))  # no tracer, no error
