"""The Zipf load generator: determinism, skew, validity, closed loop."""

import asyncio
from collections import Counter

import pytest

from repro.service import (
    Arrival,
    MatchingService,
    OnlineMatcher,
    apply_event,
    plain_graph,
)
from repro.service.events import CapacityChange
from repro.telemetry.loadgen import (
    DEFAULT_MIX,
    _normalized_mix,
    _ZipfPicker,
    events_digest,
    run_load,
    zipf_events,
)

from ..service.test_matcher import _seeded_graph


def test_same_seed_same_stream_same_digest():
    graph = _seeded_graph(0)
    first, mirror_a = zipf_events(graph, 30, seed=7)
    second, mirror_b = zipf_events(graph, 30, seed=7)
    assert first == second
    assert events_digest(first) == events_digest(second)
    assert sorted(mirror_a.nodes()) == sorted(mirror_b.nodes())
    # A different seed is a different stream.
    other, _ = zipf_events(graph, 30, seed=8)
    assert events_digest(other) != events_digest(first)


def test_mirror_graph_is_the_stream_applied():
    graph = _seeded_graph(1)
    events, mirror = zipf_events(graph, 25, seed=3)
    replay = plain_graph(graph)
    for event in events:
        apply_event(replay, event)
    assert sorted(replay.nodes()) == sorted(mirror.nodes())
    assert replay.capacities() == mirror.capacities()
    # The input graph was not mutated.
    assert "zipf-0" not in set(graph.capacities())


def test_mix_validation():
    with pytest.raises(ValueError, match="unknown event kinds"):
        _normalized_mix({"arrival": 1.0, "tsunami": 1.0})
    with pytest.raises(ValueError, match=">= 0"):
        _normalized_mix({"arrival": -0.1})
    with pytest.raises(ValueError, match="positive share"):
        _normalized_mix({"arrival": 0.0})
    shares = _normalized_mix({"arrival": 1.0, "edge": 3.0})
    assert shares["arrival"] == pytest.approx(0.25)
    assert shares["edge"] == pytest.approx(0.75)
    assert shares["capacity"] == 0.0
    assert sum(_normalized_mix(DEFAULT_MIX).values()) == pytest.approx(1.0)


def test_mix_steers_event_kinds():
    graph = _seeded_graph(0)
    events, _ = zipf_events(
        graph, 20, seed=0, mix={"capacity": 1.0}
    )
    assert all(isinstance(event, CapacityChange) for event in events)


def test_zipf_skew_concentrates_on_the_hot_head():
    import random

    rng = random.Random(0)
    population = [f"n{index:03d}" for index in range(100)]
    picker = _ZipfPicker(rng, skew=1.5)
    draws = Counter(picker.pick(population) for _ in range(3000))
    head = sum(draws[node] for node in population[:10])
    # With skew 1.5 the top-10 ranks dominate; uniform would give ~300.
    assert head > 1500
    assert draws[population[0]] > draws.get(population[50], 0)

    uniform = _ZipfPicker(random.Random(0), skew=0.0)
    flat = Counter(uniform.pick(population) for _ in range(3000))
    assert sum(flat[node] for node in population[:10]) < 600

    with pytest.raises(ValueError, match="skew"):
        _ZipfPicker(rng, skew=-1.0)


def test_zipf_sample_returns_distinct_nodes():
    import random

    picker = _ZipfPicker(random.Random(0), skew=2.0)
    population = [f"n{index}" for index in range(20)]
    for _ in range(50):
        picked = picker.sample(population, 3)
        assert len(picked) == len(set(picked)) <= 3


def test_traffic_targets_hot_nodes_more_than_cold():
    """The generated traffic really is skewed, end to end.

    Capacity changes repeat on a stable population (unlike
    retirements, which remove their target), so the per-node hit
    counts expose the Zipf head directly.
    """
    graph = _seeded_graph(0, n=40)
    events, _ = zipf_events(
        graph, 300, seed=5, skew=1.5, mix={"capacity": 1.0}
    )
    nodes = sorted(plain_graph(graph).nodes())
    targets = Counter(event.node for event in events)
    head = sum(targets.get(node, 0) for node in nodes[:5])
    tail = sum(targets.get(node, 0) for node in nodes[-20:])
    assert head > 2 * tail


def test_run_load_measures_every_event():
    graph = _seeded_graph(2)
    events, mirror = zipf_events(graph, 10, seed=1)
    matcher = OnlineMatcher(graph=graph)
    service = MatchingService(matcher, max_batch=4, max_delay=60.0)

    async def drive():
        async with service:
            return await run_load(service, events)

    report = asyncio.run(drive())
    assert report.events == 10
    assert len(report.latencies) == 10
    assert all(latency > 0 for latency in report.latencies)
    assert report.service_metrics["batches_flushed"] >= 1
    summary = report.summary()
    assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0
    assert summary["achieved_events_per_s"] > 0
    assert summary["offered_rate_events_per_s"] == 0.0
    # The sample landed in the runtime's registry for the exporter.
    hist = matcher.runtime.metrics.histogram(
        "load",
        "event_latency_seconds",
        volatile=True,
        keep_samples=True,
    )
    assert hist.count == 10


def test_run_load_paced_smoke():
    graph = _seeded_graph(2)
    events = [
        Arrival(f"late-{index}", capacity=1, edges=())
        for index in range(3)
    ]
    service = MatchingService(
        OnlineMatcher(graph=graph), max_batch=2, max_delay=0.01
    )

    async def drive():
        async with service:
            return await run_load(service, events, offered_rate=200.0)

    report = asyncio.run(drive())
    assert report.events == 3
    assert report.offered_rate == 200.0
    # Pacing puts at least the inter-arrival gaps on the clock.
    assert report.wall_seconds >= 2 / 200.0


def test_run_load_wedged_drain_fails_with_diagnostic():
    """A service that stops resolving submissions must fail the run
    with a diagnostic instead of hanging the harness forever."""

    class WedgedService:
        """Accepts submissions that never resolve; drain is a no-op."""

        def __init__(self):
            self.matcher = OnlineMatcher()

        async def submit_event(self, event):
            await asyncio.Event().wait()  # pragma: no cover - cancelled

        async def drain(self):
            return None

    service = WedgedService()
    events = [
        Arrival(f"stuck-{index}", capacity=1, edges=())
        for index in range(3)
    ]

    async def drive():
        try:
            await run_load(service, events, drain_timeout=0.05)
        finally:
            service.matcher.close()

    with pytest.raises(RuntimeError, match="load run wedged") as excinfo:
        asyncio.run(drive())
    assert "3 of 3 submissions" in str(excinfo.value)
