"""Hypothesis strategies shared across the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import BipartiteGraph, Graph

# Weights are drawn from a grid to avoid pathological float noise while
# still producing plenty of ties broken by the edge total order.
weight_strategy = st.sampled_from(
    [0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 7.0, 10.0, 12.5, 20.0]
)

capacity_strategy = st.integers(min_value=1, max_value=4)


# Capacities for the degenerate strategies additionally allow b = 0 —
# nodes that exist but can never be matched (the §4 capacity formulas
# produce them for inactive consumers); algorithms must prune them.
degenerate_capacity_strategy = st.integers(min_value=0, max_value=3)

# A deliberately tiny weight grid: with only three values, duplicate
# weights are the norm rather than the exception, so every tie-breaking
# path through the total edge order gets exercised.
duplicate_weight_strategy = st.sampled_from([1.0, 2.0, 3.0])


def _draw_edges(draw, graph, pairs, max_edges, weights):
    """Shared edge sampler: a unique subset of ``pairs``, weighted."""
    count = draw(
        st.integers(min_value=0, max_value=min(len(pairs), max_edges))
    )
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=count,
            max_size=count,
            unique=True,
        )
    ) if pairs else []
    for u, v in chosen:
        graph.add_edge(u, v, draw(weights))
    return graph


def _bipartite_graph(
    draw, min_side, max_items, max_consumers, max_edges, capacities, weights
):
    num_items = draw(st.integers(min_value=min_side, max_value=max_items))
    num_consumers = draw(
        st.integers(min_value=min_side, max_value=max_consumers)
    )
    graph = BipartiteGraph()
    for i in range(num_items):
        graph.add_item(f"t{i}", draw(capacities))
    for j in range(num_consumers):
        graph.add_consumer(f"c{j}", draw(capacities))
    pairs = [
        (f"t{i}", f"c{j}")
        for i in range(num_items)
        for j in range(num_consumers)
    ]
    return _draw_edges(draw, graph, pairs, max_edges, weights)


def _general_graph(draw, min_nodes, max_nodes, max_edges, capacities, weights):
    num_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(f"v{i}", draw(capacities))
    pairs = [
        (f"v{i}", f"v{j}")
        for i in range(num_nodes)
        for j in range(i + 1, num_nodes)
    ]
    return _draw_edges(draw, graph, pairs, max_edges, weights)


@st.composite
def small_bipartite_graphs(
    draw, max_items: int = 6, max_consumers: int = 5, max_edges: int = 14
):
    """Small random bipartite instances (brute-forceable)."""
    return _bipartite_graph(
        draw, 1, max_items, max_consumers, max_edges,
        capacity_strategy, weight_strategy,
    )


@st.composite
def small_general_graphs(draw, max_nodes: int = 7, max_edges: int = 12):
    """Small random general graphs (odd cycles possible)."""
    return _general_graph(
        draw, 2, max_nodes, max_edges, capacity_strategy, weight_strategy
    )


@st.composite
def degenerate_matching_graphs(draw, max_nodes: int = 7, max_edges: int = 12):
    """General graphs hitting the matching layer's edge cases.

    Possibly empty (zero nodes), possibly edgeless, with zero-capacity
    nodes, isolated nodes, and heavily duplicated weights — the inputs
    the property tests in ``tests/matching`` use to pin ``greedy_mr ==
    greedy`` and the StackMR (1+ε)-violation bound off the happy path.
    """
    return _general_graph(
        draw, 0, max_nodes, max_edges,
        degenerate_capacity_strategy, duplicate_weight_strategy,
    )


@st.composite
def degenerate_bipartite_graphs(
    draw, max_items: int = 5, max_consumers: int = 4, max_edges: int = 10
):
    """Bipartite variant of :func:`degenerate_matching_graphs`."""
    return _bipartite_graph(
        draw, 0, max_items, max_consumers, max_edges,
        degenerate_capacity_strategy, duplicate_weight_strategy,
    )


term_strategy = st.sampled_from([f"w{i}" for i in range(20)])


@st.composite
def sparse_vectors(draw, max_terms: int = 8):
    """Small sparse term vectors with positive weights."""
    terms = draw(
        st.lists(term_strategy, min_size=1, max_size=max_terms, unique=True)
    )
    return {
        term: draw(
            st.floats(
                min_value=0.1,
                max_value=5.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        for term in terms
    }


@st.composite
def vector_collections(draw, max_docs: int = 6):
    """A pair of small item / consumer vector stores."""
    num_items = draw(st.integers(min_value=1, max_value=max_docs))
    num_consumers = draw(st.integers(min_value=1, max_value=max_docs))
    items = {
        f"t{i}": draw(sparse_vectors()) for i in range(num_items)
    }
    consumers = {
        f"c{j}": draw(sparse_vectors()) for j in range(num_consumers)
    }
    return items, consumers
