"""Hypothesis strategies shared across the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import BipartiteGraph, Graph

# Weights are drawn from a grid to avoid pathological float noise while
# still producing plenty of ties broken by the edge total order.
weight_strategy = st.sampled_from(
    [0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 7.0, 10.0, 12.5, 20.0]
)

capacity_strategy = st.integers(min_value=1, max_value=4)


@st.composite
def small_bipartite_graphs(
    draw, max_items: int = 6, max_consumers: int = 5, max_edges: int = 14
):
    """Small random bipartite instances (brute-forceable)."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    num_consumers = draw(
        st.integers(min_value=1, max_value=max_consumers)
    )
    graph = BipartiteGraph()
    for i in range(num_items):
        graph.add_item(f"t{i}", draw(capacity_strategy))
    for j in range(num_consumers):
        graph.add_consumer(f"c{j}", draw(capacity_strategy))
    pairs = [
        (f"t{i}", f"c{j}")
        for i in range(num_items)
        for j in range(num_consumers)
    ]
    count = draw(
        st.integers(min_value=0, max_value=min(len(pairs), max_edges))
    )
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=count,
            max_size=count,
            unique=True,
        )
    ) if pairs else []
    for item, consumer in chosen:
        graph.add_edge(item, consumer, draw(weight_strategy))
    return graph


@st.composite
def small_general_graphs(draw, max_nodes: int = 7, max_edges: int = 12):
    """Small random general graphs (odd cycles possible)."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(f"v{i}", draw(capacity_strategy))
    pairs = [
        (f"v{i}", f"v{j}")
        for i in range(num_nodes)
        for j in range(i + 1, num_nodes)
    ]
    count = draw(
        st.integers(min_value=0, max_value=min(len(pairs), max_edges))
    )
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=count,
            max_size=count,
            unique=True,
        )
    ) if pairs else []
    for u, v in chosen:
        graph.add_edge(u, v, draw(weight_strategy))
    return graph


term_strategy = st.sampled_from([f"w{i}" for i in range(20)])


@st.composite
def sparse_vectors(draw, max_terms: int = 8):
    """Small sparse term vectors with positive weights."""
    terms = draw(
        st.lists(term_strategy, min_size=1, max_size=max_terms, unique=True)
    )
    return {
        term: draw(
            st.floats(
                min_value=0.1,
                max_value=5.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        for term in terms
    }


@st.composite
def vector_collections(draw, max_docs: int = 6):
    """A pair of small item / consumer vector stores."""
    num_items = draw(st.integers(min_value=1, max_value=max_docs))
    num_consumers = draw(st.integers(min_value=1, max_value=max_docs))
    items = {
        f"t{i}": draw(sparse_vectors()) for i in range(num_items)
    }
    consumers = {
        f"c{j}": draw(sparse_vectors()) for j in range(num_consumers)
    }
    return items, consumers
