"""Tests for the prefix-filtering bound (the heart of the pruned index)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simjoin import max_term_weights, prefix_terms, suffix_bound
from repro.text import dot

from ..strategies import sparse_vectors, vector_collections


def test_suffix_bound_basic():
    vector = {"a": 2.0, "b": 1.0}
    bounds = {"a": 3.0, "b": 0.5, "zzz": 9.0}
    assert suffix_bound(vector, bounds) == pytest.approx(6.5)


def test_prefix_empty_when_unreachable():
    # Even matching everything, 2*0.1 + 1*0.1 < 1.0
    vector = {"a": 2.0, "b": 1.0}
    bounds = {"a": 0.1, "b": 0.1}
    assert prefix_terms(vector, bounds, sigma=1.0) == []


def test_prefix_takes_largest_contributions_first():
    vector = {"small": 1.0, "big": 5.0}
    bounds = {"small": 1.0, "big": 1.0}
    prefix = prefix_terms(vector, bounds, sigma=2.0)
    # tail must fall below 2.0: dropping "big" leaves 1.0 < 2.0
    assert prefix == ["big"]


def test_prefix_full_vector_when_needed():
    vector = {"a": 1.0, "b": 1.0}
    bounds = {"a": 1.0, "b": 1.0}
    # sigma=0.5: tail after both = 0 < 0.5 but after one = 1.0 >= 0.5
    assert prefix_terms(vector, bounds, sigma=0.5) == ["a", "b"]


def test_prefix_ignores_terms_absent_from_other_side():
    vector = {"shared": 2.0, "private": 100.0}
    bounds = {"shared": 1.0}  # "private" never matches a consumer
    assert prefix_terms(vector, bounds, sigma=1.0) == ["shared"]


def test_prefix_rejects_nonpositive_sigma():
    with pytest.raises(ValueError):
        prefix_terms({"a": 1.0}, {"a": 1.0}, sigma=0.0)


def test_max_term_weights():
    bounds = max_term_weights([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
    assert bounds == {"a": 3.0, "b": 2.0}


@given(
    data=vector_collections(),
    sigma=st.floats(min_value=0.2, max_value=10.0, allow_nan=False),
)
def test_prefix_filter_completeness_property(data, sigma):
    """The correctness theorem: any pair >= sigma shares a prefix term."""
    items, consumers = data
    bounds = max_term_weights(consumers.values())
    for item_vector in items.values():
        prefix = set(prefix_terms(item_vector, bounds, sigma))
        for consumer_vector in consumers.values():
            similarity = dot(item_vector, consumer_vector)
            if similarity >= sigma:
                assert prefix & set(consumer_vector), (
                    "pair above threshold shares no indexed term"
                )


@given(data=vector_collections(), sigma=st.floats(0.2, 10.0))
def test_prefix_tail_bound_below_sigma(data, sigma):
    items, consumers = data
    bounds = max_term_weights(consumers.values())
    for vector in items.values():
        prefix = prefix_terms(vector, bounds, sigma)
        tail = {
            term: weight
            for term, weight in vector.items()
            if term not in prefix
        }
        assert suffix_bound(tail, bounds) < sigma
