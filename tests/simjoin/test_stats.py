"""Tests for collection statistics."""

from repro.simjoin import document_frequencies_of, max_term_weights


def test_max_term_weights_empty():
    assert max_term_weights([]) == {}


def test_max_term_weights_takes_max():
    bounds = max_term_weights(
        [{"a": 1.0}, {"a": 5.0, "b": 0.5}, {"b": 2.0}]
    )
    assert bounds == {"a": 5.0, "b": 2.0}


def test_document_frequencies_counts_presence_not_weight():
    df = document_frequencies_of([{"a": 100.0}, {"a": 0.001, "b": 1.0}])
    assert df == {"a": 2, "b": 1}
