"""Tests for the §4 subscription-restricted candidate edges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simjoin import (
    exact_similarity_join,
    filter_by_subscription,
    subscription_join,
)

ITEMS = {
    "t1": {"a": 2.0},
    "t2": {"a": 1.0, "b": 1.0},
    "t3": {"c": 5.0},
}
CONSUMERS = {
    "c1": {"a": 1.0},
    "c2": {"b": 3.0, "c": 1.0},
}
OWNER = {"t1": "p1", "t2": "p1", "t3": "p2"}
FOLLOWS = {"c1": {"p1"}, "c2": {"p2"}}


def test_filter_keeps_only_subscribed_pairs():
    edges = exact_similarity_join(ITEMS, CONSUMERS, 0.5)
    kept = filter_by_subscription(edges, OWNER, FOLLOWS)
    assert kept == [("t1", "c1", 2.0), ("t2", "c1", 1.0), ("t3", "c2", 5.0)]


def test_filter_drops_unowned_items_and_unsubscribed_consumers():
    edges = [("ghost", "c1", 9.0), ("t1", "stranger", 9.0)]
    assert filter_by_subscription(edges, OWNER, FOLLOWS) == []


def test_join_direct_equals_filtered():
    direct = subscription_join(ITEMS, CONSUMERS, OWNER, FOLLOWS)
    filtered = filter_by_subscription(
        exact_similarity_join(ITEMS, CONSUMERS, 1e-9), OWNER, FOLLOWS
    )
    assert direct == filtered


def test_join_applies_sigma_on_top():
    rows = subscription_join(
        ITEMS, CONSUMERS, OWNER, FOLLOWS, sigma=1.5
    )
    assert rows == [("t1", "c1", 2.0), ("t3", "c2", 5.0)]


def test_join_rejects_negative_sigma():
    with pytest.raises(ValueError):
        subscription_join(ITEMS, CONSUMERS, OWNER, FOLLOWS, sigma=-1.0)


@given(
    follows=st.dictionaries(
        st.sampled_from(["c1", "c2"]),
        st.frozensets(st.sampled_from(["p1", "p2"]), max_size=2),
        max_size=2,
    )
)
def test_direct_equals_filtered_property(follows):
    direct = subscription_join(ITEMS, CONSUMERS, OWNER, follows)
    filtered = filter_by_subscription(
        exact_similarity_join(ITEMS, CONSUMERS, 1e-9), OWNER, follows
    )
    assert direct == filtered


def test_flickr_dataset_subscription_scenario():
    from repro.datasets import flickr_dataset
    from repro.matching import greedy_mr_b_matching

    dataset = flickr_dataset(
        "flickr-subs", num_photos=80, num_users=20, seed=6
    )
    assert dataset.item_owner
    assert dataset.subscriptions
    restricted = dataset.subscription_edges()
    unrestricted = dataset.edges(1e-9)
    assert 0 < len(restricted) < len(unrestricted)
    # every restricted edge exists in the unrestricted set
    unrestricted_pairs = {(t, c) for t, c, _ in unrestricted}
    assert all(
        (t, c) in unrestricted_pairs for t, c, _ in restricted
    )
    # and the matching pipeline runs on the restricted instance
    graph = dataset.subscription_graph(alpha=2.0)
    result = greedy_mr_b_matching(graph)
    assert result.violations(graph.capacities()).feasible


def test_dataset_without_social_graph_raises():
    from repro.datasets import yahoo_answers_dataset

    dataset = yahoo_answers_dataset(
        "ya-nosubs", num_questions=20, num_users=5, seed=1
    )
    with pytest.raises(ValueError, match="no subscription graph"):
        dataset.subscription_edges()
