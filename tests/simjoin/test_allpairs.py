"""Tests for the centralized similarity-join engines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simjoin import exact_similarity_join, scipy_similarity_join
from repro.text import dot

from ..strategies import vector_collections


def _bruteforce(items, consumers, sigma):
    rows = []
    for item, iv in items.items():
        for consumer, cv in consumers.items():
            similarity = dot(iv, cv)
            if similarity >= sigma:
                rows.append((item, consumer, similarity))
    rows.sort()
    return rows


def test_exact_join_simple():
    items = {"t1": {"a": 1.0, "b": 2.0}}
    consumers = {"c1": {"a": 1.0}, "c2": {"b": 3.0}, "c3": {"z": 1.0}}
    rows = exact_similarity_join(items, consumers, sigma=1.0)
    assert rows == [("t1", "c1", 1.0), ("t1", "c2", 6.0)]


def test_exact_join_threshold_excludes():
    items = {"t1": {"a": 1.0}}
    consumers = {"c1": {"a": 0.5}}
    assert exact_similarity_join(items, consumers, sigma=0.6) == []
    assert len(exact_similarity_join(items, consumers, sigma=0.5)) == 1


def test_join_rejects_nonpositive_sigma():
    with pytest.raises(ValueError):
        exact_similarity_join({}, {}, 0.0)
    with pytest.raises(ValueError):
        scipy_similarity_join({}, {}, -1.0)


def test_scipy_join_empty_collections():
    assert scipy_similarity_join({}, {"c": {"a": 1.0}}, 1.0) == []
    assert scipy_similarity_join({"t": {"a": 1.0}}, {}, 1.0) == []


@given(
    data=vector_collections(),
    sigma=st.floats(min_value=0.2, max_value=8.0, allow_nan=False),
)
def test_exact_join_equals_bruteforce(data, sigma):
    items, consumers = data
    expected = _bruteforce(items, consumers, sigma)
    got = exact_similarity_join(items, consumers, sigma)
    assert [(t, c) for t, c, _ in got] == [(t, c) for t, c, _ in expected]
    for (_, _, a), (_, _, b) in zip(got, expected):
        assert a == pytest.approx(b)


@given(
    data=vector_collections(),
    sigma=st.floats(min_value=0.2, max_value=8.0, allow_nan=False),
)
def test_scipy_join_equals_exact(data, sigma):
    items, consumers = data
    exact = exact_similarity_join(items, consumers, sigma)
    fast = scipy_similarity_join(items, consumers, sigma)
    assert [(t, c) for t, c, _ in fast] == [(t, c) for t, c, _ in exact]
    for (_, _, a), (_, _, b) in zip(fast, exact):
        assert a == pytest.approx(b)


def test_scipy_join_blocking_boundaries():
    items = {f"t{i}": {"a": float(i + 1)} for i in range(10)}
    consumers = {"c0": {"a": 1.0}}
    for block in (1, 3, 10, 100):
        rows = scipy_similarity_join(
            items, consumers, sigma=3.0, block_size=block
        )
        assert len(rows) == 8  # items with weight >= 3
