"""Tests for the MapReduce similarity join (§5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import MapReduceRuntime
from repro.simjoin import (
    exact_similarity_join,
    mapreduce_similarity_join,
)

from ..strategies import vector_collections


def test_mr_join_matches_exact_small():
    items = {"t1": {"a": 2.0, "b": 1.0}, "t2": {"c": 4.0}}
    consumers = {"c1": {"a": 1.0, "c": 1.0}, "c2": {"b": 2.0}}
    for sigma in (0.5, 2.0, 3.9, 4.0, 10.0):
        assert mapreduce_similarity_join(
            items, consumers, sigma
        ) == exact_similarity_join(items, consumers, sigma)


def test_mr_join_emits_only_cross_side_pairs():
    items = {"t1": {"a": 1.0}, "t2": {"a": 1.0}}
    consumers = {"c1": {"a": 1.0}, "c2": {"a": 1.0}}
    rows = mapreduce_similarity_join(items, consumers, 0.5)
    for t, c, _ in rows:
        assert t.startswith("t") and c.startswith("c")
    assert len(rows) == 4  # no t-t or c-c pairs


def test_mr_join_runs_three_jobs(runtime):
    mapreduce_similarity_join(
        {"t1": {"a": 1.0}}, {"c1": {"a": 1.0}}, 0.5, runtime=runtime
    )
    assert runtime.jobs_executed == 3
    assert runtime.job_log == [
        "simjoin-term-bounds",
        "simjoin-candidates",
        "simjoin-verify",
    ]


def test_mr_join_rejects_nonpositive_sigma():
    with pytest.raises(ValueError):
        mapreduce_similarity_join({}, {}, 0.0)


def test_mr_join_prunes_the_index():
    # One heavy discriminative term per item; high sigma means only the
    # heavy term must be indexed, so the candidate job's shuffle stays
    # far below |T|·|terms|.
    items = {
        f"t{i}": {"shared": 0.1, f"own{i}": 10.0} for i in range(20)
    }
    consumers = {f"c{i}": {f"own{i}": 10.0} for i in range(20)}
    runtime = MapReduceRuntime()
    rows = mapreduce_similarity_join(
        items, consumers, sigma=50.0, runtime=runtime
    )
    assert len(rows) == 20  # each item matches exactly its consumer
    postings = runtime.counters.get(
        "simjoin-candidates", "map.output.records"
    )
    # 20 item prefixes (1 term each) + 20 consumer postings
    assert postings == 40


@given(
    data=vector_collections(max_docs=4),
    sigma=st.floats(min_value=0.3, max_value=6.0, allow_nan=False),
    maps=st.integers(min_value=1, max_value=3),
    reduces=st.integers(min_value=1, max_value=3),
)
def test_mr_join_equivalence_property(data, sigma, maps, reduces):
    """MR join == exact join, for any task layout and threshold."""
    items, consumers = data
    runtime = MapReduceRuntime(
        num_map_tasks=maps, num_reduce_tasks=reduces
    )
    got = mapreduce_similarity_join(
        items, consumers, sigma, runtime=runtime
    )
    expected = exact_similarity_join(items, consumers, sigma)
    assert [(t, c) for t, c, _ in got] == [
        (t, c) for t, c, _ in expected
    ]
    for (_, _, a), (_, _, b) in zip(got, expected):
        assert a == pytest.approx(b)
