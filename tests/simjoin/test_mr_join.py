"""Tests for the MapReduce similarity join (§5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import MapReduceRuntime
from repro.simjoin import (
    exact_similarity_join,
    mapreduce_similarity_join,
)

from ..strategies import vector_collections


def test_mr_join_matches_exact_small():
    items = {"t1": {"a": 2.0, "b": 1.0}, "t2": {"c": 4.0}}
    consumers = {"c1": {"a": 1.0, "c": 1.0}, "c2": {"b": 2.0}}
    for sigma in (0.5, 2.0, 3.9, 4.0, 10.0):
        assert mapreduce_similarity_join(
            items, consumers, sigma
        ) == exact_similarity_join(items, consumers, sigma)


def test_mr_join_emits_only_cross_side_pairs():
    items = {"t1": {"a": 1.0}, "t2": {"a": 1.0}}
    consumers = {"c1": {"a": 1.0}, "c2": {"a": 1.0}}
    rows = mapreduce_similarity_join(items, consumers, 0.5)
    for t, c, _ in rows:
        assert t.startswith("t") and c.startswith("c")
    assert len(rows) == 4  # no t-t or c-c pairs


def test_mr_join_runs_three_jobs(runtime):
    mapreduce_similarity_join(
        {"t1": {"a": 1.0}}, {"c1": {"a": 1.0}}, 0.5, runtime=runtime
    )
    assert runtime.jobs_executed == 3
    assert runtime.job_log == [
        "simjoin-term-bounds",
        "simjoin-candidates",
        "simjoin-verify",
    ]


def test_mr_join_rejects_nonpositive_sigma():
    with pytest.raises(ValueError):
        mapreduce_similarity_join({}, {}, 0.0)


def test_mr_join_prunes_hopeless_items():
    # Items whose suffix bound cannot reach sigma against *any*
    # consumer have an empty prefix and post nothing at all — the
    # pruning that survives the partial-score kernel at map time.
    items = {
        f"t{i}": {"shared": 0.1, f"own{i}": 10.0} for i in range(20)
    }
    hopeless = {f"weak{i}": {"shared": 0.2} for i in range(30)}
    items.update(hopeless)
    consumers = {f"c{i}": {f"own{i}": 10.0} for i in range(20)}
    runtime = MapReduceRuntime()
    rows = mapreduce_similarity_join(
        items, consumers, sigma=50.0, runtime=runtime
    )
    assert len(rows) == 20  # each strong item matches its consumer
    postings = runtime.counters.get(
        "simjoin-candidates", "map.output.records"
    )
    # 20 items x 2 terms + 20 consumer postings; the 30 hopeless items
    # (max possible dot = 0.2 * 10.0 < sigma... they share no term with
    # any consumer at all here, bound 0) contribute nothing.
    assert postings == 60


def test_mr_join_verify_ships_no_document_stores():
    """The verify stage is sum-and-threshold: its only side data is
    sigma — the corpus never rides the DistributedCache."""
    from repro.simjoin.mr_join import similarity_join_pipeline

    items = {"t1": {"a": 2.0, "b": 1.0}}
    consumers = {"c1": {"a": 1.0, "b": 3.0}}
    pipeline = similarity_join_pipeline(items, consumers, 1.0)
    verify_stage = pipeline.stages[-1]
    assert verify_stage.job.name == "simjoin-verify"
    side = verify_stage.side_data(pipeline.filesystem)
    assert set(side) == {"sigma"}


def test_mr_join_partial_scores_sum_to_exact_dot():
    """Candidate products summed per pair equal the full dot product,
    including non-prefix terms."""
    # With sigma=5.75 and maxw=1.0 the prefix of t1 is a strict subset
    # of its terms, yet the verified score must cover all shared terms.
    items = {"t1": {"a": 4.0, "b": 1.5, "c": 0.5}}
    consumers = {"c1": {"a": 1.0, "b": 1.0, "c": 1.0}}
    rows = mapreduce_similarity_join(items, consumers, 5.75)
    assert rows == [("t1", "c1", 6.0)]


def test_mr_join_prefix_gate_drops_sub_threshold_pairs():
    """A pair co-occurring only on non-prefix terms is provably below
    sigma and never reaches a threshold comparison."""
    items = {"t1": {"heavy": 10.0, "light": 0.1}}
    consumers = {
        "c1": {"heavy": 1.0},  # shares t1's prefix term
        "c2": {"light": 1.0},  # shares only the suffix term
    }
    runtime = MapReduceRuntime()
    rows = mapreduce_similarity_join(
        items, consumers, 5.0, runtime=runtime
    )
    assert rows == [("t1", "c1", 10.0)]
    # Both pairs formed verify groups (products exist for each), but
    # only the prefix-hit pair could possibly pass.
    assert (
        runtime.counters.get("simjoin-verify", "reduce.input.groups")
        == 2
    )


@given(
    data=vector_collections(max_docs=4),
    sigma=st.floats(min_value=0.3, max_value=6.0, allow_nan=False),
    maps=st.integers(min_value=1, max_value=3),
    reduces=st.integers(min_value=1, max_value=3),
)
def test_mr_join_equivalence_property(data, sigma, maps, reduces):
    """MR join == exact join, for any task layout and threshold."""
    items, consumers = data
    runtime = MapReduceRuntime(
        num_map_tasks=maps, num_reduce_tasks=reduces
    )
    got = mapreduce_similarity_join(
        items, consumers, sigma, runtime=runtime
    )
    expected = exact_similarity_join(items, consumers, sigma)
    assert [(t, c) for t, c, _ in got] == [
        (t, c) for t, c, _ in expected
    ]
    for (_, _, a), (_, _, b) in zip(got, expected):
        assert a == pytest.approx(b)
