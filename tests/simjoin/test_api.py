"""Tests for the candidate-edges dispatch API."""

import pytest

from repro.simjoin import JOIN_METHODS, candidate_edges

ITEMS = {"t1": {"a": 2.0}, "t2": {"b": 1.0}}
CONSUMERS = {"c1": {"a": 1.0, "b": 1.0}}


def test_all_methods_agree():
    results = {
        method: candidate_edges(ITEMS, CONSUMERS, 1.0, method=method)
        for method in ("exact", "scipy", "mapreduce")
    }
    baseline = results["exact"]
    assert baseline == [("t1", "c1", 2.0), ("t2", "c1", 1.0)]
    for method, rows in results.items():
        assert [(t, c) for t, c, _ in rows] == [
            (t, c) for t, c, _ in baseline
        ], method


def test_auto_dispatch_small_uses_exact():
    rows = candidate_edges(ITEMS, CONSUMERS, 1.5, method="auto")
    assert rows == [("t1", "c1", 2.0)]


def test_unknown_method_rejected():
    with pytest.raises(ValueError, match="unknown join method"):
        candidate_edges(ITEMS, CONSUMERS, 1.0, method="quantum")


def test_methods_constant_is_consistent():
    assert set(JOIN_METHODS) == {"auto", "exact", "scipy", "mapreduce"}
