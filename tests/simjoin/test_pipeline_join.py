"""Tests for the DFS-backed similarity-join pipeline."""

import pytest

from repro.mapreduce import InMemoryFileSystem, MapReduceRuntime
from repro.simjoin import (
    exact_similarity_join,
    similarity_join_pipeline,
)

ITEMS = {"t1": {"a": 2.0, "b": 1.0}, "t2": {"c": 4.0}}
CONSUMERS = {"c1": {"a": 1.0, "c": 1.0}, "c2": {"b": 2.0}}


def test_pipeline_output_matches_direct_join():
    pipeline = similarity_join_pipeline(ITEMS, CONSUMERS, 1.0)
    output = pipeline.run()
    rows = sorted((t, c, w) for (t, c), w in output)
    assert rows == exact_similarity_join(ITEMS, CONSUMERS, 1.0)


def test_pipeline_persists_intermediates():
    fs = InMemoryFileSystem()
    runtime = MapReduceRuntime()
    pipeline = similarity_join_pipeline(
        ITEMS, CONSUMERS, 1.0, runtime=runtime, filesystem=fs
    )
    pipeline.run()
    assert fs.exists("/simjoin/documents")
    assert fs.exists("/simjoin/term_bounds")
    assert fs.exists("/simjoin/candidates")
    assert fs.exists("/simjoin/edges")
    bounds = dict(fs.read("/simjoin/term_bounds"))
    assert bounds == {"a": 1.0, "b": 2.0, "c": 1.0}
    assert runtime.jobs_executed == 3


def test_pipeline_describe_names_stages():
    pipeline = similarity_join_pipeline(ITEMS, CONSUMERS, 1.0)
    description = pipeline.describe()
    assert "simjoin-term-bounds" in description
    assert "simjoin-candidates" in description
    assert "simjoin-verify" in description


def test_pipeline_rejects_bad_sigma():
    with pytest.raises(ValueError):
        similarity_join_pipeline(ITEMS, CONSUMERS, 0.0)
