"""Closed-loop load: seeded Zipf traffic against the matching service.

Two halves, both deterministic:

* :func:`zipf_events` — a seeded event generator like
  :func:`~repro.service.workload.synthetic_events` (same mirror-graph
  validity-by-construction, same event vocabulary) but with **Zipf-
  skewed node selection**: non-arrival events target node *ranks* drawn
  from a Zipf distribution over the live population, so a handful of
  hot nodes absorb most of the churn — the traffic shape a content site
  actually sees, and the one that stresses the matcher's eligible-
  component re-convergence (hot components stay hot).  The
  arrival/edge/capacity/retirement mix is configurable.  Same
  ``(graph, count, seed, skew, mix)`` always yields the same stream;
  :func:`events_digest` fingerprints a stream so the benchmark can
  prove it.

* :func:`run_load` — a closed-loop driver: submits the stream to a
  :class:`~repro.service.service.MatchingService` at a target offered
  rate (or as fast as the coalescing buffer accepts, when unpaced),
  measures every event's submit→converged latency on the event-loop
  clock, records the sample into the runtime's metrics registry, and
  returns a :class:`LoadReport` with p50/p95/p99 latency, achieved
  throughput, and the service's own meters.

``benchmarks/bench_load.py`` wires the two into ``BENCH_serving.json``
with a CI regression gate, optionally exposing the registry through
:class:`~repro.telemetry.exporter.MetricsExporter` mid-run.

This module imports the service layer, so it is *not* re-exported from
``repro.telemetry`` (the mapreduce layer imports that package);
import it explicitly as ``repro.telemetry.loadgen``.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph import Graph
from ..service.events import (
    Arrival,
    CapacityChange,
    EdgeArrival,
    Event,
    Retirement,
    apply_event,
    plain_graph,
)
from ..service.service import MatchingService
from .metrics import TIMING_BUCKETS, latency_summary_ms

__all__ = [
    "DEFAULT_MIX",
    "LoadReport",
    "events_digest",
    "run_load",
    "zipf_events",
]

#: Default event mix: the proportions of
#: :func:`~repro.service.workload.synthetic_events`, named.
DEFAULT_MIX: Mapping[str, float] = {
    "arrival": 0.45,
    "edge": 0.20,
    "capacity": 0.20,
    "retirement": 0.15,
}

#: Same coarse weight grid as the uniform workload generator — keeps
#: the total edge order's tie-breaking exercised.
_WEIGHTS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 7.0, 10.0)


class _ZipfPicker:
    """Draw node *ranks* from a Zipf distribution, deterministically.

    Rank ``k`` (1-based, over the sorted live population) carries
    weight ``k**-skew``; the cumulative table is rebuilt only when the
    population size changes.  ``skew=0`` degenerates to uniform.
    """

    def __init__(self, rng: random.Random, skew: float) -> None:
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.rng = rng
        self.skew = skew
        self._size = 0
        self._cumulative: List[float] = []

    def _table(self, size: int) -> List[float]:
        if size != self._size:
            weights = [
                (rank + 1) ** -self.skew for rank in range(size)
            ]
            self._cumulative = list(accumulate(weights))
            self._size = size
        return self._cumulative

    def pick(self, population: Sequence[str]) -> str:
        """One Zipf-ranked draw from the sorted population."""
        cumulative = self._table(len(population))
        point = self.rng.random() * cumulative[-1]
        return population[bisect_left(cumulative, point)]

    def sample(
        self, population: Sequence[str], count: int
    ) -> List[str]:
        """Up to ``count`` *distinct* Zipf-ranked draws.

        Rejection-samples duplicates with a bounded number of draws —
        with a hot head, distinct hits get rare, and the generator must
        stay O(count) per event — so fewer than ``count`` picks can
        come back.  Deterministic for a deterministic ``rng``.
        """
        picked: List[str] = []
        seen = set()
        attempts = 0
        limit = 8 * count + 8
        while len(picked) < count and attempts < limit:
            attempts += 1
            choice = self.pick(population)
            if choice not in seen:
                seen.add(choice)
                picked.append(choice)
        return picked


def _normalized_mix(mix: Mapping[str, float]) -> Dict[str, float]:
    unknown = set(mix) - set(DEFAULT_MIX)
    if unknown:
        raise ValueError(
            f"unknown event kinds in mix: {sorted(unknown)}; "
            f"expected a subset of {sorted(DEFAULT_MIX)}"
        )
    full = {kind: float(mix.get(kind, 0.0)) for kind in DEFAULT_MIX}
    if any(share < 0 for share in full.values()):
        raise ValueError(f"mix shares must be >= 0: {mix}")
    total = sum(full.values())
    if total <= 0:
        raise ValueError("mix must have at least one positive share")
    return {kind: share / total for kind, share in full.items()}


def zipf_events(
    graph: Graph,
    count: int,
    seed: int = 0,
    skew: float = 1.1,
    mix: Mapping[str, float] = DEFAULT_MIX,
    node_prefix: str = "zipf",
    max_edges_per_arrival: int = 3,
) -> Tuple[List[Event], Graph]:
    """Generate ``count`` valid events with Zipf-skewed node targeting.

    Returns ``(events, final_graph)``: the mirror graph after every
    event applied is the cold-batch reference, exactly like
    :func:`~repro.service.workload.synthetic_events`.  The input graph
    is not mutated.  ``skew`` is the Zipf exponent over node ranks
    (sorted name order; ``0`` = uniform), ``mix`` the
    arrival/edge/capacity/retirement proportions (normalized).
    """
    rng = random.Random(seed)
    picker = _ZipfPicker(rng, skew)
    shares = _normalized_mix(mix)
    thresholds = list(
        accumulate(
            shares[kind]
            for kind in ("arrival", "edge", "capacity", "retirement")
        )
    )
    mirror = plain_graph(graph)
    events: List[Event] = []
    arrivals = 0
    for _ in range(count):
        nodes = sorted(mirror.nodes())
        roll = rng.random()
        event: Event
        if roll < thresholds[0] or len(nodes) < 2:
            # New nodes attach preferentially to the hot head — the
            # rich-get-richer shape that keeps hot components hot.
            name = f"{node_prefix}-{arrivals}"
            arrivals += 1
            targets = picker.sample(
                nodes,
                min(
                    len(nodes),
                    rng.randint(0, max_edges_per_arrival),
                ),
            )
            event = Arrival(
                node=name,
                capacity=rng.randint(1, 3),
                edges=tuple(
                    (target, rng.choice(_WEIGHTS))
                    for target in targets
                ),
            )
        elif roll < thresholds[1]:
            pair = picker.sample(nodes, 2)
            if len(pair) < 2:  # pragma: no cover - needs a tiny graph
                pair = rng.sample(nodes, 2)
            event = EdgeArrival(
                u=pair[0], v=pair[1], weight=rng.choice(_WEIGHTS)
            )
        elif roll < thresholds[2]:
            event = CapacityChange(
                node=picker.pick(nodes), capacity=rng.randint(0, 3)
            )
        else:
            event = Retirement(node=picker.pick(nodes))
        apply_event(mirror, event)
        events.append(event)
    return events, mirror


def events_digest(events: Sequence[Event]) -> str:
    """A short stable fingerprint of an event stream.

    ``bench_load.py`` commits it to ``BENCH_serving.json``: the CI gate
    comparing digests proves "same seed → same event stream" across
    machines and runs.
    """
    hasher = hashlib.sha256()
    for event in events:
        hasher.update(repr(event).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


async def _settle(
    service: MatchingService, tasks: List["asyncio.Task"]
) -> None:
    """Drain the service, then wait for every submission to resolve."""
    await service.drain()
    await asyncio.gather(*tasks)


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    events: int
    offered_rate: Optional[float]
    wall_seconds: float
    #: submit→converged seconds per event, in submission order.
    latencies: List[float]
    #: ``service.metrics()`` taken at the end of the run.
    service_metrics: Dict[str, float]

    def summary(self) -> Dict[str, float]:
        """The flat record ``bench_load.py`` persists."""
        achieved = (
            self.events / self.wall_seconds
            if self.wall_seconds > 0
            else 0.0
        )
        row: Dict[str, float] = {
            "events": self.events,
            "offered_rate_events_per_s": self.offered_rate or 0.0,
            "wall_seconds": self.wall_seconds,
            "achieved_events_per_s": achieved,
        }
        row.update(latency_summary_ms(self.latencies))
        return row


async def run_load(
    service: MatchingService,
    events: Sequence[Event],
    offered_rate: Optional[float] = None,
    drain_timeout: Optional[float] = 120.0,
) -> LoadReport:
    """Drive the service with ``events`` and measure per-event latency.

    ``offered_rate`` paces submissions (events/second, open-loop
    arrivals); ``None`` submits the whole stream back to back, which —
    with a generous ``max_delay`` — makes flush boundaries a pure
    function of ``max_batch`` and therefore deterministic (what the
    benchmark's regression gate relies on).  Latency is submit→flush-
    converged on the event-loop clock, so it includes coalescing wait.
    The sample lands in the runtime's registry as the volatile
    ``load.event_latency_seconds`` histogram (scrapeable mid-run via
    the metrics endpoint).  Does not close the service.

    ``drain_timeout`` bounds the end-of-stream drain and result
    gather: a wedged flush (a deadlocked store, an executor that never
    returns) fails the run with a :class:`RuntimeError` naming the
    number of unresolved submissions instead of hanging CI forever.
    ``None`` waits unboundedly.
    """
    loop = asyncio.get_running_loop()
    interval = 1.0 / offered_rate if offered_rate else 0.0
    latency_hist = service.matcher.runtime.metrics.histogram(
        "load",
        "event_latency_seconds",
        TIMING_BUCKETS,
        volatile=True,
        keep_samples=True,
    )

    async def one(event: Event) -> float:
        submitted = loop.time()
        await service.submit_event(event)
        seconds = loop.time() - submitted
        latency_hist.observe(seconds)
        return seconds

    started = loop.time()
    tasks: List[asyncio.Task] = []
    for event in events:
        tasks.append(asyncio.ensure_future(one(event)))
        if interval:
            await asyncio.sleep(interval)
        else:
            # Yield once so the submission coroutine actually enqueues
            # the event (keeps submission order = stream order).
            await asyncio.sleep(0)
    # Flush any straggler partial batch immediately — without this, a
    # stream that is not a multiple of max_batch waits out the full
    # max_delay timer before the last waiters resolve.
    try:
        await asyncio.wait_for(
            _settle(service, tasks), timeout=drain_timeout
        )
    except asyncio.TimeoutError:
        pending = sum(
            1
            for task in tasks
            if not task.done() or task.cancelled()
        )
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise RuntimeError(
            f"load run wedged: drain did not complete within "
            f"{drain_timeout}s ({pending} of {len(tasks)} submissions "
            f"still unresolved — a flush is stuck or the service "
            f"stopped making progress)"
        ) from None
    latencies = [task.result() for task in tasks]
    wall = loop.time() - started
    return LoadReport(
        events=len(tasks),
        offered_rate=offered_rate,
        wall_seconds=wall,
        latencies=latencies,
        service_metrics=service.metrics(),
    )
