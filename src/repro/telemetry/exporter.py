"""Metrics exposition: a stdlib HTTP endpoint in Prometheus text format.

:class:`MetricsExporter` serves a :class:`~repro.telemetry.metrics.
MetricsRegistry` snapshot over plain ``http.server`` (no third-party
dependencies) on three routes:

* ``/metrics`` — Prometheus text exposition format, version 0.0.4:
  counters, gauges, and histograms (with ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` series), plus any *extra* scalar metrics the
  owner supplies (the serving layer passes ``service.metrics`` so the
  scraped totals are exactly what :meth:`MatchingService.metrics`
  reports);
* ``/metrics.json`` — the raw registry snapshot plus the extra scalars
  as JSON, for humans and tests;
* ``/healthz`` — liveness.

The server is a daemon-threaded :class:`ThreadingHTTPServer` bound to
an ephemeral port by default (``port=0``), started by ``repro serve
--metrics-port`` and by ``bench_load.py --metrics-port`` for the CI
curl smoke.  Snapshots are taken per scrape on the handler thread; the
registry's structures are plain dicts and ints mutated by the event
loop thread, so a scrape is read-only and never blocks the service.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional

from .metrics import MetricsRegistry

__all__ = ["MetricsExporter", "render_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(namespace: str, group: str, name: str) -> str:
    """``repro_<group>_<name>`` with every illegal character folded to
    ``_`` (counter names like ``shuffle.records`` become
    ``shuffle_records``)."""
    return _NAME_SANITIZER.sub("_", f"{namespace}_{group}_{name}")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: Mapping[str, Any],
    extra: Optional[Mapping[str, float]] = None,
    namespace: str = "repro",
) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    ``extra`` scalars (e.g. the serving layer's ``metrics()`` dict) are
    emitted as gauges under ``<namespace>_service_<key>``.
    """
    lines: List[str] = []

    def emit(name: str, metric_type: str, samples: List[str]) -> None:
        lines.append(f"# TYPE {name} {metric_type}")
        lines.extend(samples)

    for group in sorted(snapshot.get("counters", {})):
        names = snapshot["counters"][group]
        for name in sorted(names):
            metric = _metric_name(namespace, group, name)
            emit(
                metric,
                "counter",
                [f"{metric} {_format_value(names[name])}"],
            )
    for group in sorted(snapshot.get("gauges", {})):
        names = snapshot["gauges"][group]
        for name in sorted(names):
            metric = _metric_name(namespace, group, name)
            emit(
                metric,
                "gauge",
                [f"{metric} {_format_value(names[name])}"],
            )
    for group in sorted(snapshot.get("histograms", {})):
        names = snapshot["histograms"][group]
        for name in sorted(names):
            hist = names[name]
            metric = _metric_name(namespace, group, name)
            samples: List[str] = []
            cumulative = 0
            for bound, bucket in zip(
                hist["le"], hist["bucket_counts"]
            ):
                cumulative += bucket
                label = _format_value(float(bound))
                samples.append(
                    f'{metric}_bucket{{le="{label}"}} {cumulative}'
                )
            cumulative += hist["bucket_counts"][len(hist["le"])]
            samples.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            samples.append(f"{metric}_sum {_format_value(hist['sum'])}")
            samples.append(f"{metric}_count {hist['count']}")
            emit(metric, "histogram", samples)
    for key in sorted(extra or {}):
        metric = _metric_name(namespace, "service", key)
        emit(metric, "gauge", [f"{metric} {_format_value(extra[key])}"])
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes one exporter's scrapes; never logs to stderr."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter = self.server.exporter
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(
                    exporter.snapshot(),
                    exporter.extra_metrics(),
                    namespace=exporter.namespace,
                ).encode("utf-8")
                # The exporter's own health joins the exposition, so a
                # scraper can alert on scrape failures it didn't see.
                ns = exporter.namespace
                body += (
                    f"# TYPE {ns}_exporter_scrape_errors counter\n"
                    f"{ns}_exporter_scrape_errors "
                    f"{exporter.scrape_errors}\n"
                ).encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/metrics.json":
                body = json.dumps(
                    {
                        "registry": exporter.snapshot(),
                        "service": exporter.extra_metrics(),
                        "exporter": {
                            "scrape_count": exporter.scrape_count,
                            "scrape_errors": exporter.scrape_errors,
                        },
                    },
                    indent=1,
                    default=str,
                ).encode("utf-8")
                content_type = "application/json"
            elif path == "/healthz":
                error = exporter.last_scrape_error
                if error is None:
                    body = b"ok\n"
                else:
                    body = f"degraded: {error}\n".encode("utf-8")
                content_type = "text/plain; charset=utf-8"
            else:
                self.send_error(404, "unknown path")
                return
        except Exception as exc:
            # A malformed snapshot or a failing extra_metrics callable
            # must not kill the serving thread: count it, remember it
            # for /healthz, answer 500, and keep serving.
            exporter._record_scrape_error(exc)
            self.send_error(500, "scrape failed")
            return
        # Count (and clear degradation) *before* the body goes on the
        # wire: the scrape succeeded once the body rendered, and a
        # client that saw this response must not race a stale
        # "degraded" out of /healthz while this thread is still
        # between write and bookkeeping.
        if path in ("/metrics", "/metrics.json"):
            exporter._count_scrape()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        pass  # scrapes are not worth a stderr line each


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    exporter: "MetricsExporter"


class MetricsExporter:
    """Serve a registry (plus optional extra scalars) over HTTP.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to expose; a fresh empty one if
        omitted (useful for tests).
    extra_metrics:
        Optional zero-argument callable returning a flat ``name ->
        number`` mapping, re-evaluated per scrape.  The serving layer
        passes ``service.metrics`` here, which is what makes the
        endpoint's totals match the in-process API by construction.
    host, port:
        Bind address; ``port=0`` (default) picks an ephemeral port,
        readable from :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        extra_metrics: Optional[Callable[[], Mapping[str, float]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._extra_metrics = extra_metrics
        self.host = host
        self.port = port
        self.namespace = namespace
        self.scrape_count = 0
        #: Scrape attempts that raised in the handler (malformed
        #: snapshot, failing ``extra_metrics``) — answered 500 instead
        #: of killing the serving thread.
        self.scrape_errors = 0
        self._last_scrape_error: Optional[str] = None
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- scrape plumbing ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def extra_metrics(self) -> Mapping[str, float]:
        if self._extra_metrics is None:
            return {}
        return self._extra_metrics()

    def _count_scrape(self) -> None:
        with self._lock:
            self.scrape_count += 1
            # A successful scrape clears degradation: /healthz reports
            # the *current* state, not a latched one.
            self._last_scrape_error = None

    def _record_scrape_error(self, exc: BaseException) -> None:
        with self._lock:
            self.scrape_errors += 1
            self._last_scrape_error = (
                f"{type(exc).__name__}: {exc}"
            )

    @property
    def last_scrape_error(self) -> Optional[str]:
        """``None`` when healthy, else the last failure (cleared by the
        next successful scrape) — what ``/healthz`` reports."""
        with self._lock:
            return self._last_scrape_error

    def wait_for_scrapes(self, count: int, timeout: float) -> bool:
        """Block until at least ``count`` scrapes landed (or timeout).

        Lets the load harness linger just long enough for an external
        scraper (the CI curl smoke) to observe a live run.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self.scrape_count >= count:
                    return True
            time.sleep(0.05)
        with self._lock:
            return self.scrape_count >= count

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("exporter already started")
        server = _Server((self.host, self.port), _Handler)
        server.exporter = self
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name=f"metrics-exporter:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
