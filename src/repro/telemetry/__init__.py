"""Unified observability: metrics registry, tracing, exposition, load.

One subsystem threaded through every layer of the reproduction:

* :mod:`repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms with the same pure-merge semantics as
  :class:`~repro.mapreduce.counters.Counters`, plus the one
  nearest-rank :func:`~repro.telemetry.metrics.percentile` helper;
* :mod:`repro.telemetry.trace` — span trees (job → phase → task;
  flush → admit → re-converge) exported as JSON span logs and rendered
  by ``repro trace``;
* :mod:`repro.telemetry.exporter` — a stdlib HTTP ``/metrics``
  endpoint (Prometheus text format + JSON snapshot);
* :mod:`repro.telemetry.loadgen` — a seeded Zipf-skewed event
  generator and closed-loop driver for the online matching service.
  (Imported explicitly as ``repro.telemetry.loadgen``, not re-exported
  here: it depends on :mod:`repro.service`, which depends on the
  mapreduce layer, which imports this package — re-exporting it would
  close that cycle.)

The mapreduce layer imports only :mod:`~repro.telemetry.metrics`, so
this package must stay free of imports back into the rest of
``repro`` apart from that leaf.
"""

from .exporter import MetricsExporter, render_prometheus
from .metrics import (
    COUNT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIMING_BUCKETS,
    latency_summary_ms,
    percentile,
)
from .trace import Span, Tracer, load_spans, render_spans

__all__ = [
    "COUNT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsExporter",
    "MetricsRegistry",
    "Span",
    "TIMING_BUCKETS",
    "Tracer",
    "latency_summary_ms",
    "load_spans",
    "percentile",
    "render_prometheus",
    "render_spans",
]
