"""Lightweight tracing: span trees over jobs, phases, tasks, flushes.

A :class:`Tracer` records a tree of :class:`Span` objects — ``job →
phase → task`` on the batch plane, ``flush → admit → reconverge`` on
the serving plane — with parent ids, wall-clock durations, and free-form
attributes.  The tree is exported as a JSON span log per run
(``--trace PATH`` on the CLI) and rendered back as an indented timing
tree by ``repro trace <span-log.json>``.

Design constraints, in order:

* **Zero cost when off.**  The runtime's tracer defaults to ``None``
  and every instrumentation site guards on it; no span objects, no
  clock reads, no per-task timing wrappers unless a tracer is attached.
* **Backend-agnostic.**  Per-task durations are measured by wrapping
  the picklable task callables (see ``_timed_call`` in the runtime), so
  the same span shapes come back from serial, thread, and process
  executors.  Span construction itself happens driver-side only — the
  tracer is never shipped to workers.
* **No global state.**  A tracer is an ordinary object handed to the
  runtime; two runtimes can trace independently in one process.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "load_spans", "render_spans"]

_FORMAT_VERSION = 1


@dataclass
class Span:
    """One timed node in the trace tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    start: Optional[float] = None
    end: Optional[float] = None
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock duration: explicit for leaf records, measured
        start→end for context-managed spans, ``None`` while open."""
        if self.duration is not None:
            return self.duration
        if self.start is not None and self.end is not None:
            return self.end - self.start
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            kind=payload.get("kind", "span"),
            start=payload.get("start"),
            end=payload.get("end"),
            duration=payload.get("duration"),
            attrs=dict(payload.get("attrs", {})),
        )


class Tracer:
    """Collects a span tree for one run.

    Use :meth:`span` as a context manager around timed regions;
    :meth:`record` for leaf spans whose duration was measured elsewhere
    (per-task seconds returned from an executor).  Parentage follows
    the stack of open spans, so nesting falls out of call structure.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1
        self._stack: List[int] = []

    def _current_parent(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs: Any) -> Iterator[Span]:
        """Open a timed span; closes (records ``end``) on exit."""
        node = Span(
            span_id=self._next_id,
            parent_id=self._current_parent(),
            name=name,
            kind=kind,
            start=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(node)
        self._stack.append(node.span_id)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            self._stack.pop()

    def record(
        self, name: str, kind: str = "task", seconds: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Append a leaf span with an externally measured duration."""
        node = Span(
            span_id=self._next_id,
            parent_id=self._current_parent(),
            name=name,
            kind=kind,
            duration=seconds,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(node)
        return node

    def export(self, path: str) -> int:
        """Write the span log as JSON; returns the span count."""
        payload = {
            "version": _FORMAT_VERSION,
            "spans": [span.to_dict() for span in self.spans],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        return len(self.spans)


def load_spans(path: str) -> List[Span]:
    """Read a span log written by :meth:`Tracer.export`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported span log version: {version!r}")
    return [Span.from_dict(entry) for entry in payload.get("spans", [])]


def render_spans(spans: List[Span], max_tasks_per_parent: int = 4) -> str:
    """Render a span list as an indented timing tree.

    Task-kind leaves are elided past ``max_tasks_per_parent`` per
    parent (a 64-split map phase should not print 64 lines); the elided
    remainder is summarized with its aggregate seconds.
    """
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.span_id)

    lines: List[str] = []

    def describe(span: Span) -> str:
        seconds = span.seconds
        timing = f"{seconds * 1000:.2f}ms" if seconds is not None else "open"
        attrs = ""
        if span.attrs:
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f"  [{rendered}]"
        return f"{span.name} ({span.kind}) {timing}{attrs}"

    def walk(parent: Optional[int], depth: int) -> None:
        siblings = children.get(parent, [])
        tasks = [s for s in siblings if s.kind == "task"]
        shown_tasks = set(
            id(s) for s in tasks[:max_tasks_per_parent]
        ) if len(tasks) > max_tasks_per_parent else set(id(s) for s in tasks)
        elided = [s for s in tasks if id(s) not in shown_tasks]
        for span in siblings:
            if span.kind == "task" and id(span) not in shown_tasks:
                continue
            lines.append("  " * depth + describe(span))
            walk(span.span_id, depth + 1)
        if elided:
            total = sum(s.seconds or 0.0 for s in elided)
            lines.append(
                "  " * depth
                + f"... {len(elided)} more tasks ({total * 1000:.2f}ms total)"
            )

    walk(None, 0)
    return "\n".join(lines)
