"""The unified metrics registry: counters, gauges, fixed-bucket histograms.

The paper's efficiency story is told in meters — MapReduce rounds,
``O(|E|)`` shuffled records per job — and until this module those meters
were scattered: :class:`~repro.mapreduce.counters.Counters` knew only
integers, the runtime's phase timings were a bare dict, and the serving
layer hand-rolled its latency percentiles.  :class:`MetricsRegistry`
gives every layer one vocabulary:

* **counters** — monotone integers with pure-merge semantics (delegated
  to any object with the :class:`~repro.mapreduce.counters.Counters`
  API, so the runtime's existing counter instance *is* the registry's
  counter store and every established contract carries over unchanged);
* **gauges** — float accumulators for wall-clock meters (phase seconds,
  flush-stage seconds).  Gauges are *always volatile*: they never
  participate in the bit-identical determinism contract, exactly like
  the ``phase_timings`` dict they replace;
* **histograms** — fixed-bucket distributions with the same pure-merge
  semantics as counters: bucket counts are plain integer additions,
  commutative and associative, so merged totals are identical across
  execution backends and independent of task completion order
  (property-tested in ``tests/telemetry/test_metrics.py``).  A
  histogram may be flagged ``volatile=True`` (timing distributions,
  stripped by ``strip_volatile_counters`` alongside the spill counters)
  and may ``keep_samples`` for exact percentiles (the serving layer's
  flush-latency list lives here).

Determinism contract.  Deterministic (non-volatile) histograms observe
only *data-dependent* quantities — record counts, never seconds — and
the runtime observes them driver-side in task-index order, so registry
snapshots minus the volatile sections are bit-identical across
backends, filesystems, and spill thresholds, extending the counter
contract to distributions.

This module imports nothing from the rest of the package (the runtime
imports *it*), so it can be threaded through any layer without cycles.

:func:`percentile` is the one nearest-rank implementation shared by the
serving metrics, the load harness, and the distribution stats — the
three layers that previously each hand-rolled their own.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "COUNT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIMING_BUCKETS",
    "latency_summary_ms",
    "percentile",
]

#: Default bucket upper bounds for wall-clock histograms, in seconds
#: (Prometheus-style decades from 1ms to 10s; +Inf is implicit).
TIMING_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for record-count histograms (1-2-5
#: decades; +Inf is implicit).  Counts are data-dependent, so these
#: histograms may participate in the determinism contract.
COUNT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty).

    The single implementation behind the serving metrics' p50/p95/p99,
    the load harness, and the dataset tail summaries.  ``values`` need
    not be sorted; pass ``q`` in ``[0, 1]``.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def latency_summary_ms(seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 of a seconds sample, in milliseconds.

    The shape every serving surface reports (``MatchingService.
    metrics()``, the load harness, ``BENCH_serving.json``).
    """
    ordered = sorted(seconds)
    return {
        "latency_p50_ms": percentile(ordered, 0.50) * 1000.0,
        "latency_p95_ms": percentile(ordered, 0.95) * 1000.0,
        "latency_p99_ms": percentile(ordered, 0.99) * 1000.0,
    }


class Gauge:
    """A float meter: ``set`` for levels, ``add`` for accumulators.

    Gauges are wall-clock-shaped (phase seconds, queue depths) and are
    therefore always volatile — :func:`~repro.mapreduce.state.
    strip_volatile_counters` drops the whole gauge section before any
    bit-identical comparison.  ``merge`` adds values (accumulator
    semantics), keeping registry merges commutative.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        """Replace the gauge's value (levels: queue depth, liveness)."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Accumulate into the gauge (meters: seconds spent per phase)."""
        self.value += delta

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in by addition (accumulator semantics)."""
        self.value += other.value

    def __getstate__(self) -> float:
        return self.value

    def __setstate__(self, state: float) -> None:
        self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value!r})"


class Histogram:
    """A fixed-bucket histogram with pure-merge semantics.

    Parameters
    ----------
    upper_bounds:
        Ascending bucket upper bounds (``le`` semantics: bucket ``i``
        counts observations ``<= upper_bounds[i]``); an overflow
        (``+Inf``) bucket is implicit.  Buckets are fixed at creation —
        merging requires identical bounds, which is what makes bucket
        totals pure integer additions (commutative, associative,
        deterministic under the runtime's task-index merge order).
    volatile:
        ``True`` for wall-clock distributions: stripped by
        ``strip_volatile_counters`` before bit-identical comparisons,
        like the spill counters.  Count-valued histograms stay
        ``False`` and join the determinism contract.
    keep_samples:
        Retain every raw observation (in observe/merge order) so
        :meth:`percentile` is exact instead of bucket-quantized.  Used
        for the serving flush-latency sample, which is small; leave off
        for per-record distributions.
    """

    __slots__ = (
        "upper_bounds",
        "bucket_counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "volatile",
        "samples",
    )

    def __init__(
        self,
        upper_bounds: Sequence[float] = TIMING_BUCKETS,
        volatile: bool = False,
        keep_samples: bool = False,
    ) -> None:
        bounds = tuple(float(b) for b in upper_bounds)
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly ascending: {bounds}"
            )
        self.upper_bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.volatile = volatile
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def spec(self) -> Tuple:
        """The identity a merge partner must match."""
        return (self.upper_bounds, self.volatile, self.samples is not None)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.upper_bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.samples is not None:
            self.samples.append(value)

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's buckets into this one.

        Bucket counts and ``count`` are integer additions — commutative
        and associative, so totals are independent of merge order.
        ``total`` is a float sum: deterministic under a deterministic
        merge order (the runtime merges task results in task-index
        order), bit-identical only then.
        """
        if self.spec() != other.spec():
            raise ValueError(
                f"cannot merge histograms with different specs: "
                f"{self.spec()} vs {other.spec()}"
            )
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.total += other.total
        for value in (other.minimum,):
            if value is not None and (
                self.minimum is None or value < self.minimum
            ):
                self.minimum = value
        for value in (other.maximum,):
            if value is not None and (
                self.maximum is None or value > self.maximum
            ):
                self.maximum = value
        if self.samples is not None and other.samples is not None:
            self.samples.extend(other.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile: exact over kept samples, else the
        upper bound of the bucket holding the rank (the overflow bucket
        reports the observed maximum)."""
        if self.samples is not None:
            return percentile(self.samples, q)
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank:
                if index < len(self.upper_bounds):
                    return self.upper_bounds[index]
                break
        return self.maximum if self.maximum is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict export (what the exporter and tests consume)."""
        return {
            "le": list(self.upper_bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "volatile": self.volatile,
        }

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "upper_bounds": self.upper_bounds,
            "bucket_counts": self.bucket_counts,
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "volatile": self.volatile,
            "samples": self.samples,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.total:.6g}, "
            f"buckets={len(self.upper_bounds)}, "
            f"volatile={self.volatile})"
        )


class _SimpleCounters:
    """Minimal stand-in when no external counter store is supplied.

    Implements exactly the :class:`~repro.mapreduce.counters.Counters`
    surface the registry relies on, without importing it (this module
    must stay import-cycle-free — the mapreduce layer imports us).
    """

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = {}

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        names = self._groups.setdefault(group, {})
        names[name] = names.get(name, 0) + amount

    def get(self, group: str, name: str) -> int:
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        return dict(self._groups.get(group, {}))

    def merge(self, other: Any) -> None:
        for group, names in other.snapshot().items():
            mine = self._groups.setdefault(group, {})
            for name, value in names.items():
                mine[name] = mine.get(name, 0) + value

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {g: dict(names) for g, names in self._groups.items()}


class MetricsRegistry:
    """One ``group -> name`` namespace over all three metric kinds.

    Parameters
    ----------
    counters:
        Optional external counter store (any object with the
        :class:`~repro.mapreduce.counters.Counters` API).  The runtime
        passes its own instance, so ``registry.increment`` and the
        legacy ``runtime.counters.increment`` are the *same* counters —
        migration without a parallel universe.
    """

    def __init__(self, counters: Any = None) -> None:
        self.counters = counters if counters is not None else _SimpleCounters()
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    # -- counters (delegation) ---------------------------------------------

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Increment a counter (delegates to the counter store)."""
        self.counters.increment(group, name, amount)

    def get(self, group: str, name: str) -> int:
        """Read a counter (0 if never incremented)."""
        return self.counters.get(group, name)

    # -- gauges ------------------------------------------------------------

    def gauge(self, group: str, name: str) -> Gauge:
        """The gauge for ``(group, name)``, created on first use."""
        key = (group, name)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    # -- histograms --------------------------------------------------------

    def histogram(
        self,
        group: str,
        name: str,
        upper_bounds: Sequence[float] = TIMING_BUCKETS,
        volatile: bool = False,
        keep_samples: bool = False,
    ) -> Histogram:
        """The histogram for ``(group, name)``, created on first use.

        A second caller must agree on the spec (bounds / volatility /
        sample retention) — silently divergent buckets would make the
        pure-merge guarantee meaningless.
        """
        key = (group, name)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                upper_bounds, volatile=volatile, keep_samples=keep_samples
            )
            return histogram
        requested = (
            tuple(float(b) for b in upper_bounds),
            volatile,
            keep_samples,
        )
        if histogram.spec() != requested:
            raise ValueError(
                f"histogram {group}.{name} already registered with "
                f"spec {histogram.spec()}, requested {requested}"
            )
        return histogram

    def observe(
        self,
        group: str,
        name: str,
        value: float,
        upper_bounds: Sequence[float] = TIMING_BUCKETS,
        volatile: bool = False,
        keep_samples: bool = False,
    ) -> None:
        """Shorthand: fetch-or-create the histogram and observe once."""
        self.histogram(
            group,
            name,
            upper_bounds,
            volatile=volatile,
            keep_samples=keep_samples,
        ).observe(value)

    # -- merge + export ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters, gauges, histograms).

        Counter and bucket totals are commutative by construction;
        callers who need bit-identical float sums must merge in a
        deterministic order, as the runtime does for task results.
        """
        self.counters.merge(other.counters)
        for key, gauge in other._gauges.items():
            self.gauge(*key).merge(gauge)
        for (group, name), histogram in other._histograms.items():
            mine = self.histogram(
                group,
                name,
                histogram.upper_bounds,
                volatile=histogram.volatile,
                keep_samples=histogram.samples is not None,
            )
            mine.merge(histogram)

    def gauges(self) -> Iterator[Tuple[str, str, Gauge]]:
        """Iterate ``(group, name, gauge)``, sorted."""
        for group, name in sorted(self._gauges):
            yield group, name, self._gauges[(group, name)]

    def histograms(self) -> Iterator[Tuple[str, str, Histogram]]:
        """Iterate ``(group, name, histogram)``, sorted."""
        for group, name in sorted(self._histograms):
            yield group, name, self._histograms[(group, name)]

    def snapshot(self) -> Dict[str, Any]:
        """Export everything as plain nested dictionaries.

        The shape (``counters`` / ``gauges`` / ``histograms`` sections)
        is what :func:`~repro.mapreduce.state.strip_volatile_counters`
        recognizes to strip the volatile parts before bit-identical
        comparisons.
        """
        gauges: Dict[str, Dict[str, float]] = {}
        for group, name, gauge in self.gauges():
            gauges.setdefault(group, {})[name] = gauge.value
        histograms: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for group, name, histogram in self.histograms():
            histograms.setdefault(group, {})[name] = histogram.snapshot()
        return {
            "counters": self.counters.snapshot(),
            "gauges": gauges,
            "histograms": histograms,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
