"""Command-line interface: generate datasets, join, match, experiment.

The CLI mirrors how the paper's system would be operated as batch
jobs::

    repro generate flickr-small --scale 0.2 --out /tmp/fs
    repro join /tmp/fs --sigma 4.0 --method mapreduce --backend threads
    repro join /tmp/fs --sigma 4.0 --method mapreduce --fs disk \
        --spill-threshold 1000
    repro match /tmp/fs --sigma 4.0 --alpha 2.0 --algorithm greedy_mr \
        --backend processes --out /tmp/fs/matching.tsv
    repro serve /tmp/fs --sigma 4.0 --events 200 --batch-size 32
    repro experiment --only fig5 --scale 0.5

``--backend {serial,threads,processes}`` selects the execution backend
of the simulated cluster for the MapReduce paths; ``--fs
{memory,disk}`` selects its storage backend (inter-job datasets and
parked resident state in RAM or as on-disk JSONL), and
``--spill-threshold N`` bounds the shuffle buffers — map outputs
beyond ``N`` records per reduce partition are sorted and spilled to
disk runs, then k-way merged at reduce time — as well as the resident
state store's parking point.  ``match --delta/--no-delta`` switches
the ``*_mr`` algorithms between the delta iteration plane (resident
node state, only changed records per round) and the paper's
full-state-per-round formulation.  Results are bit-identical across
all four knobs; the spill counters report the extra IO.

``generate`` persists the item/consumer vectors, activity, and quality
signals as TSV (via :mod:`repro.mapreduce.storage.tsvio`); ``join``
materializes candidate edges; ``match`` builds the Problem-1 instance
(capacities per §4) and writes the matched edges; ``serve`` keeps the
matching *warm* — it bootstraps the online service from the corpus
graph and streams synthetic live events (arrivals, re-scores, budget
retunes, retirements) through micro-batched incremental
re-convergence, reporting coalescing, latency percentiles, and the
cold-batch verification; ``experiment`` delegates to
:mod:`repro.experiments.__main__`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .datasets import load_dataset
from .datasets.registry import DATASETS
from .graph import BipartiteGraph, write_capacities, write_edges
from .mapreduce import (
    EXECUTOR_BACKENDS,
    FILESYSTEM_BACKENDS,
    MapReduceRuntime,
)
from .mapreduce.storage import (
    read_scalars,
    read_vectors,
    write_scalars,
    write_vectors,
)
from .matching import ALGORITHMS, solve
from .simjoin import candidate_edges

__all__ = ["main", "build_parser"]


def _spill_summary(runtime: Optional[MapReduceRuntime]) -> str:
    """A one-line spill report, or '' when nothing spilled."""
    if runtime is None:
        return ""
    spilled = runtime.counters.get("runtime", "spilled_records")
    if not spilled:
        return ""
    files = runtime.counters.get("runtime", "spill_files")
    size = runtime.counters.get("runtime", "spilled_bytes")
    return (
        f"shuffle spilled {spilled} records across {files} runs "
        f"({size} bytes)"
    )


def _profile_summary(runtime: Optional[MapReduceRuntime]) -> str:
    """Per-phase wall-clock report for ``--profile``, or '' without a
    simulated cluster (the centralized engines have no phases)."""
    if runtime is None:
        return "phase timings: n/a (no simulated cluster in this run)"
    timings = runtime.phase_timings
    spill = timings.get("spill", 0.0)
    spill_note = f" (spill {spill:.3f}s)" if spill else ""
    return (
        f"phase timings: map {timings['map']:.3f}s | "
        f"shuffle {timings['shuffle']:.3f}s{spill_note} | "
        f"reduce {timings['reduce']:.3f}s "
        f"[{runtime.jobs_executed} jobs]"
    )


def _serve_profile_summary(runtime: MapReduceRuntime) -> str:
    """The serving variant of ``--profile``: cumulative across flushes.

    The phase gauges live on the runtime's metrics registry and
    accumulate over *every* flush's re-convergence jobs (the registry
    is the source of truth — nothing resets between flushes), and the
    matcher meters its admit/re-converge stages into the same registry,
    so the report covers the whole serving session including the
    earliest flushes.
    """
    admit = runtime.metrics.gauge("service", "admit_seconds").value
    reconverge = runtime.metrics.gauge(
        "service", "reconverge_seconds"
    ).value
    return (
        _profile_summary(runtime)
        + "\n"
        + f"flush stages (cumulative over all flushes): "
        f"admit {admit:.3f}s | reconverge {reconverge:.3f}s"
    )


def _make_tracer(args: argparse.Namespace):
    """A :class:`~repro.telemetry.Tracer` when ``--trace`` was given."""
    if not getattr(args, "trace", None):
        return None
    from .telemetry import Tracer

    return Tracer()


def _finish_trace(args: argparse.Namespace, tracer) -> None:
    if tracer is None:
        return
    count = tracer.export(args.trace)
    print(f"span log: {count} spans -> {args.trace}")


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    os.makedirs(args.out, exist_ok=True)
    write_vectors(os.path.join(args.out, "items.tsv"), dataset.items)
    write_vectors(
        os.path.join(args.out, "consumers.tsv"), dataset.consumers
    )
    write_scalars(
        os.path.join(args.out, "activity.tsv"), dataset.consumer_activity
    )
    write_scalars(
        os.path.join(args.out, "quality.tsv"), dataset.item_quality
    )
    with open(
        os.path.join(args.out, "meta.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "name": dataset.name,
                "capacity_scheme": dataset.capacity_scheme,
                "seed": args.seed,
                "scale": args.scale,
            },
            handle,
        )
    print(
        f"wrote {dataset.num_items} items / "
        f"{dataset.num_consumers} consumers to {args.out}"
    )
    return 0


def _load_corpus(directory: str):
    items = read_vectors(os.path.join(directory, "items.tsv"))
    consumers = read_vectors(os.path.join(directory, "consumers.tsv"))
    with open(
        os.path.join(directory, "meta.json"), "r", encoding="utf-8"
    ) as handle:
        meta = json.load(handle)
    return items, consumers, meta


def _cmd_join(args: argparse.Namespace) -> int:
    items, consumers, _ = _load_corpus(args.corpus)
    runtime = None
    tracer = None
    if args.method == "mapreduce":
        tracer = _make_tracer(args)
        runtime = MapReduceRuntime(
            backend=args.backend,
            max_workers=args.workers,
            storage=args.fs,
            spill_threshold=args.spill_threshold,
            tracer=tracer,
            retry_policy=_make_retry_policy(args),
        )
    start = time.perf_counter()
    edges = candidate_edges(
        items, consumers, args.sigma, method=args.method, runtime=runtime
    )
    elapsed = time.perf_counter() - start
    out = args.out or os.path.join(args.corpus, "edges.tsv")
    write_edges(out, edges)
    engine = args.method
    if runtime is not None:
        engine = f"{args.method}/{runtime.backend}/{runtime.storage}"
    print(
        f"{len(edges)} candidate edges >= {args.sigma} "
        f"({engine}, {elapsed:.2f}s) -> {out}"
    )
    spill = _spill_summary(runtime)
    if spill:
        print(spill)
    if args.profile:
        print(_profile_summary(runtime))
    _finish_trace(args, tracer)
    if runtime is not None and runtime.storage == "disk":
        print(f"dfs root: {runtime.filesystem.root}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from .datasets.base import Dataset

    items, consumers, meta = _load_corpus(args.corpus)
    dataset = Dataset(
        name=meta["name"],
        items=items,
        consumers=consumers,
        consumer_activity=read_scalars(
            os.path.join(args.corpus, "activity.tsv")
        ),
        item_quality=read_scalars(
            os.path.join(args.corpus, "quality.tsv")
        ),
        capacity_scheme=meta["capacity_scheme"],
    )
    graph = dataset.graph(sigma=args.sigma, alpha=args.alpha)
    kwargs = {}
    if args.algorithm.startswith("stack"):
        kwargs["epsilon"] = args.epsilon
        kwargs["seed"] = args.seed
    runtime = None
    tracer = None
    if "_mr" in args.algorithm:
        # Only the MapReduce adaptations take a simulated cluster; the
        # centralized solvers ignore the backend/storage choices.  On
        # the delta plane (the default) --fs backs the resident state
        # store, so node records park out-of-core between rounds once
        # --spill-threshold is exceeded; --spill-threshold also bounds
        # every round's shuffle on both planes.
        if args.fs != "memory" and not args.delta:
            print(
                f"note: --fs {args.fs} has little effect with "
                "--no-delta (the full-state drivers keep round state "
                "driver-side); --spill-threshold still applies"
            )
        tracer = _make_tracer(args)
        runtime = MapReduceRuntime(
            backend=args.backend,
            max_workers=args.workers,
            storage=args.fs,
            spill_threshold=args.spill_threshold,
            tracer=tracer,
            retry_policy=_make_retry_policy(args),
        )
        kwargs["runtime"] = runtime
        kwargs["delta"] = args.delta
    start = time.perf_counter()
    result = solve(graph, args.algorithm, **kwargs)
    elapsed = time.perf_counter() - start
    report = result.violations(graph.capacities())
    out = args.out or os.path.join(args.corpus, "matching.tsv")
    write_edges(out, result.matching.edges())
    print(
        f"{result.algorithm}: value={result.value:,.2f} "
        f"edges={len(result.matching)} rounds={result.rounds} "
        f"mr_jobs={result.mr_jobs} "
        f"avg_violation={report.average_violation:.4f} "
        f"({elapsed:.2f}s) -> {out}"
    )
    spill = _spill_summary(runtime)
    if spill:
        print(spill)
    if args.profile:
        print(_profile_summary(runtime))
    _finish_trace(args, tracer)
    if args.capacities_out:
        write_capacities(args.capacities_out, graph.capacities())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drive the online matching service over a synthetic live stream.

    Bootstraps an :class:`~repro.service.OnlineMatcher` from the
    corpus's Problem-1 graph (same ``--sigma``/``--alpha`` path as
    ``match``), then submits ``--events`` generated arrivals /
    re-scores / retunes / retirements through the asyncio facade's
    micro-batching and reports coalescing, latency percentiles,
    throughput, and the cold-batch verification.
    """
    import asyncio

    from .datasets.base import Dataset
    from .service import MatchingService, OnlineMatcher, synthetic_events

    items, consumers, meta = _load_corpus(args.corpus)
    dataset = Dataset(
        name=meta["name"],
        items=items,
        consumers=consumers,
        consumer_activity=read_scalars(
            os.path.join(args.corpus, "activity.tsv")
        ),
        item_quality=read_scalars(
            os.path.join(args.corpus, "quality.tsv")
        ),
        capacity_scheme=meta["capacity_scheme"],
    )
    graph = dataset.graph(sigma=args.sigma, alpha=args.alpha)
    events, _ = synthetic_events(graph, args.events, seed=args.seed)
    tracer = _make_tracer(args)
    runtime = MapReduceRuntime(
        backend=args.backend,
        max_workers=args.workers,
        storage=args.fs,
        spill_threshold=args.spill_threshold,
        tracer=tracer,
        retry_policy=_make_retry_policy(args),
    )
    matcher = OnlineMatcher(runtime=runtime, graph=graph)
    service = MatchingService(
        matcher,
        max_batch=args.batch_size,
        max_delay=args.max_delay_ms / 1000.0,
    )
    exporter = None
    if args.metrics_port is not None:
        from .telemetry import MetricsExporter

        exporter = MetricsExporter(
            registry=runtime.metrics,
            extra_metrics=service.metrics,
            port=args.metrics_port,
        ).start()
        print(
            f"metrics endpoint: {exporter.url}/metrics "
            f"(JSON at /metrics.json)"
        )

    async def drive():
        # Verification must run before close() releases the resident
        # stores, so it lives inside the service's lifetime.
        async with service:
            await asyncio.gather(
                *(service.submit_event(event) for event in events)
            )
            snap = await service.snapshot()
            check = matcher.verify() if args.verify else None
            return snap, check

    start = time.perf_counter()
    try:
        snapshot, verification = asyncio.run(drive())
    finally:
        if exporter is not None:
            exporter.stop()
    elapsed = time.perf_counter() - start
    metrics = service.metrics()
    print(
        f"serve: {metrics['events_admitted']:.0f} events admitted "
        f"({metrics['events_rejected']:.0f} rejected) in "
        f"{metrics['batches_flushed']:.0f} flushes "
        f"(coalescing x{metrics['coalescing_ratio']:.1f}) "
        f"over {elapsed:.2f}s"
    )
    print(
        f"matching: {snapshot['matched_edges']} edges "
        f"value={snapshot['value']:,.2f} across "
        f"{snapshot['nodes']} nodes / "
        f"{snapshot['candidate_edges']} candidate edges"
    )
    print(
        f"latency: p50={metrics['latency_p50_ms']:.1f}ms "
        f"p95={metrics['latency_p95_ms']:.1f}ms "
        f"p99={metrics['latency_p99_ms']:.1f}ms "
        f"throughput={metrics['throughput_events_per_s']:,.0f} ev/s "
        f"flushes/s={metrics['flushes_per_sec']:,.1f} "
        f"rounds={metrics['reconverge_rounds']:.0f}"
    )
    spill = _spill_summary(runtime)
    if spill:
        print(spill)
    if args.profile:
        print(_serve_profile_summary(runtime))
    _finish_trace(args, tracer)
    if verification is not None:
        identical, cold_value = verification
        status = "identical" if identical else "MISMATCH"
        print(
            f"cold-batch check: {status} "
            f"(cold value={cold_value:,.2f})"
        )
        if not identical:
            return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Deterministic chaos smoke over the whole recovery plane.

    For every fault-plan seed: run a b-matching workload on a runtime
    with injected task crashes / straggler delays / transient storage
    errors and a retry budget, and check the result, job log, and
    volatile-stripped counters are bit-identical to the fault-free
    run; then stream a synthetic event batch through an
    :class:`~repro.service.OnlineMatcher` under mid-flush faults and
    poisoned admissions and check the cold-batch verification.  Exits
    1 on any divergence — or if a seed injected nothing (a chaos run
    that can't fail proves nothing).
    """
    import random

    from .graph import Graph
    from .mapreduce import (
        FaultPlan,
        RetryPolicy,
        strip_volatile_counters,
    )
    from .service import OnlineMatcher, synthetic_events

    def build_graph() -> Graph:
        rng = random.Random(args.seed)
        graph = Graph()
        items = [f"i{k}" for k in range(args.nodes)]
        consumers = [f"c{k}" for k in range(args.nodes)]
        for node in items + consumers:
            graph.add_node(node, rng.randint(1, 3))
        for u in items:
            for v in rng.sample(consumers, min(3, len(consumers))):
                graph.add_edge(u, v, round(rng.uniform(0.1, 5.0), 3))
        return graph

    def make_runtime(**kwargs) -> MapReduceRuntime:
        return MapReduceRuntime(
            backend=args.backend,
            max_workers=args.workers,
            storage=args.fs,
            spill_threshold=args.spill_threshold,
            **kwargs,
        )

    def exercise_storage(runtime: MapReduceRuntime) -> List:
        """A read/write burst through the (possibly faulty) filesystem."""
        outputs = []
        for index in range(8):
            path = f"/chaos/dataset-{index}"
            runtime.filesystem.write(
                path, [(k, k * index) for k in range(4)], overwrite=True
            )
            outputs.append(runtime.filesystem.read(path))
        return outputs

    graph = build_graph()
    policy = RetryPolicy(
        max_attempts=args.max_task_attempts or 3,
        task_timeout=args.task_timeout,
    )
    seeds = [int(token) for token in args.seeds.split(",") if token]

    baseline_rt = make_runtime()
    baseline_data = exercise_storage(baseline_rt)
    baseline = solve(graph, "greedy_mr", runtime=baseline_rt, delta=True)
    baseline_counters = strip_volatile_counters(
        baseline_rt.counters.snapshot()
    )
    failures = 0
    for seed in seeds:
        with FaultPlan(
            seed=seed,
            crash_rate=args.crash_rate,
            delay_rate=args.delay_rate,
            delay_seconds=0.0,
            io_rate=args.io_rate,
            worker_kill_rate=args.worker_kill_rate,
            frame_drop_rate=args.frame_drop_rate,
        ) as plan:
            runtime = make_runtime(retry_policy=policy, fault_plan=plan)
            data = exercise_storage(runtime)
            result = solve(
                graph, "greedy_mr", runtime=runtime, delta=True
            )
            faults = runtime.counters.group("faults")
            injected = faults.get("injected_total", 0)
            identical = (
                data == baseline_data
                and sorted(result.matching.edges())
                == sorted(baseline.matching.edges())
                and runtime.job_log == baseline_rt.job_log
                and strip_volatile_counters(
                    runtime.counters.snapshot()
                )
                == baseline_counters
            )
        status = "bit-identical" if identical else "DIVERGED"
        if not identical or injected == 0:
            failures += 1
            if injected == 0:
                status += " (but zero faults injected)"
        print(
            f"runtime seed {seed}: {status} — injected {injected} "
            f"(crashes {faults.get('injected_crash', 0)}, "
            f"delays {faults.get('injected_delay', 0)}, "
            f"io {faults.get('injected_io', 0)}, "
            f"kills {faults.get('injected_worker_kill', 0)}, "
            f"drops {faults.get('injected_drop_frame', 0)}), "
            f"task retries {faults.get('task.retries', 0)}, "
            f"resubmits {faults.get('task.resubmits', 0)}, "
            f"respawns {faults.get('pool.respawns', 0)}, "
            f"storage retries {faults.get('storage.retries', 0)}"
        )

    events, _ = synthetic_events(graph, args.events, seed=args.seed)
    for seed in seeds:
        with FaultPlan(
            seed=seed,
            flush_rate=args.flush_rate,
            poison_rate=args.poison_rate,
        ) as plan:
            runtime = make_runtime(retry_policy=policy, fault_plan=plan)
            matcher = OnlineMatcher(runtime=runtime, graph=graph)
            for start in range(0, len(events), 8):
                matcher.flush(list(events[start : start + 8]))
            identical, _ = matcher.verify()
            faults = runtime.counters.group("faults")
            injected = faults.get("injected_total", 0)
            matcher.close()
        status = "verified" if identical else "MISMATCH"
        if not identical or injected == 0:
            failures += 1
            if injected == 0:
                status += " (but zero faults injected)"
        print(
            f"service seed {seed}: {status} — injected {injected} "
            f"(flush {faults.get('injected_flush', 0)}, "
            f"poison {faults.get('injected_poison', 0)}), "
            f"flush retries {faults.get('flush.retries', 0)}, "
            f"dead-lettered {faults.get('events.dead_lettered', 0)}"
        )
    if failures:
        print(f"chaos: {failures} run(s) diverged or injected nothing")
        return 1
    print(
        f"chaos: all {2 * len(seeds)} runs recovered bit-identically "
        f"under injected faults"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a span log (written via ``--trace``) as a timing tree."""
    from .telemetry import load_spans, render_spans

    spans = load_spans(args.span_log)
    if not spans:
        print(f"{args.span_log}: no spans recorded")
        return 0
    print(render_spans(spans, max_tasks_per_parent=args.max_tasks))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    argv: List[str] = ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.only:
        argv += ["--only", args.only]
    return experiments_main(argv)


def _nonnegative_int(text: str) -> int:
    """argparse type for --spill-threshold: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {value}"
        )
    return value


def _add_cluster_options(
    parser: argparse.ArgumentParser, applies_to: str
) -> None:
    """The simulated-cluster knobs shared by ``join`` and ``match``."""
    parser.add_argument(
        "--backend",
        default="serial",
        choices=EXECUTOR_BACKENDS,
        help="execution backend for the simulated cluster "
        f"({applies_to})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the parallel backends: pool size for "
        "threads/processes, daemon-fleet size for cluster (default: "
        f"backend-specific, bounded by CPU count; {applies_to})",
    )
    parser.add_argument(
        "--fs",
        default="memory",
        choices=FILESYSTEM_BACKENDS,
        help="storage backend for inter-job datasets: 'memory' keeps "
        "them in RAM, 'disk' persists them as JSONL under a "
        f"temporary dfs root ({applies_to})",
    )
    parser.add_argument(
        "--spill-threshold",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="external shuffle: sort-and-spill a reduce partition's "
        "map outputs to disk runs once its buffer exceeds N records "
        "(default: keep the whole shuffle in memory; results are "
        "identical either way)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-clock (map/shuffle/spill/reduce) "
        "accumulated over every MapReduce job of the run "
        f"({applies_to})",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a job->phase->task span tree for every MapReduce "
        "job of the run and write it as a JSON span log to PATH "
        f"(render it with 'repro trace PATH'; {applies_to})",
    )
    parser.add_argument(
        "--max-task-attempts",
        type=int,
        default=None,
        metavar="N",
        help="retry failed task attempts, storage operations, and "
        "flushes up to N total attempts each (default 1: no retries; "
        "failed attempts discard their counters, so totals stay "
        f"bit-identical; {applies_to})",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="straggler mitigation on parallel backends: tasks still "
        "running after SECONDS get a speculative backup attempt and "
        f"the first finisher wins ({applies_to})",
    )


def _make_retry_policy(args: argparse.Namespace):
    """A :class:`~repro.mapreduce.faults.RetryPolicy` from the CLI
    recovery knobs, or ``None`` when both are unset."""
    attempts = getattr(args, "max_task_attempts", None)
    timeout = getattr(args, "task_timeout", None)
    if attempts is None and timeout is None:
        return None
    from .mapreduce import RetryPolicy

    return RetryPolicy(
        max_attempts=attempts if attempts is not None else 1,
        task_timeout=timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Social Content Matching in MapReduce (VLDB 2011) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic dataset to a directory"
    )
    generate.add_argument("dataset", choices=sorted(DATASETS))
    generate.add_argument("--out", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.set_defaults(func=_cmd_generate)

    join = sub.add_parser(
        "join", help="compute candidate edges for a generated corpus"
    )
    join.add_argument("corpus", help="directory written by 'generate'")
    join.add_argument("--sigma", type=float, required=True)
    join.add_argument(
        "--method",
        default="auto",
        choices=("auto", "exact", "scipy", "mapreduce"),
    )
    _add_cluster_options(join, "mapreduce method only")
    join.add_argument("--out")
    join.set_defaults(func=_cmd_join)

    match = sub.add_parser(
        "match", help="solve the b-matching for a generated corpus"
    )
    match.add_argument("corpus", help="directory written by 'generate'")
    match.add_argument("--sigma", type=float, required=True)
    match.add_argument("--alpha", type=float, default=2.0)
    match.add_argument(
        "--algorithm", default="greedy_mr", choices=sorted(ALGORITHMS)
    )
    match.add_argument("--epsilon", type=float, default=1.0)
    match.add_argument(
        "--delta",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the *_mr algorithms on the delta iteration plane "
        "(resident node state, only changed records per round; the "
        "default) or, with --no-delta, re-ship the full state every "
        "round as the paper formulates it — results are bit-identical",
    )
    _add_cluster_options(match, "*_mr algorithms only")
    match.add_argument("--seed", type=int, default=0)
    match.add_argument("--out")
    match.add_argument("--capacities-out")
    match.set_defaults(func=_cmd_match)

    serve = sub.add_parser(
        "serve",
        help="drive the online matching service over a synthetic "
        "live event stream",
    )
    serve.add_argument("corpus", help="directory written by 'generate'")
    serve.add_argument("--sigma", type=float, required=True)
    serve.add_argument("--alpha", type=float, default=2.0)
    serve.add_argument(
        "--events",
        type=int,
        default=50,
        help="number of synthetic live events to stream (default 50)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="N",
        help="flush the pending micro-batch at N events (default 16)",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="flush at latest MS milliseconds after the first pending "
        "event (default 50)",
    )
    serve.add_argument(
        "--verify",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="check the final incremental matching against a cold "
        "batch on the final graph (default on; exits 1 on mismatch)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the metrics registry over HTTP on 127.0.0.1:PORT "
        "while events stream: Prometheus text format at /metrics, "
        "JSON at /metrics.json (0 picks an ephemeral port)",
    )
    _add_cluster_options(serve, "all re-convergences")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection smoke: inject seeded "
        "crashes/delays/storage errors and prove recovery keeps "
        "results bit-identical",
    )
    chaos.add_argument(
        "--seeds",
        default="1,2,3",
        help="comma-separated fault-plan seeds (default 1,2,3; each "
        "seed reproduces one whole failure scenario)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed for the synthetic graph and event stream",
    )
    chaos.add_argument(
        "--nodes",
        type=int,
        default=12,
        help="graph size: N items + N consumers (default 12)",
    )
    chaos.add_argument(
        "--events",
        type=int,
        default=24,
        help="synthetic live events for the service smoke (default 24)",
    )
    chaos.add_argument("--crash-rate", type=float, default=0.3)
    chaos.add_argument("--delay-rate", type=float, default=0.15)
    chaos.add_argument("--io-rate", type=float, default=0.2)
    chaos.add_argument("--flush-rate", type=float, default=0.5)
    chaos.add_argument("--poison-rate", type=float, default=0.1)
    chaos.add_argument(
        "--worker-kill-rate",
        type=float,
        default=0.0,
        help="cluster-backend fault kind: probability a task's first "
        "attempt hard-kills its worker daemon mid-execution "
        "(degrades to a plain injected crash on other backends)",
    )
    chaos.add_argument(
        "--frame-drop-rate",
        type=float,
        default=0.0,
        help="cluster-backend fault kind: probability a task's reply "
        "frame is dropped on the wire after the work completed "
        "(degrades to a plain injected crash on other backends)",
    )
    _add_cluster_options(chaos, "all chaos runs")
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="render a JSON span log written by --trace as an "
        "indented timing tree",
    )
    trace.add_argument(
        "span_log", help="path written by 'repro ... --trace PATH'"
    )
    trace.add_argument(
        "--max-tasks",
        type=int,
        default=4,
        metavar="N",
        help="show at most N task spans per parent, eliding the rest "
        "into a summary line (default 4)",
    )
    trace.set_defaults(func=_cmd_trace)

    experiment = sub.add_parser(
        "experiment", help="reproduce the paper's tables and figures"
    )
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--only", default="")
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (`repro trace ... | head`); exit
        # quietly without a traceback, devnull-ing stdout so the
        # interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
