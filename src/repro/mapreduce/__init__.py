"""In-process MapReduce simulator (the Hadoop substrate of the paper).

Public API::

    from repro.mapreduce import MapReduceJob, MapReduceRuntime, IterativeDriver

    class WordCount(MapReduceJob):
        has_combiner = True
        def map(self, key, line):
            for word in line.split():
                yield word, 1
        def reduce(self, word, counts):
            yield word, sum(counts)
        combine = reduce

    runtime = MapReduceRuntime(num_map_tasks=4, num_reduce_tasks=4)
    output = runtime.run(WordCount(), [(0, "a b a")])

Both halves of the execution model are pluggable: compute via
``backend="serial" | "threads" | "processes"`` (see
:mod:`repro.mapreduce.executors`) and storage via ``storage="memory" |
"disk"`` plus ``spill_threshold=`` for the external sort-and-spill
shuffle (see :mod:`repro.mapreduce.storage`).  Results are
bit-identical across every combination.

See DESIGN.md (substitution table) for how this simulator stands in for
the Hadoop cluster used in the paper's evaluation.
"""

from .counters import Counters
from .driver import IterativeDriver
from .errors import (
    DriverError,
    ExecutorError,
    JobValidationError,
    MapReduceError,
    RoundLimitExceeded,
)
from .executors import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    shutdown_shared_pools,
)
from .faults import (
    FAULT_COUNTER_GROUP,
    FaultPlan,
    FaultyFileSystem,
    InjectedFault,
    InjectedIOError,
    InjectedTaskFault,
    PoisonedEvent,
    RetryPolicy,
    RetryingFileSystem,
    TaskFaultSpec,
    fired_specs,
    resilient_task_call,
)
from .job import KeyValue, MapReduceJob
from .partitioner import (
    HashPartitioner,
    canonical_bytes,
    fast_hash_bytes,
    stable_hash,
)
from .pipeline import Pipeline, PipelineStage
from .runtime import MapReduceRuntime
from .state import (
    STATE_POINT_COUNTERS,
    STATE_SPILL_COUNTERS,
    Quiet,
    ResidentStateStore,
    Retired,
    strip_volatile_counters,
)
from .storage import (
    FILESYSTEM_BACKENDS,
    SPILL_COUNTERS,
    DatasetStats,
    ExternalShuffle,
    FileSystem,
    FileSystemError,
    InMemoryFileSystem,
    LocalDiskFileSystem,
    resolve_filesystem,
    strip_spill_counters,
)

__all__ = [
    "Counters",
    "DatasetStats",
    "DriverError",
    "EXECUTOR_BACKENDS",
    "Executor",
    "ExecutorError",
    "ExternalShuffle",
    "FAULT_COUNTER_GROUP",
    "FILESYSTEM_BACKENDS",
    "FaultPlan",
    "FaultyFileSystem",
    "FileSystem",
    "FileSystemError",
    "HashPartitioner",
    "InMemoryFileSystem",
    "InjectedFault",
    "InjectedIOError",
    "InjectedTaskFault",
    "IterativeDriver",
    "JobValidationError",
    "KeyValue",
    "LocalDiskFileSystem",
    "MapReduceError",
    "MapReduceJob",
    "MapReduceRuntime",
    "Pipeline",
    "PipelineStage",
    "PoisonedEvent",
    "ProcessExecutor",
    "Quiet",
    "ResidentStateStore",
    "Retired",
    "RetryPolicy",
    "RetryingFileSystem",
    "RoundLimitExceeded",
    "SPILL_COUNTERS",
    "STATE_POINT_COUNTERS",
    "STATE_SPILL_COUNTERS",
    "SerialExecutor",
    "TaskFaultSpec",
    "ThreadExecutor",
    "canonical_bytes",
    "fast_hash_bytes",
    "fired_specs",
    "resilient_task_call",
    "resolve_executor",
    "resolve_filesystem",
    "shutdown_shared_pools",
    "stable_hash",
    "strip_spill_counters",
    "strip_volatile_counters",
]
