"""In-process MapReduce simulator (the Hadoop substrate of the paper).

Public API::

    from repro.mapreduce import MapReduceJob, MapReduceRuntime, IterativeDriver

    class WordCount(MapReduceJob):
        has_combiner = True
        def map(self, key, line):
            for word in line.split():
                yield word, 1
        def reduce(self, word, counts):
            yield word, sum(counts)
        combine = reduce

    runtime = MapReduceRuntime(num_map_tasks=4, num_reduce_tasks=4)
    output = runtime.run(WordCount(), [(0, "a b a")])

See DESIGN.md (substitution table) for how this simulator stands in for
the Hadoop cluster used in the paper's evaluation.
"""

from .counters import Counters
from .driver import IterativeDriver
from .errors import (
    DriverError,
    ExecutorError,
    JobValidationError,
    MapReduceError,
    RoundLimitExceeded,
)
from .executors import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    shutdown_shared_pools,
)
from .hdfs import FileSystemError, InMemoryFileSystem
from .job import KeyValue, MapReduceJob
from .partitioner import HashPartitioner, canonical_bytes, stable_hash
from .pipeline import Pipeline, PipelineStage
from .runtime import MapReduceRuntime

__all__ = [
    "Counters",
    "DriverError",
    "EXECUTOR_BACKENDS",
    "Executor",
    "ExecutorError",
    "FileSystemError",
    "HashPartitioner",
    "InMemoryFileSystem",
    "IterativeDriver",
    "JobValidationError",
    "KeyValue",
    "MapReduceError",
    "MapReduceJob",
    "MapReduceRuntime",
    "Pipeline",
    "PipelineStage",
    "ProcessExecutor",
    "RoundLimitExceeded",
    "SerialExecutor",
    "ThreadExecutor",
    "canonical_bytes",
    "resolve_executor",
    "shutdown_shared_pools",
    "stable_hash",
]
