"""The filesystem contract every storage backend implements.

Real MapReduce jobs communicate through a distributed filesystem: each
job reads one or more input paths and writes an output path (§3.1:
"MapReduce assumes a distributed file system from which the map
instances retrieve the input").  :class:`FileSystem` captures that
contract — a flat namespace of named, immutable-once-closed datasets of
``(key, value)`` records — independently of where the bytes live, so
pipelines and drivers can swap the in-memory simulator store for a real
on-disk store (or, later, a sharded one) without touching job code.

The contract, shared by every implementation and relied on by
:class:`~repro.mapreduce.pipeline.Pipeline`:

* **write-once** — :meth:`~FileSystem.write` refuses to overwrite unless
  asked, because clobbering a previous iteration's output is a classic
  pipeline bug;
* **all-or-nothing visibility** — a dataset either exists completely or
  not at all; a writer that fails mid-stream must leave nothing visible
  (the disk backend guarantees this with rename-on-close);
* **isolation** — :meth:`~FileSystem.read` hands back data the caller
  may mutate freely without corrupting the stored dataset;
* **observability** — :meth:`~FileSystem.du` reports per-dataset record
  and byte totals, the numbers that drive spill-threshold tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import MapReduceError
from ..job import KeyValue

__all__ = [
    "DatasetStats",
    "FileSystem",
    "FileSystemError",
    "validate_path",
    "validate_record",
]


class FileSystemError(MapReduceError):
    """Raised for missing paths, overwrites, and malformed names."""


def validate_path(path: str) -> str:
    """Check a dataset path and return it unchanged.

    Paths are absolute, ``/``-separated, and free of empty, ``.``, and
    ``..`` components, so every backend (including the on-disk one,
    which maps them into a root directory) interprets them identically.
    """
    if not path or not path.startswith("/"):
        raise FileSystemError(
            f"paths must be absolute (start with '/'), got {path!r}"
        )
    if path.endswith("/"):
        raise FileSystemError(f"paths must not end with '/': {path!r}")
    for component in path[1:].split("/"):
        if component in ("", ".", ".."):
            raise FileSystemError(
                f"paths must not contain empty, '.', or '..' "
                f"components: {path!r}"
            )
    return path


@dataclass(frozen=True)
class DatasetStats:
    """``du``-style usage numbers for one dataset."""

    records: int
    bytes: int


class FileSystem:
    """Abstract storage backend for inter-job datasets.

    Subclasses implement the five primitive operations (:meth:`write`,
    :meth:`read`, :meth:`exists`, :meth:`delete`, :meth:`list_paths`)
    plus :meth:`du`; the convenience methods are shared.
    """

    #: Canonical backend name, e.g. ``"memory"`` or ``"disk"``.
    name: str = "abstract"

    # -- primitives --------------------------------------------------------

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        """Store ``records`` at ``path``; returns the record count.

        Must be atomic: on any failure nothing becomes visible at
        ``path`` (and a previously existing dataset is untouched).
        Refuses to overwrite unless ``overwrite=True``.
        """
        raise NotImplementedError

    def read(self, path: str) -> List[KeyValue]:
        """Return the records at ``path`` (caller-owned, safe to mutate)."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        """Whether ``path`` holds a dataset."""
        raise NotImplementedError

    def delete(self, path: str) -> None:
        """Remove a dataset (e.g. intermediate iteration outputs)."""
        raise NotImplementedError

    def list_paths(self, prefix: str = "/") -> List[str]:
        """All dataset paths under ``prefix``, sorted."""
        raise NotImplementedError

    def du(self, path: Optional[str] = None):
        """Per-dataset usage statistics.

        With a ``path``, returns that dataset's :class:`DatasetStats`;
        without, returns ``{path: DatasetStats}`` for every dataset.
        Byte totals are storage-defined: actual file sizes for the disk
        backend, serialized-size estimates for the in-memory one.
        """
        raise NotImplementedError

    # -- shared conveniences ----------------------------------------------

    def read_many(self, paths: Iterable[str]) -> List[KeyValue]:
        """Concatenate several datasets (multi-input jobs)."""
        records: List[KeyValue] = []
        for path in paths:
            records.extend(self.read(path))
        return records

    def size(self, path: str) -> int:
        """Number of records stored at ``path``."""
        return self.du(path).records

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def validate_record(record: KeyValue) -> KeyValue:
    """Shared record-shape check used by every backend's writer."""
    if not isinstance(record, tuple) or len(record) != 2:
        raise FileSystemError(
            f"records must be (key, value) pairs, got {record!r}"
        )
    return record
