"""The on-disk filesystem backend: out-of-core inter-job datasets.

:class:`LocalDiskFileSystem` persists each dataset as a JSONL record
file (optionally gzip-compressed) under a root directory, mapping the
dataset path ``/a/b`` to ``<root>/a/b.jsonl`` (``.jsonl.gz`` when
compressed).  It implements the same write-once contract as the
in-memory backend, with one additional guarantee that matters on real
storage:

**Atomic visibility (rename-on-close).**  Writers stream records into a
temporary file *in the destination directory* and only ``os.replace``
it onto the final name after the last record is written and the file is
closed.  ``os.replace`` is atomic on POSIX, so a job that crashes
mid-write — a failing map task, an exception in a record iterator, a
killed process — never leaves a visible partial dataset: readers see
either the complete dataset or ``no such path``, exactly like HDFS's
invisible ``_temporary`` output directories.  The orphaned temp file is
removed on the error path (and is ignored by ``exists``/``list_paths``
even if the process dies before cleanup).

Records are serialized with the canonical JSONL codec
(:mod:`repro.mapreduce.storage.codec`), which round-trips every
supported key/value type exactly — the basis of the storage contract
that pipeline outputs are bit-identical across the memory and disk
backends.
"""

from __future__ import annotations

import gzip
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple

from ..job import KeyValue
from .base import (
    DatasetStats,
    FileSystem,
    FileSystemError,
    validate_path,
    validate_record,
)
from .codec import dumps_record, loads_record

__all__ = ["LocalDiskFileSystem"]

_SUFFIX = ".jsonl"
_SUFFIX_GZ = ".jsonl.gz"
_TMP_MARKER = ".inprogress-"


class LocalDiskFileSystem(FileSystem):
    """Write-once JSONL datasets under a local root directory.

    Parameters
    ----------
    root:
        Directory holding the datasets; created if missing.  When
        omitted, a fresh temporary directory is created (handy for CLI
        runs and tests; it is *not* auto-deleted, so intermediates stay
        inspectable after the process exits).
    compress:
        When ``True``, datasets are written gzip-compressed (suffix
        ``.jsonl.gz``).  Readers always accept both representations, so
        a root may mix compressed and plain datasets.
    """

    name = "disk"

    def __init__(
        self, root: Optional[str] = None, compress: bool = False
    ) -> None:
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-dfs-")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.compress = compress
        # Record counts learned from our own writes (or earlier scans),
        # keyed by the backing file's (size, mtime_ns) signature so a
        # rewrite by another filesystem instance or process invalidates
        # the cache; unknown datasets are counted on demand.
        self._counts: Dict[str, Tuple[Tuple[int, int], int]] = {}

    # -- path mapping ------------------------------------------------------

    def _candidates(self, path: str) -> Tuple[str, str]:
        """The two potential files backing ``path`` (plain, gzip)."""
        relative = path[1:]
        base = os.path.join(self.root, *relative.split("/"))
        return base + _SUFFIX, base + _SUFFIX_GZ

    def _file_for(self, path: str) -> Optional[str]:
        """The existing file backing ``path``, or ``None``.

        If both the plain and gzip representation exist — possible only
        when a compression-switching overwrite crashed between its
        ``os.replace`` and the stale twin's unlink — the newer file
        wins: the replace is the commit point, so the freshly renamed
        dataset must shadow the stale one.
        """
        existing = [
            candidate
            for candidate in self._candidates(path)
            if os.path.isfile(candidate)
        ]
        if not existing:
            return None
        if len(existing) == 1:
            return existing[0]
        return max(existing, key=lambda name: os.stat(name).st_mtime_ns)

    def _dataset_name(self, file_path: str) -> Optional[str]:
        """Map a file under the root back to its dataset path."""
        for suffix in (_SUFFIX_GZ, _SUFFIX):  # longest suffix first
            if file_path.endswith(suffix):
                relative = os.path.relpath(
                    file_path[: -len(suffix)], self.root
                )
                return "/" + relative.replace(os.sep, "/")
        return None

    @staticmethod
    def _signature(file_path: str) -> Tuple[int, int]:
        """Freshness signature of a backing file for the count cache."""
        status = os.stat(file_path)
        return status.st_size, status.st_mtime_ns

    @staticmethod
    def _open(file_path: str, mode: str):
        if file_path.endswith(_SUFFIX_GZ):
            return gzip.open(file_path, mode + "t", encoding="utf-8")
        return open(file_path, mode, encoding="utf-8")

    # -- primitives --------------------------------------------------------

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        """Stream ``records`` to disk; visible only after the last one.

        The temporary file lives next to the destination so the final
        ``os.replace`` stays within one filesystem and is atomic; any
        failure while serializing removes it, leaving a previously
        existing dataset (if any) untouched.
        """
        path = validate_path(path)
        existing = self._file_for(path)
        if existing is not None and not overwrite:
            raise FileSystemError(f"path already exists: {path!r}")
        plain, compressed = self._candidates(path)
        target = compressed if self.compress else plain
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory,
            prefix=os.path.basename(target) + _TMP_MARKER,
        )
        os.close(descriptor)
        count = 0
        try:
            with self._opened_temp(temp_path) as handle:
                for record in records:
                    key, value = validate_record(record)
                    handle.write(dumps_record(key, value))
                    handle.write("\n")
                    count += 1
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        os.replace(temp_path, target)
        for candidate in self._candidates(path):
            # An overwrite switched compression modes (or a previous
            # one crashed mid-switch); drop any stale alternate
            # representation so reads stay unambiguous.
            if candidate != target and os.path.isfile(candidate):
                os.unlink(candidate)
        self._counts[path] = (self._signature(target), count)
        return count

    def _opened_temp(self, temp_path: str):
        """Open the in-progress temp file with the configured codec."""
        if self.compress:
            return gzip.open(temp_path, "wt", encoding="utf-8")
        return open(temp_path, "w", encoding="utf-8")

    def read(self, path: str) -> List[KeyValue]:
        """Parse and return the records at ``path``."""
        path = validate_path(path)
        file_path = self._file_for(path)
        if file_path is None:
            raise FileSystemError(f"no such path: {path!r}")
        signature = self._signature(file_path)
        records: List[KeyValue] = []
        with self._open(file_path, "r") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if line:
                    records.append(loads_record(line))
        self._counts[path] = (signature, len(records))
        return records

    def exists(self, path: str) -> bool:
        """Whether ``path`` holds a (completely written) dataset."""
        return self._file_for(validate_path(path)) is not None

    def delete(self, path: str) -> None:
        """Remove a dataset's backing file (every representation)."""
        path = validate_path(path)
        if self._file_for(path) is None:
            raise FileSystemError(f"no such path: {path!r}")
        for candidate in self._candidates(path):
            if os.path.isfile(candidate):
                os.unlink(candidate)
        self._counts.pop(path, None)

    def list_paths(self, prefix: str = "/") -> List[str]:
        """All dataset paths under ``prefix``, sorted.

        In-progress temp files are invisible: only completely written
        (renamed) datasets are listed.
        """
        if not prefix.startswith("/"):
            raise FileSystemError(
                f"prefix must start with '/', got {prefix!r}"
            )
        paths = set()  # both representations map to one dataset name
        for directory, _, files in os.walk(self.root):
            for file_name in files:
                if _TMP_MARKER in file_name:
                    continue
                dataset = self._dataset_name(
                    os.path.join(directory, file_name)
                )
                if dataset is not None and dataset.startswith(prefix):
                    paths.add(dataset)
        return sorted(paths)

    def du(self, path: Optional[str] = None):
        """Record/byte stats; bytes are actual on-disk file sizes."""
        if path is None:
            return {name: self.du(name) for name in self.list_paths()}
        path = validate_path(path)
        file_path = self._file_for(path)
        if file_path is None:
            raise FileSystemError(f"no such path: {path!r}")
        signature = self._signature(file_path)
        cached = self._counts.get(path)
        if cached is not None and cached[0] == signature:
            count = cached[1]
        else:
            with self._open(file_path, "r") as handle:
                count = sum(1 for line in handle if line.strip())
            self._counts[path] = (signature, count)
        return DatasetStats(records=count, bytes=signature[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalDiskFileSystem(root={self.root!r}, "
            f"compress={self.compress})"
        )
