"""TSV serialization of vector and scalar stores (corpus files).

The ``repro generate`` CLI persists a corpus as TSV files — sparse
term-weight vectors (``doc <TAB> {"term": weight, ...}`` with the JSON
object sorted by key) and scalar maps (``key <TAB> value`` with
``repr`` floats, so values round-trip exactly).  These helpers used to
be private functions inside ``cli.py``; they live in the storage
package so the CLI, the tests, and any future ingestion path share one
implementation (the same role :mod:`repro.graph.io` plays for edge and
capacity files).

All writers emit keys in sorted order (deterministic bytes for a given
store); all readers stream line by line and skip blanks.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = [
    "read_scalars",
    "read_vectors",
    "write_scalars",
    "write_vectors",
]


def write_vectors(path: str, vectors: Dict[str, Dict[str, float]]) -> int:
    """Write a ``doc -> sparse vector`` store as TSV; returns row count."""
    with open(path, "w", encoding="utf-8") as handle:
        for doc in sorted(vectors):
            handle.write(
                f"{doc}\t{json.dumps(vectors[doc], sort_keys=True)}\n"
            )
    return len(vectors)


def read_vectors(path: str) -> Dict[str, Dict[str, float]]:
    """Read a vector store written by :func:`write_vectors`."""
    vectors: Dict[str, Dict[str, float]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                doc, payload = line.split("\t", 1)
                vectors[doc] = json.loads(payload)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed vector row: {exc}"
                ) from None
    return vectors


def write_scalars(path: str, scalars: Dict[str, float]) -> int:
    """Write a ``key -> float`` map as TSV; returns the row count.

    Values are written with ``repr`` so they parse back to the
    identical float.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for key in sorted(scalars):
            handle.write(f"{key}\t{scalars[key]!r}\n")
    return len(scalars)


def read_scalars(path: str) -> Dict[str, float]:
    """Read a scalar map written by :func:`write_scalars`."""
    scalars: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                key, value = line.split("\t", 1)
                scalars[key] = float(value)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed scalar row: {exc}"
                ) from None
    return scalars
