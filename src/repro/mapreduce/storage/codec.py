"""Canonical JSONL encoding of ``(key, value)`` records.

The disk filesystem persists datasets as line-delimited JSON — the
format real Hadoop pipelines favor for inter-job data because it is
splittable, greppable, and language-neutral.  Plain JSON, however, is
lossy for Python records: tuples come back as lists, and dictionary
keys come back as strings.  Either would break the storage subsystem's
hard contract that pipeline outputs are **bit-identical** across the
memory and disk backends (shuffle keys like ``("item", "consumer")``
must round-trip as tuples to sort and group identically).

This codec therefore wraps the containers in single-key *tag objects*:

========  =======================================  ==================
tag       encodes                                   payload
========  =======================================  ==================
``"t"``   ``tuple``                                 list of encoded items
``"l"``   ``list``                                  list of encoded items
``"d"``   ``dict`` (any key type, order kept)       list of encoded ``[k, v]`` pairs
``"y"``   ``bytes``                                 base64 string
========  =======================================  ==================

Scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through
natively — JSON round-trips them exactly, including floats, which
serialize via ``repr`` and parse back to the identical IEEE double.
Because *every* dict is encoded as a tag object, a user dict can never
be mistaken for a tag: decoders treat any one-key object whose key is a
known tag as encoded structure, and such objects only ever come from
the encoder.

One record is one line: ``[encoded_key, encoded_value]``.  Types
outside the table (arbitrary class instances) raise
:class:`~repro.mapreduce.storage.base.FileSystemError` — datasets are
an interchange surface, not a pickle jar; jobs that need richer state
in records keep it in memory or convert at the boundary.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, BinaryIO, Iterator, Tuple

from ..job import KeyValue
from .base import FileSystemError

__all__ = [
    "encode_value",
    "decode_value",
    "dumps_record",
    "loads_record",
    "write_run_record",
    "read_run_records",
]

_SCALARS = (bool, int, float, str)


def encode_value(value: Any) -> Any:
    """Encode one key or value into a JSON-serializable structure."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, bytes):
        return {"y": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "d": [
                [encode_value(key), encode_value(val)]
                for key, val in value.items()
            ]
        }
    raise FileSystemError(
        f"cannot serialize {type(value).__name__} values to a record "
        "dataset; supported types: None, bool, int, float, str, bytes, "
        "tuple, list, dict"
    )


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value` exactly."""
    if isinstance(encoded, dict):
        if len(encoded) != 1:
            raise FileSystemError(
                f"malformed tag object with {len(encoded)} keys "
                "(encoded structures are single-key tag objects)"
            )
        ((tag, payload),) = encoded.items()
        if tag == "t":
            return tuple(decode_value(item) for item in payload)
        if tag == "l":
            return [decode_value(item) for item in payload]
        if tag == "d":
            return {
                decode_value(key): decode_value(val)
                for key, val in payload
            }
        if tag == "y":
            return base64.b64decode(payload)
        raise FileSystemError(f"unknown record tag {tag!r}")
    return encoded


def dumps_record(key: Any, value: Any) -> str:
    """Serialize one record to its canonical single-line JSON form."""
    return json.dumps(
        [encode_value(key), encode_value(value)],
        separators=(",", ":"),
        ensure_ascii=True,
    )


def loads_record(line: str) -> KeyValue:
    """Parse one line produced by :func:`dumps_record`.

    Every corruption mode — invalid JSON, a non-pair top level, a
    malformed or unknown tag — surfaces as :class:`FileSystemError`
    carrying the offending line, never a bare ``ValueError``.
    """
    try:
        encoded_key, encoded_value = json.loads(line)
        return decode_value(encoded_key), decode_value(encoded_value)
    except FileSystemError as exc:
        raise FileSystemError(
            f"malformed record line {line!r}: {exc}"
        ) from None
    except (ValueError, TypeError) as exc:
        raise FileSystemError(
            f"malformed record line {line!r}: {exc}"
        ) from None


# -- spill-run codec ---------------------------------------------------------
#
# The external shuffle's run files hold *encoded records* — the
# ``(key_bytes, key, value)`` triples of the runtime's encoded shuffle
# plane — as length-prefixed binary frames::
#
#     [4-byte len(key_bytes)] [key_bytes] [4-byte len(payload)] [payload]
#
# where ``payload`` is the pickled ``(key, value)`` pair.  Writing a
# frame reuses the canonical key encoding computed at map time (the
# encode-once contract extends to disk), and reading one restores the
# full triple without re-encoding, so a spilled record is merge-sorted
# and grouped by raw byte comparison exactly like an in-memory one.
# Run files are private intermediates (deleted after the job), never an
# interchange surface — hence pickle payloads rather than JSONL.

EncodedRecord = Tuple[bytes, Any, Any]


def write_run_record(handle: BinaryIO, record: EncodedRecord) -> None:
    """Append one encoded record to an open run file."""
    key_bytes = record[0]
    payload = pickle.dumps(
        (record[1], record[2]), pickle.HIGHEST_PROTOCOL
    )
    handle.write(len(key_bytes).to_bytes(4, "big"))
    handle.write(key_bytes)
    handle.write(len(payload).to_bytes(4, "big"))
    handle.write(payload)


def read_run_records(handle: BinaryIO) -> Iterator[EncodedRecord]:
    """Stream encoded records back from an open run file.

    Every truncation point — a short header, short key bytes, or a
    short payload (e.g. the disk filled mid-spill) — raises
    :class:`FileSystemError` rather than desyncing into a silent
    partial read or an opaque unpickling error.
    """
    while True:
        header = handle.read(4)
        if not header:
            return
        if len(header) != 4:
            raise FileSystemError("truncated spill-run frame header")
        key_size = int.from_bytes(header, "big")
        key_bytes = handle.read(key_size)
        if len(key_bytes) != key_size:
            raise FileSystemError("truncated spill-run frame key")
        size_bytes = handle.read(4)
        if len(size_bytes) != 4:
            raise FileSystemError("truncated spill-run frame")
        payload_size = int.from_bytes(size_bytes, "big")
        payload = handle.read(payload_size)
        if len(payload) != payload_size:
            raise FileSystemError("truncated spill-run frame payload")
        key, value = pickle.loads(payload)
        yield key_bytes, key, value
