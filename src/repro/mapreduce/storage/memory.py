"""The in-memory filesystem backend (the original simulator store).

This is the reference implementation of the
:class:`~repro.mapreduce.storage.base.FileSystem` contract: a flat
namespace of record datasets held as Python lists.  It is the default
backend — zero IO cost, ideal for tests and small corpora — and the
semantics every other backend must match (write-once, atomic
visibility, isolated reads, prefix listing).

``du()`` reports serialized byte sizes so spill/storage tuning done
against the in-memory backend transfers to the disk backend: each
dataset's byte total is the length of its canonical JSONL encoding
(computed lazily and cached; datasets holding records the JSONL codec
cannot express fall back to pickled size).
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Optional

from ..job import KeyValue
from .base import (
    DatasetStats,
    FileSystem,
    FileSystemError,
    validate_path,
    validate_record,
)
from .codec import dumps_record

__all__ = ["InMemoryFileSystem"]


class InMemoryFileSystem(FileSystem):
    """A flat namespace of record datasets, with HDFS-like semantics.

    * datasets are written once (no in-place mutation — jobs that need
      to update state write a new path, like real MapReduce iterations);
    * reads return copies, so downstream jobs cannot corrupt inputs;
    * ``glob``-free: a *directory* is just a path prefix, and
      :meth:`list_paths` filters by prefix.
    """

    name = "memory"

    def __init__(self) -> None:
        self._datasets: Dict[str, List[KeyValue]] = {}
        self._stats: Dict[str, DatasetStats] = {}

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        """Store ``records`` at ``path``; returns the record count.

        Refuses to overwrite unless ``overwrite=True`` — accidentally
        clobbering a previous iteration's output is a classic pipeline
        bug this surface makes loud.  The dataset becomes visible only
        after every record has been materialized and validated, so a
        failing record iterator leaves nothing behind.
        """
        path = validate_path(path)
        if path in self._datasets and not overwrite:
            raise FileSystemError(f"path already exists: {path!r}")
        materialized = [validate_record(record) for record in records]
        self._datasets[path] = materialized
        self._stats.pop(path, None)
        return len(materialized)

    def read(self, path: str) -> List[KeyValue]:
        """Return a copy of the records at ``path``."""
        path = validate_path(path)
        try:
            return list(self._datasets[path])
        except KeyError:
            raise FileSystemError(f"no such path: {path!r}") from None

    def exists(self, path: str) -> bool:
        """Whether ``path`` holds a dataset."""
        return validate_path(path) in self._datasets

    def delete(self, path: str) -> None:
        """Remove a dataset (e.g. intermediate iteration outputs)."""
        path = validate_path(path)
        if path not in self._datasets:
            raise FileSystemError(f"no such path: {path!r}")
        del self._datasets[path]
        self._stats.pop(path, None)

    def list_paths(self, prefix: str = "/") -> List[str]:
        """All dataset paths under ``prefix``, sorted."""
        if not prefix.startswith("/"):
            raise FileSystemError(
                f"prefix must start with '/', got {prefix!r}"
            )
        return sorted(
            path for path in self._datasets if path.startswith(prefix)
        )

    def du(self, path: Optional[str] = None):
        """Record/byte stats for one dataset (or all, as a dict).

        Byte totals are the dataset's size in the canonical JSONL
        encoding (one line per record, newline included) — the size the
        disk backend would occupy uncompressed — so the numbers stay
        meaningful across backends.  Computed on first request and
        cached until the dataset changes.
        """
        if path is None:
            return {name: self.du(name) for name in sorted(self._datasets)}
        path = validate_path(path)
        if path not in self._datasets:
            raise FileSystemError(f"no such path: {path!r}")
        stats = self._stats.get(path)
        if stats is None:
            records = self._datasets[path]
            total = 0
            for key, value in records:
                try:
                    total += len(dumps_record(key, value)) + 1
                except FileSystemError:
                    # Not expressible as JSONL (in-memory-only record
                    # types); fall back to the pickled footprint.
                    total += len(pickle.dumps((key, value)))
            stats = DatasetStats(records=len(records), bytes=total)
            self._stats[path] = stats
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryFileSystem(paths={len(self._datasets)})"
