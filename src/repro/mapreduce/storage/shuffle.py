"""The external shuffle: sort-and-spill map outputs to disk runs.

The driver-side shuffle of :class:`~repro.mapreduce.runtime.
MapReduceRuntime` historically buffered every intermediate record in
RAM in per-partition lists.  This module reproduces Hadoop's
alternative — the *external* shuffle:

1. **accumulate** — intermediate records route to a bounded in-memory
   buffer per reduce partition;
2. **sort & spill** — when a partition's buffer exceeds the configured
   ``spill_threshold``, it is sorted by the canonical key order and
   streamed to a *run file* on disk, then cleared;
3. **merge** — at reduce time, each partition's spilled runs and its
   in-memory tail are k-way merged with :func:`heapq.merge` over the
   same canonical order, yielding the partition fully key-sorted.

Encoded records.  The shuffle operates on the runtime's *encoded
shuffle plane*: every record is a ``(key_bytes, key, value)`` triple
whose first element is the canonical key encoding computed exactly once
at map time.  Spill sorting, run-file IO (the frame codec in
:mod:`repro.mapreduce.storage.codec`), and the k-way merge all compare
those cached bytes — this module never calls ``canonical_bytes``.

Determinism.  Every spill is a *stable* sort of a contiguous chunk of
the arrival sequence, runs are merged in spill order, and
:func:`heapq.merge` breaks ties in favor of earlier iterables — so
records with equal keys emerge in exactly their arrival order, the same
order the purely in-memory shuffle (followed by the reduce task's
stable sort) produces.  Outputs are therefore bit-identical across
spill thresholds, including ``threshold=0`` (spill every record) and
``threshold=None`` (never spill); the property tests in
``tests/mapreduce/test_storage_spill.py`` pin this down.

Metering.  Spill activity is observable through three counters
(:data:`SPILL_COUNTERS`): ``spilled_records``, ``spill_files``, and
``spilled_bytes``, incremented per job and under the global ``runtime``
group.  These counters are the *only* permitted divergence between runs
at different spill thresholds — strip them and counter totals must
match exactly.  Wall-clock spent sorting, writing, and compacting runs
accumulates in :attr:`ExternalShuffle.spill_seconds` (a timing meter,
surfaced by the runtime's ``phase_timings`` and the CLI ``--profile``
flag — never part of the bit-identical counter contract).

Run files hold length-prefixed encoded-record frames (see
``write_run_record`` in the codec module) in a directory created lazily
on first spill and removed by :meth:`ExternalShuffle.close`.

Scope.  While records are routed, at most ``spill_threshold`` of them
per partition sit in RAM (the runtime also releases each map task's
output list once routed), with the bulk of the shuffle parked in run
files.  For executors that can share memory (serial, threads) the
runtime hands each reduce task the lazy :meth:`merged_stream`, so a
partition is never re-materialized driver-side; only the ``processes``
backend — whose task arguments must pickle — still receives the
materialized :meth:`merged_partition` list.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
import time
from operator import itemgetter
from typing import Any, Iterator, List, Optional

from ..counters import Counters
from ..errors import MapReduceError
from .codec import EncodedRecord, read_run_records, write_run_record

__all__ = ["ExternalShuffle", "SPILL_COUNTERS", "strip_spill_counters"]

#: Counter names metered by the external shuffle — the only counters
#: allowed to differ between runs at different spill thresholds.
SPILL_COUNTERS = ("spilled_records", "spill_files", "spilled_bytes")

#: Sort/merge key of the encoded plane: the cached canonical key bytes.
_sort_key = itemgetter(0)


def strip_spill_counters(snapshot: dict, extra: tuple = ()) -> dict:
    """Drop spill counters from a ``Counters.snapshot()`` dict.

    Used by tests asserting the cross-threshold equivalence contract:
    ``strip_spill_counters(a) == strip_spill_counters(b)`` for any two
    runs of the same job at different spill settings.  ``extra`` names
    further threshold-dependent counters to drop (the resident state
    store's ``strip_volatile_counters`` adds its parking counters).
    """
    volatile = set(SPILL_COUNTERS) | set(extra)
    cleaned = {}
    for group, names in snapshot.items():
        kept = {
            name: value
            for name, value in names.items()
            if name not in volatile
        }
        if kept:
            cleaned[group] = kept
    return cleaned


class ExternalShuffle:
    """Bounded shuffle buffers with sort-and-spill per reduce partition.

    Parameters
    ----------
    num_partitions:
        Number of reduce partitions (one buffer + run list each).
    spill_threshold:
        A partition's buffer spills once it holds *more than* this many
        records; ``0`` spills on every arrival.  (A ``None`` threshold
        means "never spill" and is handled by the runtime, which then
        bypasses this class entirely.)
    spill_dir:
        Parent directory for the run files; defaults to the system
        temporary directory.  The shuffle creates (and on
        :meth:`close` removes) its own subdirectory.
    merge_factor:
        Maximum number of run files opened simultaneously during the
        merge (Hadoop's ``io.sort.factor``).  Partitions with more runs
        are first compacted by multi-pass merging — prefix batches of
        ``merge_factor`` runs merge into a single replacement run —
        so the final k-way merge never exceeds the file-descriptor
        budget even at ``spill_threshold=0`` on large shuffles.
    """

    def __init__(
        self,
        num_partitions: int,
        spill_threshold: int,
        spill_dir: Optional[str] = None,
        merge_factor: int = 64,
    ) -> None:
        if num_partitions < 1:
            raise MapReduceError("num_partitions must be positive")
        if spill_threshold < 0:
            raise MapReduceError(
                f"spill_threshold must be >= 0, got {spill_threshold}"
            )
        if merge_factor < 2:
            raise MapReduceError(
                f"merge_factor must be >= 2, got {merge_factor}"
            )
        self.num_partitions = num_partitions
        self.spill_threshold = spill_threshold
        self.merge_factor = merge_factor
        self._spill_parent = spill_dir
        self._directory: Optional[str] = None
        self._buffers: List[List[EncodedRecord]] = [
            [] for _ in range(num_partitions)
        ]
        self._runs: List[List[str]] = [[] for _ in range(num_partitions)]
        self._merge_sequence = 0
        #: Records routed to each partition so far — lets callers test
        #: a partition for emptiness without consuming its (lazy,
        #: possibly disk-backed) merged stream.
        self.partition_records: List[int] = [0] * num_partitions
        self.spilled_records = 0
        self.spill_files = 0
        self.spilled_bytes = 0
        self.spill_seconds = 0.0

    # -- accumulate --------------------------------------------------------

    def add(self, partition: int, record: EncodedRecord) -> None:
        """Route one encoded record to its partition buffer."""
        self.partition_records[partition] += 1
        buffer = self._buffers[partition]
        buffer.append(record)
        if len(buffer) > self.spill_threshold:
            self._spill(partition)

    # -- sort & spill ------------------------------------------------------

    def _spill(self, partition: int) -> None:
        """Stable-sort a partition's buffer and stream it to a run file."""
        buffer = self._buffers[partition]
        if not buffer:
            return
        started = time.perf_counter()
        buffer.sort(key=_sort_key)  # list.sort is stable
        if self._directory is None:
            if self._spill_parent is not None:
                os.makedirs(self._spill_parent, exist_ok=True)
            self._directory = tempfile.mkdtemp(
                prefix="repro-shuffle-", dir=self._spill_parent
            )
        run_path = os.path.join(
            self._directory,
            f"part{partition:05d}-run{len(self._runs[partition]):05d}",
        )
        with open(run_path, "wb") as handle:
            for record in buffer:
                write_run_record(handle, record)
            size = handle.tell()
        self._runs[partition].append(run_path)
        self.spilled_records += len(buffer)
        self.spill_files += 1
        self.spilled_bytes += size
        self._buffers[partition] = []
        self.spill_seconds += time.perf_counter() - started

    @staticmethod
    def _read_run(run_path: str) -> Iterator[EncodedRecord]:
        """Stream encoded records back from one run file."""
        with open(run_path, "rb") as handle:
            yield from read_run_records(handle)

    # -- merge -------------------------------------------------------------

    def merged_stream(self, partition: int) -> Iterator[EncodedRecord]:
        """One partition as a lazy, fully key-sorted record stream.

        K-way merges the partition's spilled runs (in spill order) with
        its sorted in-memory tail; ``heapq.merge`` prefers earlier
        iterables on equal keys, which preserves arrival order.  When a
        partition holds more than ``merge_factor`` runs, prefix batches
        are compacted into single runs first (multi-pass merge, done
        eagerly on this call), so no merge ever opens more than
        ``merge_factor + 1`` files — batches are contiguous and the
        compacted run takes the batch's place in spill order, which
        keeps the equal-key tie-breaking identical.

        The returned iterator reads run files on demand: it is only
        valid until :meth:`close`.  Each call returns an independent
        stream.
        """
        tail = sorted(self._buffers[partition], key=_sort_key)
        runs = list(self._runs[partition])
        while len(runs) > self.merge_factor:
            batch, runs = runs[: self.merge_factor], runs[self.merge_factor :]
            runs.insert(0, self._compact_runs(batch))
        self._runs[partition] = runs
        if not runs:
            return iter(tail)
        streams = [self._read_run(path) for path in runs]
        streams.append(iter(tail))
        return heapq.merge(*streams, key=_sort_key)

    def merged_partition(self, partition: int) -> List[EncodedRecord]:
        """One partition, fully sorted, materialized as a list.

        Same contents as :meth:`merged_stream`; used when the records
        must cross a process boundary (the ``processes`` executor
        pickles task arguments) or outlive the shuffle.
        """
        return list(self.merged_stream(partition))

    def _compact_runs(self, batch: List[str]) -> str:
        """Stream-merge a batch of runs into one replacement run file.

        The consumed run files are deleted immediately, so a multi-pass
        merge's extra disk footprint is bounded by one batch.  Merge
        passes are not metered as new spills: the spill counters report
        map-output spilling, and cross-threshold counter equality must
        not depend on the merge fan-in.  Compaction wall-clock does
        accumulate in :attr:`spill_seconds` (a timing meter only).
        """
        assert self._directory is not None  # batches imply prior spills
        started = time.perf_counter()
        merged_path = os.path.join(
            self._directory,
            f"merge{self._merge_sequence:05d}",
        )
        self._merge_sequence += 1
        streams = [self._read_run(path) for path in batch]
        with open(merged_path, "wb") as handle:
            for record in heapq.merge(*streams, key=_sort_key):
                write_run_record(handle, record)
        for path in batch:
            os.unlink(path)
        self.spill_seconds += time.perf_counter() - started
        return merged_path

    def meter(self, counters: Counters, group: str) -> None:
        """Record spill totals under ``group`` and ``runtime``."""
        for name, value in zip(
            SPILL_COUNTERS,
            (self.spilled_records, self.spill_files, self.spilled_bytes),
        ):
            if value:
                counters.increment(group, name, value)
                counters.increment("runtime", name, value)

    def close(self) -> None:
        """Delete every run file; safe to call more than once."""
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None
        self._runs = [[] for _ in range(self.num_partitions)]

    def __enter__(self) -> "ExternalShuffle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalShuffle(partitions={self.num_partitions}, "
            f"threshold={self.spill_threshold}, "
            f"spilled={self.spilled_records})"
        )
