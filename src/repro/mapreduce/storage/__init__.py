"""Pluggable storage subsystem for the MapReduce simulator.

PR 1 made *compute* pluggable (``backend="serial" | "threads" |
"processes"``); this package does the same for *storage*, the other
half of the runtime's execution model.  It provides:

* the :class:`~repro.mapreduce.storage.base.FileSystem` contract for
  inter-job datasets, with two implementations —
  :class:`~repro.mapreduce.storage.memory.InMemoryFileSystem` (the
  default simulator store) and
  :class:`~repro.mapreduce.storage.disk.LocalDiskFileSystem`
  (out-of-core JSONL files with atomic rename-on-close);
* the :class:`~repro.mapreduce.storage.shuffle.ExternalShuffle` —
  bounded map-output buffers that sort-and-spill to disk runs and
  k-way merge at reduce time, metering ``spilled_records`` /
  ``spill_files`` / ``spilled_bytes``;
* the canonical JSONL record codec and the TSV corpus-file helpers
  shared by the CLI and tests.

Select a backend with :func:`resolve_filesystem` (names in
:data:`FILESYSTEM_BACKENDS`), ``MapReduceRuntime(storage=...)``,
``Pipeline(storage=...)``, or the CLI's ``--fs {memory,disk}``.

The hard contract (property-tested): job outputs, ``job_log``, and
counter totals — minus the spill counters — are **bit-identical**
across filesystems, spill thresholds, and execution backends.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .base import (
    DatasetStats,
    FileSystem,
    FileSystemError,
    validate_path,
    validate_record,
)
from .codec import decode_value, dumps_record, encode_value, loads_record
from .disk import LocalDiskFileSystem
from .memory import InMemoryFileSystem
from .shuffle import ExternalShuffle, SPILL_COUNTERS, strip_spill_counters
from .tsvio import read_scalars, read_vectors, write_scalars, write_vectors

__all__ = [
    "DatasetStats",
    "ExternalShuffle",
    "FILESYSTEM_BACKENDS",
    "FileSystem",
    "FileSystemError",
    "InMemoryFileSystem",
    "LocalDiskFileSystem",
    "SPILL_COUNTERS",
    "canonical_backend",
    "decode_value",
    "dumps_record",
    "encode_value",
    "loads_record",
    "read_scalars",
    "read_vectors",
    "resolve_filesystem",
    "strip_spill_counters",
    "validate_path",
    "validate_record",
    "write_scalars",
    "write_vectors",
]

#: Canonical storage backend names accepted by :func:`resolve_filesystem`
#: (and therefore by ``MapReduceRuntime(storage=...)`` and the CLI).
FILESYSTEM_BACKENDS = ("memory", "disk")

_BACKEND_ALIASES = {
    "memory": "memory",
    "mem": "memory",
    "ram": "memory",
    "inmemory": "memory",
    "disk": "disk",
    "local": "disk",
    "localdisk": "disk",
}


def canonical_backend(name: str) -> str:
    """Map a backend name or alias to its canonical name.

    Accepts the same spellings as :func:`resolve_filesystem` without
    constructing a filesystem (the disk backend's constructor creates
    its root directory eagerly); raises :class:`FileSystemError` for
    unknown names, so configuration typos fail loudly.
    """
    canonical = _BACKEND_ALIASES.get(name.strip().lower())
    if canonical is None:
        raise FileSystemError(
            f"unknown storage backend {name!r}; "
            f"known backends: {', '.join(FILESYSTEM_BACKENDS)}"
        )
    return canonical


def resolve_filesystem(
    storage: Union[str, FileSystem, None],
    root: Optional[str] = None,
    compress: bool = False,
) -> FileSystem:
    """Turn a backend name (or a :class:`FileSystem`) into a filesystem.

    ``None`` selects the in-memory backend.  ``root``/``compress``
    apply to the ``"disk"`` backend only (``root=None`` creates a fresh
    temporary directory).  Unknown names raise
    :class:`FileSystemError` listing :data:`FILESYSTEM_BACKENDS`.
    """
    if storage is None:
        return InMemoryFileSystem()
    if isinstance(storage, FileSystem):
        return storage
    if isinstance(storage, str):
        canonical = canonical_backend(storage)
        if canonical == "memory":
            return InMemoryFileSystem()
        return LocalDiskFileSystem(root=root, compress=compress)
    raise FileSystemError(
        f"unknown storage backend {storage!r}; "
        f"known backends: {', '.join(FILESYSTEM_BACKENDS)}"
    )
