"""Job abstractions: user-defined map / combine / reduce functions.

A :class:`MapReduceJob` bundles the two user-defined functions of the
MapReduce paradigm (Dean & Ghemawat), with the signatures used in the
paper's Section 3.1::

    map:    <k1, v1>    -> [<k2, v2>]
    reduce: <k2, [v2]>  -> [<k3, v3>]

Jobs may additionally define a ``combine`` function (a map-side
pre-reducer) and may receive read-only *side data* — the analogue of
Hadoop's DistributedCache — through :meth:`MapReduceJob.configure`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["KeyValue", "MapReduceJob"]

#: A single record flowing through the simulated cluster.
KeyValue = Tuple[Any, Any]


class MapReduceJob:
    """Base class for user-defined MapReduce jobs.

    Subclasses must override :meth:`map` and :meth:`reduce`; both are
    generators (or return iterables) of ``(key, value)`` pairs.  Jobs must
    be *stateless across records* except for configuration delivered by
    :meth:`configure` — the runtime is free to re-order record processing
    within a phase, exactly like a real cluster.
    """

    #: Name used for counter groups and driver logs.  Defaults to the
    #: class name; override for parameterized jobs.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self._side_data: Mapping[str, Any] = {}

    # -- configuration ---------------------------------------------------

    def configure(self, side_data: Optional[Mapping[str, Any]]) -> None:
        """Install read-only side data before the job runs.

        This models Hadoop's DistributedCache: small, immutable data
        (e.g. the document store used to verify similarity-join
        candidates) shipped to every task.
        """
        self._side_data = dict(side_data) if side_data else {}

    @property
    def side_data(self) -> Mapping[str, Any]:
        """The read-only side data installed by :meth:`configure`."""
        return self._side_data

    # -- user-defined functions ------------------------------------------

    def map(self, key: Any, value: Any) -> Iterable[KeyValue]:
        """Transform one input record into intermediate records."""
        raise NotImplementedError

    def reduce(self, key: Any, values: List[Any]) -> Iterable[KeyValue]:
        """Transform one intermediate key group into output records."""
        raise NotImplementedError

    # -- optional hooks ----------------------------------------------------

    #: Set to ``True`` in subclasses that implement :meth:`combine`.
    has_combiner: bool = False

    def combine(self, key: Any, values: List[Any]) -> Iterable[KeyValue]:
        """Optional map-side combiner; by default the identity grouping.

        Only invoked when :attr:`has_combiner` is ``True``.  The combiner
        must be semantically idempotent with respect to ``reduce`` (it may
        run zero or more times).
        """
        for value in values:
            yield key, value

    # -- helpers -----------------------------------------------------------

    def emit_all(self, pairs: Iterable[KeyValue]) -> Iterator[KeyValue]:
        """Yield every pair from ``pairs`` (convenience for delegation)."""
        yield from pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
