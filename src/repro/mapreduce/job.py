"""Job abstractions: user-defined map / combine / reduce functions.

A :class:`MapReduceJob` bundles the two user-defined functions of the
MapReduce paradigm (Dean & Ghemawat), with the signatures used in the
paper's Section 3.1::

    map:    <k1, v1>    -> [<k2, v2>]
    reduce: <k2, [v2]>  -> [<k3, v3>]

Jobs may additionally define a ``combine`` function (a map-side
pre-reducer) and may receive read-only *side data* — the analogue of
Hadoop's DistributedCache — through :meth:`MapReduceJob.configure`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["KeyValue", "MapReduceJob"]

#: A single record flowing through the simulated cluster.
KeyValue = Tuple[Any, Any]


class MapReduceJob:
    """Base class for user-defined MapReduce jobs.

    Subclasses must override :meth:`map` and :meth:`reduce`; both are
    generators (or return iterables) of ``(key, value)`` pairs.  Jobs must
    be *stateless across records* except for configuration delivered by
    :meth:`configure` — the runtime is free to re-order record processing
    within a phase, exactly like a real cluster.
    """

    #: Name used for counter groups and driver logs.  Defaults to the
    #: class name; override for parameterized jobs.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self._side_data: Mapping[str, Any] = {}

    # -- configuration ---------------------------------------------------

    def configure(self, side_data: Optional[Mapping[str, Any]]) -> None:
        """Install read-only side data before the job runs.

        This models Hadoop's DistributedCache: small, immutable data
        (e.g. the document store used to verify similarity-join
        candidates) shipped to every task.
        """
        self._side_data = dict(side_data) if side_data else {}

    @property
    def side_data(self) -> Mapping[str, Any]:
        """The read-only side data installed by :meth:`configure`."""
        return self._side_data

    # -- user-defined functions ------------------------------------------

    def map(self, key: Any, value: Any) -> Iterable[KeyValue]:
        """Transform one input record into intermediate records."""
        raise NotImplementedError

    def reduce(self, key: Any, values: List[Any]) -> Iterable[KeyValue]:
        """Transform one intermediate key group into output records."""
        raise NotImplementedError

    # -- stateful hooks (delta iteration plane) ----------------------------
    #
    # Jobs run through :meth:`~repro.mapreduce.runtime.MapReduceRuntime.
    # run_stateful` keep their node records in a
    # :class:`~repro.mapreduce.state.ResidentStateStore` instead of
    # shuffling them every round.  Such jobs implement `reduce_state`
    # plus one of the two map hooks, depending on the execution mode.

    def map_resident(self, key: Any, state: Any) -> Iterable[KeyValue]:
        """Scan-mode map: emit this round's *messages* for one resident
        record.

        Unlike :meth:`map`, the record itself is never re-emitted — the
        reduce side reads it straight from the resident store — so only
        the lightweight cross-node messages enter the shuffle.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support resident-scan "
            "rounds (implement map_resident)"
        )

    def map_delta(self, key: Any, delta: Any) -> Iterable[KeyValue]:
        """Frontier-mode map: emit messages for one *changed* record.

        ``delta`` is either the record's new state or a
        :class:`~repro.mapreduce.state.Retired` naming surviving peers
        to notify of the record's departure.  Quiescent records are
        never mapped — the job's protocol must make their previously
        sent messages recoverable on the reduce side (GreedyMR caches
        them in each node's inbox).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support frontier delta "
            "rounds (implement map_delta)"
        )

    def reduce_state(
        self, key: Any, state: Any, values: List[Any]
    ) -> Tuple[Any, Iterable[KeyValue]]:
        """Join one key's messages against its resident state.

        ``state`` is the resident value (``None`` when the key is not
        resident — e.g. stray messages to a node that already left).
        Returns ``(new_state, outputs)``:

        * ``new_state`` equal to ``state`` — quiescent, no delta;
        * a different value — stored, and emitted as a delta;
        * a :class:`~repro.mapreduce.state.Retired` — the key leaves
          the store (its ``notify`` peers get the final delta);
        * ``None`` — no resident state to keep (only meaningful for
          keys that were not resident, e.g. pass-through output keys).

        ``outputs`` are ordinary job output records.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not a stateful job "
            "(implement reduce_state)"
        )

    # -- optional hooks ----------------------------------------------------

    #: Set to ``True`` in subclasses that implement :meth:`combine`.
    has_combiner: bool = False

    def combine(self, key: Any, values: List[Any]) -> Iterable[KeyValue]:
        """Optional map-side combiner; by default the identity grouping.

        Only invoked when :attr:`has_combiner` is ``True``.  The combiner
        must be semantically idempotent with respect to ``reduce`` (it may
        run zero or more times).
        """
        for value in values:
            yield key, value

    # -- helpers -----------------------------------------------------------

    def emit_all(self, pairs: Iterable[KeyValue]) -> Iterator[KeyValue]:
        """Yield every pair from ``pairs`` (convenience for delegation)."""
        yield from pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
