"""Hadoop-style counters for metering simulated MapReduce executions.

The paper reports efficiency as the *number of MapReduce iterations* and
analyses the *communication cost* of each job (``O(|E|)`` records for the
matching jobs).  :class:`Counters` meters both quantities: every simulated
job increments global and per-job counters for input/output/shuffled
records, and drivers count rounds.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple

__all__ = ["Counters"]


class Counters:
    """A two-level ``group -> name -> integer`` counter map.

    The API mirrors Hadoop's counters: increments are cheap, reads return
    plain integers, and a snapshot can be exported as nested dictionaries
    for reporting.

    >>> c = Counters()
    >>> c.increment("shuffle", "records", 10)
    >>> c.get("shuffle", "records")
    10
    """

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` in ``group``."""
        self._groups[group][name] += amount

    def get(self, group: str, name: str) -> int:
        """Return the current value of a counter (0 if never incremented)."""
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        """Return a copy of all counters in ``group``."""
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this instance."""
        for group, names in other._groups.items():
            for name, value in names.items():
                self._groups[group][name] += value

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Export all counters as plain nested dictionaries."""
        return {group: dict(names) for group, names in self._groups.items()}

    def reset(self) -> None:
        """Zero out every counter."""
        self._groups.clear()

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate over ``(group, name, value)`` triples, sorted."""
        for group in sorted(self._groups):
            for name in sorted(self._groups[group]):
                yield group, name, self._groups[group][name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{g}.{n}={v}" for g, n, v in self)
        return f"Counters({entries})"
