"""Hadoop-style counters for metering simulated MapReduce executions.

The paper reports efficiency as the *number of MapReduce iterations* and
analyses the *communication cost* of each job (``O(|E|)`` records for the
matching jobs).  :class:`Counters` meters both quantities: every simulated
job increments global and per-job counters for input/output/shuffled
records, and drivers count rounds.

Counters are the unit of *task-local metering* for the parallel
execution backends (see :mod:`repro.mapreduce.executors`): each task
attempt increments a private ``Counters`` instance, which the runtime
:meth:`~Counters.merge`\\ s into the shared instance in task-index order
once the task completes.  Because merging is pure integer addition —
commutative and associative — the merged totals are identical across
backends and regardless of completion order; deterministic merge order
makes the equivalence exact by construction rather than merely in
aggregate.  Instances are picklable so tasks can return them across
process boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["Counters"]


class Counters:
    """A two-level ``group -> name -> integer`` counter map.

    The API mirrors Hadoop's counters: increments are cheap, reads return
    plain integers, and a snapshot can be exported as nested dictionaries
    for reporting.

    >>> c = Counters()
    >>> c.increment("shuffle", "records", 10)
    >>> c.get("shuffle", "records")
    10
    """

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = {}

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` in ``group``."""
        names = self._groups.setdefault(group, {})
        names[name] = names.get(name, 0) + amount

    def get(self, group: str, name: str) -> int:
        """Return the current value of a counter (0 if never incremented)."""
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        """Return a copy of all counters in ``group``."""
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this instance.

        This is how per-task counters reach the runtime's shared
        instance; it never aliases ``other``'s storage.
        """
        for group, names in other._groups.items():
            mine = self._groups.setdefault(group, {})
            for name, value in names.items():
                mine[name] = mine.get(name, 0) + value

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Export all counters as plain nested dictionaries."""
        return {group: dict(names) for group, names in self._groups.items()}

    def reset(self) -> None:
        """Zero out every counter."""
        self._groups.clear()

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate over ``(group, name, value)`` triples, sorted."""
        for group in sorted(self._groups):
            for name in sorted(self._groups[group]):
                yield group, name, self._groups[group][name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{g}.{n}={v}" for g, n, v in self)
        return f"Counters({entries})"
