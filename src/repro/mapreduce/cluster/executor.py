"""``backend="cluster"``: the Executor adapter over the shared driver.

:class:`ClusterExecutor` satisfies the existing
:class:`~repro.mapreduce.executors.Executor` contract, so the runtime,
the iterative driver, the matching layer, the serving layer, and the
CLI all gain the distributed backend without any API change — and the
cluster joins the bit-identical-across-backends verification battery
for free.

Like the thread and process backends, the heavy resource (the
:class:`~repro.mapreduce.cluster.driver.ClusterDriver` and its worker
fleet) lives in the module-level shared pool registry, keyed
``("cluster", num_workers)``: constructing many runtimes — as
property-based tests do — shares one fleet, :meth:`close` evicts it,
and ``shutdown_shared_pools()`` / ``atexit`` reap the worker processes
at interpreter exit, so ``pytest -x`` leaves no orphaned daemons.

The recovery meters (``pool_respawns`` / ``resubmitted_tasks``) proxy
the shared driver's lifetime counts under the same names
:class:`~repro.mapreduce.executors.ProcessExecutor` uses, so the
runtime's delta metering into the volatile ``faults`` counter group
(``pool.respawns`` / ``task.resubmits``) covers cluster recovery with
zero runtime changes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..executors import (
    Executor,
    _evict_pool,
    _shared_pool,
)
from .driver import ClusterDriver, _default_cluster_workers

__all__ = ["ClusterExecutor"]


class ClusterExecutor(Executor):
    """Run tasks on a shared localhost worker fleet over TCP frames.

    Task functions, jobs (including side data), and all records must
    be picklable — the same constraint the processes backend imposes,
    for the same reason: task units cross a process boundary.
    """

    name = "cluster"
    picklable_tasks = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_cluster_workers()

    def _driver(self) -> ClusterDriver:
        return _shared_pool("cluster", self.max_workers)

    def _peek_driver(self) -> Optional[ClusterDriver]:
        """The shared driver if it exists — without creating one."""
        from ..executors import _POOL_LOCK, _SHARED_POOLS

        with _POOL_LOCK:
            return _SHARED_POOLS.get(("cluster", self.max_workers))

    # -- the Executor contract ---------------------------------------------

    def run_tasks(
        self, fn: Callable, tasks: Sequence[Tuple]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        return self._driver().run_tasks(fn, tasks)

    def run_tasks_speculative(
        self, fn: Callable, tasks: Sequence[Tuple], timeout: float
    ) -> Tuple[List[Any], int]:
        tasks = list(tasks)
        if not tasks:
            return [], 0
        return self._driver().run_tasks_speculative(fn, tasks, timeout)

    def close(self) -> None:
        _evict_pool("cluster", self.max_workers)

    # -- recovery meters (proxied from the shared driver) -------------------

    @property
    def pool_respawns(self) -> int:
        driver = self._peek_driver()
        return driver.pool_respawns if driver is not None else 0

    @property
    def resubmitted_tasks(self) -> int:
        driver = self._peek_driver()
        return driver.resubmitted_tasks if driver is not None else 0

    @property
    def last_task_workers(self) -> List[Optional[int]]:
        """Worker slot per accepted result of the latest dispatch."""
        driver = self._peek_driver()
        return driver.last_task_workers if driver is not None else []

    def publish_metrics(self, registry: Any) -> None:
        """Export fleet health as (volatile) telemetry gauges.

        Task→worker assignment is timing-dependent, so everything here
        is a gauge — excluded from the bit-identity contract by
        ``strip_volatile_counters`` wholesale.
        """
        driver = self._peek_driver()
        if driver is None:
            return
        stats = driver.worker_stats()
        registry.gauge("cluster", "workers").set(stats["workers"])
        registry.gauge("cluster", "worker.respawns").set(
            stats["respawns"]
        )
        registry.gauge("cluster", "task.resubmits").set(
            stats["resubmits"]
        )
        registry.gauge("cluster", "queue_depth.highwater").set(
            stats["queue_depth_highwater"]
        )
        for slot, count in sorted(stats["tasks_by_worker"].items()):
            registry.gauge("cluster", f"worker.{slot}.tasks").set(
                count
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterExecutor(max_workers={self.max_workers})"
