"""The cluster driver: task assignment, supervision, and recovery.

:class:`ClusterDriver` owns a fleet of worker daemon processes (see
:mod:`~repro.mapreduce.cluster.worker`) and plays the JobTracker role:
it assigns task units to workers over the frame protocol, pings every
worker on a heartbeat cadence, declares silent workers dead and
re-executes their in-flight tasks elsewhere, respawns dead workers
(with fresh spill directories — a restarted worker has lost its
blobs, exactly like a remachined node), and races straggling tasks
with speculative backup attempts.

The driver is *also* the shared pool behind ``backend="cluster"``: it
duck-types the ``shutdown(wait, cancel_futures)`` surface the shared
pool registry expects, and it exposes the same ``pool_respawns`` /
``resubmitted_tasks`` lifetime meters as
:class:`~repro.mapreduce.executors.ProcessExecutor`, so the runtime's
recovery metering (``pool.respawns`` / ``task.resubmits`` in the
volatile ``faults`` group) covers the cluster without a single runtime
change.

Dispatch model
--------------

One dispatch at a time (the runtime is phase-synchronous anyway): the
batch becomes a shared pending deque, one driver-side serving thread
per worker pulls from it, executes over that worker's control
connection, and stores the outcome under the task's index — so results
come back in input order and the first task-order failure raises,
preserving the backend bit-identity contract.  A thread whose
interaction fails (connection drop, worker death, lost blob) re-queues
the task and runs recovery on its worker: reconnect if the process is
alive (a dropped frame), respawn it if not, giving up with
:class:`WorkerDied` once the dispatch's respawn budget is spent.

When the batch completes while a discarded attempt is still running
(a speculative loser, or a task re-executed past a slow primary), the
driver *abandons* it: the worker's control connection is closed —
unblocking the serving thread — and lazily reopened on the next
dispatch.  The worker finishes the attempt, fails to reply into the
closed socket, and simply keeps serving; its result was never going to
be read.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import shutil
import socket as _socket
import tempfile
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutorError
from .heartbeat import DEAD, HeartbeatMonitor
from .protocol import (
    ConnectionClosed,
    ProtocolError,
    RemoteBlob,
    connect,
    recv_frame,
    request,
    send_frame,
)
from .worker import READY_FILE, worker_main

__all__ = ["ClusterDriver", "TaskLost", "WorkerDied"]


class TaskLost(ConnectionError):
    """A task attempt's result is unrecoverable (lost blob, dead
    worker, dropped frame); the task will be re-executed."""


class WorkerDied(ExecutorError):
    """Workers kept dying past the dispatch's respawn budget."""


def _default_cluster_workers() -> int:
    # Each worker is a full daemon process with its own socket server;
    # cap lower than the in-process pools.
    return min(os.cpu_count() or 1, 4)


class _WorkerHandle:
    """Driver-side bookkeeping for one worker slot."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.generation = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        #: This generation's private spill directory (holds the
        #: worker's blobs and its ``ready.json`` announcement).
        self.spill_dir: Optional[str] = None
        #: Serializes respawn/declare-dead decisions for this slot.
        self.lock = threading.Lock()
        #: Guards the socket attributes (assigned and closed from
        #: different threads).
        self.sock_lock = threading.Lock()
        self.control: Optional[Any] = None
        self.ping: Optional[Any] = None
        #: True while a serving thread is inside a task interaction —
        #: tells the abandonment path which connections to sever.
        self.in_flight = False
        #: Generation already declared dead (so the heartbeat kills a
        #: wedged worker once, not every cadence tick).
        self.dead_generation = -1

    def close_sockets(self) -> None:
        with self.sock_lock:
            for attr in ("control", "ping"):
                sock = getattr(self, attr)
                if sock is not None:
                    try:
                        # shutdown() before close(): close() alone
                        # does not wake another thread blocked in
                        # recv() on this socket.
                        sock.shutdown(_socket.SHUT_RDWR)
                    except OSError:
                        pass
                    try:
                        sock.close()
                    except OSError:
                        pass
                    setattr(self, attr, None)


class _Dispatch:
    """Shared state of one batch: the pending queue and the outcomes."""

    def __init__(self, frames: List[bytes], respawn_budget: int) -> None:
        self.frames = frames
        count = len(frames)
        self.pending: deque = deque(
            (index, 0) for index in range(count)
        )
        self.done = [False] * count
        self.outcomes: List[Any] = [None] * count
        self.workers: List[Optional[int]] = [None] * count
        self.failures = [0] * count
        self.completed = 0
        self.wins = 0
        self.resubmits = 0
        self.respawns_left = respawn_budget
        self.finished = False
        self.abandoned = False
        self.failure: Optional[BaseException] = None
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)


class ClusterDriver:
    """Supervise a localhost worker fleet and execute task batches.

    Parameters
    ----------
    num_workers:
        Fleet size (default: ``min(cpu_count, 4)``).
    blob_threshold:
        Task results whose pickled size exceeds this stay in the
        producing worker's local spill files and come back as
        :class:`~repro.mapreduce.cluster.protocol.RemoteBlob` handles,
        fetched over the data plane on demand.
    heartbeat_interval, miss_limit:
        Ping cadence and the silent-interval budget before a worker is
        declared dead (see :class:`~repro.mapreduce.cluster.heartbeat.
        HeartbeatMonitor`).
    max_worker_respawns:
        Worker deaths tolerated per dispatch before the batch fails
        with :class:`WorkerDied` (mirrors
        ``ProcessExecutor.max_pool_respawns``).
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        blob_threshold: int = 256 * 1024,
        heartbeat_interval: float = 0.5,
        miss_limit: int = 10,
        max_worker_respawns: int = 6,
        connect_timeout: float = 10.0,
        start_timeout: float = 20.0,
        fetch_retries: int = 3,
        max_task_failures: int = 10,
    ) -> None:
        self.num_workers = num_workers or _default_cluster_workers()
        self.blob_threshold = blob_threshold
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.max_worker_respawns = max_worker_respawns
        self.connect_timeout = connect_timeout
        self.start_timeout = start_timeout
        self.fetch_retries = fetch_retries
        self.max_task_failures = max_task_failures
        #: Lifetime recovery meters; same names as ProcessExecutor, so
        #: the runtime's before/after delta metering applies verbatim.
        self.pool_respawns = 0
        self.resubmitted_tasks = 0
        #: Worker slot that produced each accepted result of the most
        #: recent dispatch (for span attribution / telemetry).
        self.last_task_workers: List[Optional[int]] = []
        #: Lifetime accepted-result counts per worker slot.
        self.tasks_by_worker: Dict[int, int] = {}
        #: High-water mark of the pending queue (telemetry gauge).
        self.queue_depth_highwater = 0
        #: Test hook: called with the RemoteBlob before every fetch.
        self._before_fetch: Optional[Callable[[RemoteBlob], None]] = None

        self._start_lock = threading.Lock()
        self._dispatch_lock = threading.Lock()
        self._handles: List[_WorkerHandle] = []
        self._ctx = multiprocessing.get_context()
        self._spill_root: Optional[str] = None
        self._monitor: Optional[HeartbeatMonitor] = None
        self._mon_lock = threading.Lock()
        self._stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None

    # -- fleet lifecycle ---------------------------------------------------

    def _ensure_started(self) -> None:
        with self._start_lock:
            if self._handles:
                return
            self._spill_root = tempfile.mkdtemp(prefix="repro-cluster-")
            self._monitor = HeartbeatMonitor(
                self.heartbeat_interval, self.miss_limit
            )
            handles = [
                _WorkerHandle(slot) for slot in range(self.num_workers)
            ]
            for handle in handles:  # launch the whole fleet first ...
                self._launch(handle)
            for handle in handles:  # ... then collect readiness
                self._finish_spawn(handle)
            self._handles = handles
            self._stop = threading.Event()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-cluster-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    def _launch(self, handle: _WorkerHandle) -> None:
        handle.generation += 1
        handle.spill_dir = os.path.join(
            self._spill_root,
            f"w{handle.slot}-g{handle.generation}",
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.slot,
                handle.generation,
                handle.spill_dir,
                self.blob_threshold,
            ),
            name=f"repro-cluster-w{handle.slot}",
            daemon=True,
        )
        process.start()
        handle.process = process

    def _finish_spawn(self, handle: _WorkerHandle) -> None:
        port, pid = self._await_ready(handle)
        handle.port = port
        handle.pid = pid
        with self._mon_lock:
            self._monitor.reset(handle.slot, time.monotonic())

    def _await_ready(self, handle: _WorkerHandle) -> Tuple[int, int]:
        """Wait for the worker's ``ready.json`` announcement.

        Readiness is a file rename into the generation's private spill
        directory, not a shared queue: no cross-process lock exists for
        a SIGKILLed sibling to wedge, and concurrent respawns cannot
        interleave announcements.  A worker that dies *during* startup
        is reported immediately (with its exit code) instead of being
        waited out.
        """
        deadline = time.monotonic() + self.start_timeout
        path = os.path.join(handle.spill_dir, READY_FILE)
        while True:
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    info = json.load(stream)
            except (OSError, ValueError):
                info = None
            if info is not None:
                return int(info["port"]), int(info["pid"])
            process = handle.process
            if process is not None and not process.is_alive():
                try:  # it may have announced just before dying
                    with open(path, "r", encoding="utf-8") as stream:
                        info = json.load(stream)
                except (OSError, ValueError):
                    raise ExecutorError(
                        f"cluster worker {handle.slot} (generation "
                        f"{handle.generation}) died during startup "
                        f"(exit code {process.exitcode})"
                    ) from None
                return int(info["port"]), int(info["pid"])
            if time.monotonic() > deadline:
                raise ExecutorError(
                    f"cluster worker {handle.slot} (generation "
                    f"{handle.generation}) failed to start within "
                    f"{self.start_timeout}s"
                )
            time.sleep(0.005)

    def shutdown(
        self, wait: bool = True, cancel_futures: bool = False
    ) -> None:
        """Stop the heartbeat, ask workers to exit, reap stragglers.

        Matches the pool ``shutdown`` surface the shared-pool registry
        and ``atexit`` hook call; safe to invoke repeatedly.
        """
        with self._start_lock:
            handles, self._handles = self._handles, []
            stop, self._stop = self._stop, None
            hb_thread, self._hb_thread = self._hb_thread, None
            spill_root, self._spill_root = self._spill_root, None
        if not handles:
            return
        if stop is not None:
            stop.set()
        if hb_thread is not None:
            hb_thread.join(timeout=2.0)
        for handle in handles:
            handle.close_sockets()
            if handle.port is not None:
                try:
                    sock = connect(handle.port, timeout=0.5)
                    try:
                        request(sock, {"op": "shutdown"})
                    finally:
                        sock.close()
                except Exception:
                    pass  # already gone; the join below reaps it
        grace = 1.0 if wait else 0.2
        for handle in handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=grace)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        if spill_root is not None:
            shutil.rmtree(spill_root, ignore_errors=True)

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        stop = self._stop
        while stop is not None and not stop.wait(self.heartbeat_interval):
            for handle in list(self._handles):
                if handle.process is None:
                    continue
                pong = self._ping(handle)
                now = time.monotonic()
                with self._mon_lock:
                    monitor = self._monitor
                    if monitor is None:
                        return
                    if pong:
                        monitor.beat(handle.slot, now)
                    state = monitor.state(handle.slot, now)
                if (
                    state == DEAD
                    and handle.dead_generation != handle.generation
                ):
                    handle.dead_generation = handle.generation
                    self._declare_dead(handle)

    def _ping(self, handle: _WorkerHandle) -> bool:
        try:
            with handle.sock_lock:
                sock = handle.ping
            if sock is None:
                sock = connect(
                    handle.port, timeout=self.heartbeat_interval
                )
                sock.settimeout(max(self.heartbeat_interval, 0.2))
                with handle.sock_lock:
                    handle.ping = sock
            header, _ = request(sock, {"op": "ping"})
            return header.get("op") == "pong"
        except (OSError, ProtocolError):
            with handle.sock_lock:
                if handle.ping is not None:
                    try:
                        handle.ping.close()
                    except OSError:
                        pass
                    handle.ping = None
            return False

    def _declare_dead(self, handle: _WorkerHandle) -> None:
        """Kill a silent worker and sever its connections.

        The sever is the load-bearing part: it unblocks any serving
        thread waiting on the wedged worker's reply, which re-queues
        the task and respawns the slot through the normal recovery
        path.
        """
        with handle.lock:
            process = handle.process
            if process is not None and process.is_alive():
                try:
                    process.kill()
                except Exception:
                    pass
            handle.close_sockets()

    # -- dispatch ----------------------------------------------------------

    def run_tasks(
        self, fn: Callable, tasks: Sequence[Tuple]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        outcomes, _ = self._dispatch(fn, tasks, timeout=None)
        return _unwrap(outcomes)

    def run_tasks_speculative(
        self, fn: Callable, tasks: Sequence[Tuple], timeout: float
    ) -> Tuple[List[Any], int]:
        tasks = list(tasks)
        if not tasks:
            return [], 0
        outcomes, wins = self._dispatch(fn, tasks, timeout=timeout)
        return _unwrap(outcomes), wins

    def _dispatch(
        self,
        fn: Callable,
        tasks: List[Tuple],
        timeout: Optional[float],
    ) -> Tuple[List[Any], int]:
        self._ensure_started()
        frames: List[bytes] = []
        for task in tasks:
            try:
                frames.append(
                    pickle.dumps(
                        (fn, tuple(task)), pickle.HIGHEST_PROTOCOL
                    )
                )
            except Exception as exc:
                name = getattr(fn, "__name__", str(fn))
                raise ExecutorError(
                    f"cluster backend could not serialize a task for "
                    f"{name!r}: {exc} (jobs, side data, and records "
                    "must be picklable — define jobs at module level)"
                ) from exc
        with self._dispatch_lock:
            dispatch = _Dispatch(frames, self.max_worker_respawns)
            self.queue_depth_highwater = max(
                self.queue_depth_highwater, len(frames)
            )
            threads = [
                threading.Thread(
                    target=self._serve,
                    args=(handle, dispatch),
                    name=f"repro-cluster-serve-w{handle.slot}",
                    daemon=True,
                )
                for handle in self._handles
            ]
            for thread in threads:
                thread.start()
            try:
                if timeout is not None:
                    self._speculate(dispatch, timeout)
                with dispatch.cond:
                    while (
                        not dispatch.finished
                        and dispatch.failure is None
                    ):
                        dispatch.cond.wait(0.1)
            finally:
                self._abandon(dispatch)
                for thread in threads:
                    thread.join(timeout=2.0)
            self.resubmitted_tasks += dispatch.resubmits
            self.last_task_workers = list(dispatch.workers)
            for slot in dispatch.workers:
                if slot is not None:
                    self.tasks_by_worker[slot] = (
                        self.tasks_by_worker.get(slot, 0) + 1
                    )
            if dispatch.failure is not None:
                raise dispatch.failure
            return dispatch.outcomes, dispatch.wins

    def _speculate(self, dispatch: _Dispatch, timeout: float) -> None:
        """After ``timeout`` seconds, enqueue backups for stragglers."""
        deadline = time.monotonic() + timeout
        with dispatch.cond:
            while not dispatch.finished and dispatch.failure is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                dispatch.cond.wait(min(remaining, 0.1))
            if dispatch.finished or dispatch.failure is not None:
                return
            for index in range(len(dispatch.frames)):
                if not dispatch.done[index]:
                    dispatch.pending.append((index, 1))
            dispatch.cond.notify_all()

    def _abandon(self, dispatch: _Dispatch) -> None:
        """Release serving threads still waiting on discarded attempts."""
        with dispatch.cond:
            dispatch.abandoned = True
            dispatch.cond.notify_all()
        for handle in self._handles:
            if handle.in_flight:
                handle.close_sockets()

    def _serve(self, handle: _WorkerHandle, dispatch: _Dispatch) -> None:
        """One worker's serving loop: pull, execute, store, recover."""
        while True:
            with dispatch.cond:
                while (
                    not dispatch.pending
                    and not dispatch.finished
                    and not dispatch.abandoned
                    and dispatch.failure is None
                ):
                    dispatch.cond.wait(0.1)
                if (
                    dispatch.finished
                    or dispatch.abandoned
                    or dispatch.failure is not None
                ):
                    return
                index, attempt = dispatch.pending.popleft()
                if dispatch.done[index]:
                    continue
            try:
                outcome, produced_by = self._execute(
                    handle, dispatch, index, attempt
                )
            except ExecutorError as exc:
                with dispatch.cond:
                    if dispatch.failure is None:
                        dispatch.failure = exc
                    dispatch.cond.notify_all()
                return
            except (TaskLost, ProtocolError, OSError) as exc:
                with dispatch.cond:
                    if dispatch.abandoned or dispatch.finished:
                        return
                    if not dispatch.done[index]:
                        dispatch.failures[index] += 1
                        if (
                            dispatch.failures[index]
                            >= self.max_task_failures
                        ):
                            dispatch.failure = WorkerDied(
                                f"cluster backend: task {index} failed "
                                f"{dispatch.failures[index]} times "
                                f"(last: {exc})"
                            )
                            dispatch.cond.notify_all()
                            return
                        dispatch.pending.append((index, attempt))
                        dispatch.resubmits += 1
                        dispatch.cond.notify_all()
                try:
                    self._recover(handle, dispatch)
                except ExecutorError as budget_exc:
                    with dispatch.cond:
                        if dispatch.failure is None:
                            dispatch.failure = budget_exc
                        dispatch.cond.notify_all()
                    return
                continue
            with dispatch.cond:
                if not dispatch.done[index]:
                    dispatch.done[index] = True
                    dispatch.outcomes[index] = outcome
                    dispatch.workers[index] = produced_by
                    if attempt > 0:
                        dispatch.wins += 1
                    dispatch.completed += 1
                    if dispatch.completed == len(dispatch.frames):
                        dispatch.finished = True
                dispatch.cond.notify_all()

    def _execute(
        self,
        handle: _WorkerHandle,
        dispatch: _Dispatch,
        index: int,
        attempt: int,
    ) -> Tuple[Any, int]:
        """One task interaction: send, await, fetch (if blob), decode."""
        handle.in_flight = True
        try:
            sock = self._control(handle)
            send_frame(
                sock,
                {"op": "task", "id": f"{index}.{attempt}"},
                dispatch.frames[index],
            )
            header, payload = recv_frame(sock)
            if header.get("op") == "error":
                name = header.get("kind", "error")
                raise ExecutorError(
                    f"cluster backend could not execute a task "
                    f"({name}): {header.get('detail')} (jobs, side "
                    "data, records, and results must be picklable)"
                )
            if "blob" in header:
                payload = self._fetch_blob(
                    RemoteBlob.from_header(header["blob"])
                )
            try:
                outcome = pickle.loads(payload)
            except Exception as exc:
                raise TaskLost(
                    f"undecodable result for task {index}: {exc}"
                ) from exc
            return outcome, int(header.get("worker", handle.slot))
        finally:
            handle.in_flight = False

    def _control(self, handle: _WorkerHandle) -> Any:
        with handle.sock_lock:
            sock = handle.control
        if sock is not None:
            return sock
        sock = connect(handle.port, timeout=self.connect_timeout)
        sock.settimeout(None)  # task replies take as long as tasks do
        with handle.sock_lock:
            handle.control = sock
        return sock

    def _fetch_blob(self, blob: RemoteBlob) -> bytes:
        """Pull result bytes from the owning worker's data plane.

        Transient connection errors are retried; a worker that no
        longer holds the blob (it restarted and lost its spill files)
        raises :class:`TaskLost`, and the task is re-executed — the
        fetch-side half of the worker-death recovery story.
        """
        hook = self._before_fetch
        if hook is not None:
            hook(blob)
        last: Optional[BaseException] = None
        for attempt in range(self.fetch_retries):
            try:
                sock = connect(blob.port, timeout=self.connect_timeout)
                try:
                    header, payload = request(
                        sock, {"op": "fetch", "blob": blob.blob}
                    )
                finally:
                    sock.close()
            except (OSError, ProtocolError) as exc:
                last = exc
                time.sleep(0.05 * (attempt + 1))
                continue
            if header.get("op") == "error":
                raise TaskLost(
                    f"worker {blob.worker} no longer holds blob "
                    f"{blob.blob!r}: {header.get('detail')}"
                )
            if len(payload) != blob.size:
                raise TaskLost(
                    f"short blob {blob.blob!r}: got {len(payload)} of "
                    f"{blob.size} bytes"
                )
            return payload
        raise TaskLost(
            f"could not reach worker {blob.worker} for blob "
            f"{blob.blob!r} after {self.fetch_retries} attempts: {last}"
        )

    def _recover(
        self, handle: _WorkerHandle, dispatch: _Dispatch
    ) -> bool:
        """Bring a failed worker slot back; returns True on respawn.

        A live process whose connection dropped (injected frame drop,
        severed socket) is simply reconnected.  A dead process is
        respawned with a fresh generation — new port, new empty spill
        directory — consuming one unit of the dispatch's respawn
        budget; past the budget the dispatch fails with
        :class:`WorkerDied`.
        """
        with handle.lock:
            handle.close_sockets()
            process = handle.process
            if process is not None and process.is_alive():
                try:
                    sock = connect(handle.port, timeout=1.0)
                except OSError:
                    try:  # listening socket gone: the worker is toast
                        process.kill()
                    except Exception:
                        pass
                else:
                    sock.settimeout(None)
                    with handle.sock_lock:
                        handle.control = sock
                    return False
            if process is not None:
                process.join(timeout=2.0)
            with dispatch.cond:
                if dispatch.respawns_left <= 0:
                    raise WorkerDied(
                        "cluster backend: workers kept dying after "
                        f"{self.max_worker_respawns} respawns"
                    )
                dispatch.respawns_left -= 1
            self._launch(handle)
            self._finish_spawn(handle)
            self.pool_respawns += 1
            return True

    # -- telemetry ---------------------------------------------------------

    def worker_stats(self) -> Dict[str, Any]:
        """A snapshot for the telemetry plane (volatile by nature)."""
        return {
            "workers": self.num_workers,
            "respawns": self.pool_respawns,
            "resubmits": self.resubmitted_tasks,
            "queue_depth_highwater": self.queue_depth_highwater,
            "tasks_by_worker": dict(self.tasks_by_worker),
        }

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker PIDs (tests use this to aim chaos)."""
        return [handle.pid for handle in self._handles]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterDriver(num_workers={self.num_workers}, "
            f"started={bool(self._handles)}, "
            f"respawns={self.pool_respawns})"
        )


def _unwrap(outcomes: List[Any]) -> List[Any]:
    """Turn ``(ok, value)`` outcomes into results, raising the first
    task-order failure — the cross-backend error determinism rule."""
    results = []
    for ok, value in outcomes:
        if not ok:
            raise value
        results.append(value)
    return results
