"""The wire protocol of the cluster backend: length-prefixed frames.

Every message between the driver and a worker (and between peers on
the fetch path) is one *frame*::

    MAGIC(4) VERSION(1) HEADER_LEN(4, big-endian) PAYLOAD_LEN(8) \
        HEADER(json, utf-8) PAYLOAD(raw bytes)

The header is a small JSON object (``{"op": "task", ...}``) so frames
are inspectable on the wire; the payload carries the pickled task unit
or result, which never needs to be parsed to route the frame.  Both
halves are length-prefixed, so a reader always knows exactly how many
bytes to consume — there is no in-band framing to corrupt.

Failure surface
---------------

* :class:`ProtocolError` — the stream is not speaking this protocol
  (bad magic, unsupported version, oversized header): a *permanent*
  error, never retried.
* :class:`ConnectionClosed` — the peer hung up mid-frame (worker
  death, injected frame drop).  A :class:`ConnectionError` subclass,
  so generic ``except OSError`` recovery treats it like any other
  transport failure: the driver re-executes the task elsewhere.

Blob handles
------------

A worker that produces a task result larger than its blob threshold
keeps the pickled bytes in a worker-local spill file and replies with
a :class:`RemoteBlob` handle instead; the consumer fetches the bytes
directly from the owning worker with a ``fetch`` frame.  The handle is
plain data (owner address + blob id), picklable and JSON-friendly, so
it can travel inside result headers.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import MapReduceError

__all__ = [
    "ConnectionClosed",
    "MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBlob",
    "connect",
    "recv_frame",
    "request",
    "send_frame",
]

MAGIC = b"RPMR"
PROTOCOL_VERSION = 1

#: MAGIC + version + header length (u32) + payload length (u64).
_PREFIX = struct.Struct(">4sBIQ")

#: Headers are small control JSON; anything bigger is a framing bug.
_MAX_HEADER = 1 << 20


class ProtocolError(MapReduceError):
    """The stream is not a well-formed cluster-protocol frame."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-frame (death or frame drop)."""


@dataclass(frozen=True)
class RemoteBlob:
    """A handle to task-result bytes held in a worker's local spill.

    ``worker`` is the owning worker's id (diagnostics), ``port`` its
    listening port on 127.0.0.1, ``blob`` the opaque id to fetch, and
    ``size`` the pickled payload length in bytes.
    """

    worker: int
    port: int
    blob: str
    size: int

    def to_header(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "port": self.port,
            "blob": self.blob,
            "size": self.size,
        }

    @classmethod
    def from_header(cls, header: Dict[str, Any]) -> "RemoteBlob":
        return cls(
            worker=int(header["worker"]),
            port=int(header["port"]),
            blob=str(header["blob"]),
            size=int(header["size"]),
        )


def send_frame(
    sock: socket.socket,
    header: Dict[str, Any],
    payload: bytes = b"",
) -> None:
    """Serialize and send one frame (header JSON + raw payload)."""
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(encoded) > _MAX_HEADER:
        raise ProtocolError(
            f"frame header of {len(encoded)} bytes exceeds the "
            f"{_MAX_HEADER}-byte limit"
        )
    prefix = _PREFIX.pack(
        MAGIC, PROTOCOL_VERSION, len(encoded), len(payload)
    )
    # One sendall per section: the kernel coalesces, and memoryview
    # avoids copying a potentially large payload into a joined buffer.
    sock.sendall(prefix)
    sock.sendall(encoded)
    if payload:
        sock.sendall(memoryview(payload))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of "
                f"{count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
) -> Tuple[Dict[str, Any], bytes]:
    """Receive one frame; returns ``(header, payload)``.

    Raises :class:`ConnectionClosed` if the peer hung up (cleanly
    between frames or mid-frame) and :class:`ProtocolError` if the
    stream is not speaking this protocol.
    """
    magic, version, header_len, payload_len = _PREFIX.unpack(
        _recv_exact(sock, _PREFIX.size)
    )
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(speaking {PROTOCOL_VERSION})"
        )
    if header_len > _MAX_HEADER:
        raise ProtocolError(
            f"frame header of {header_len} bytes exceeds the "
            f"{_MAX_HEADER}-byte limit"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len))
    except ValueError as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header)}"
        )
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return header, payload


def connect(
    port: int,
    timeout: Optional[float] = None,
    host: str = "127.0.0.1",
) -> socket.socket:
    """Open a TCP connection to a worker's listening socket."""
    sock = socket.create_connection((host, port), timeout=timeout)
    # Task frames are request/response; never batch tiny prefixes.
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def request(
    sock: socket.socket,
    header: Dict[str, Any],
    payload: bytes = b"",
) -> Tuple[Dict[str, Any], bytes]:
    """One round trip: send a frame, receive the reply frame."""
    send_frame(sock, header, payload)
    return recv_frame(sock)
