"""The driver's heartbeat bookkeeping, as a pure state machine.

The :class:`~repro.mapreduce.cluster.driver.ClusterDriver` pings every
worker on a fixed cadence; this module owns the *decision* of when a
quiet worker stops being merely slow and becomes presumed-dead.  It is
deliberately time-injected (every method takes ``now``) so the timeout
ladder is unit-testable without sleeping:

* ``alive`` — a pong arrived within ``interval`` seconds;
* ``suspect`` — between ``interval`` and ``interval * miss_limit``
  seconds of silence: the worker keeps its tasks, but the driver
  prefers other workers for new dispatches;
* ``dead`` — silence past ``interval * miss_limit``: the driver
  closes the worker's connections (unblocking any thread waiting on a
  task reply), re-executes its in-flight tasks elsewhere, and respawns
  the process.

A worker that comes back from ``suspect`` (a late pong) is simply
``alive`` again; ``dead`` is sticky until :meth:`reset` — a restarted
worker starts a fresh lease.  On localhost a SIGKILLed worker usually
announces itself immediately (the kernel resets its sockets), so the
heartbeat path is the backstop for the quieter failure shapes: a
wedged daemon, a dropped ping frame, a worker alive but unreachable.
"""

from __future__ import annotations

from typing import Dict

from ..errors import JobValidationError

__all__ = ["HeartbeatMonitor"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class HeartbeatMonitor:
    """Track per-worker pong recency and classify silence.

    Parameters
    ----------
    interval:
        The ping cadence in seconds; silence up to one interval is
        normal scheduling jitter.
    miss_limit:
        How many consecutive silent intervals a worker is granted
        before it is declared dead (``>= 2`` so one dropped pong can
        never kill a healthy worker).
    """

    def __init__(self, interval: float, miss_limit: int = 5) -> None:
        if interval <= 0:
            raise JobValidationError(
                f"heartbeat interval must be > 0, got {interval}"
            )
        if miss_limit < 2:
            raise JobValidationError(
                f"miss_limit must be >= 2, got {miss_limit}"
            )
        self.interval = interval
        self.miss_limit = miss_limit
        self._last_pong: Dict[int, float] = {}
        self._dead: Dict[int, bool] = {}

    def reset(self, worker: int, now: float) -> None:
        """Start (or restart) a worker's lease at time ``now``."""
        self._last_pong[worker] = now
        self._dead[worker] = False

    def beat(self, worker: int, now: float) -> None:
        """Record a pong.  Ignored once a worker is declared dead —
        its replacement gets a fresh lease via :meth:`reset`."""
        if worker not in self._last_pong:
            raise JobValidationError(
                f"heartbeat for unknown worker {worker}; reset() first"
            )
        if not self._dead[worker]:
            self._last_pong[worker] = now

    def silence(self, worker: int, now: float) -> float:
        """Seconds since the worker's last pong."""
        return now - self._last_pong[worker]

    def state(self, worker: int, now: float) -> str:
        """Classify the worker: ``alive`` / ``suspect`` / ``dead``.

        The first call to cross the dead threshold latches: the state
        stays ``dead`` even if a zombie pong arrives later, so the
        driver's kill-and-respawn decision cannot flap.
        """
        if self._dead.get(worker):
            return DEAD
        silence = self.silence(worker, now)
        if silence <= self.interval:
            return ALIVE
        if silence <= self.interval * self.miss_limit:
            return SUSPECT
        self._dead[worker] = True
        return DEAD

    def deadline(self, worker: int) -> float:
        """The absolute time at which the worker will be declared dead
        absent a pong (for scheduling the next check)."""
        return self._last_pong[worker] + self.interval * self.miss_limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatMonitor(interval={self.interval}, "
            f"miss_limit={self.miss_limit}, "
            f"workers={sorted(self._last_pong)})"
        )
