"""The worker daemon: one process serving tasks, pings, and fetches.

A worker is a plain OS process (spawned by the
:class:`~repro.mapreduce.cluster.driver.ClusterDriver`) that binds an
ephemeral localhost port, announces readiness by atomically publishing
a ``ready.json`` (port + pid) into its per-generation spill directory,
and then serves protocol frames forever:

* ``task`` — unpickle ``(fn, args)``, execute guarded (job errors come
  back as values, exactly like the processes backend's trampoline),
  and reply with the pickled outcome.  Outcomes larger than the blob
  threshold stay *worker-local*: the pickled bytes are written to this
  worker's spill directory and the reply carries only a
  :class:`~repro.mapreduce.cluster.protocol.RemoteBlob` handle — the
  consumer fetches the bytes directly from this worker's data plane.
  This is the cluster's shuffle-locality story: big map outputs live
  with the worker that produced them until a reduce-side consumer
  pulls them, and die with it (their loss is recovered by task
  re-execution, as on a real cluster).
* ``ping`` — heartbeat probe; answered from a dedicated handler
  thread, so a worker stays responsive while a long task runs and a
  ping timeout therefore means *process trouble*, not mere load.
* ``fetch`` — stream a locally held blob to any peer (driver or
  another worker); unknown ids get an ``error/blob-missing`` reply,
  the signal that triggers re-execution after a restart.
* ``mute`` — test hook: suppress pong replies for N seconds so the
  heartbeat ladder can be exercised deterministically.
* ``shutdown`` — acknowledge and exit.

Each accepted connection is served by its own daemon thread; task
execution is serialized by a process-wide lock (one task at a time per
worker — fleet parallelism comes from worker count, as in the
one-slot-per-container cluster shape).

Fault-injection context
-----------------------

:func:`~repro.mapreduce.faults.resilient_task_call` runs *inside* the
worker and fires scheduled :class:`~repro.mapreduce.faults.
TaskFaultSpec` faults.  The cluster-specific kinds consult this
module: ``worker_kill`` calls ``os._exit`` only when
:func:`in_worker` is true (on single-process backends it degrades to
a plain injected crash), and ``drop_frame`` arms
:func:`request_drop_reply`, making the connection handler close the
socket instead of replying — the driver sees a dropped frame from a
perfectly healthy worker.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import threading
import time
from typing import Any, Dict, Optional

from .protocol import (
    RemoteBlob,
    recv_frame,
    send_frame,
)

__all__ = [
    "READY_FILE",
    "WORKER_ENV_FLAG",
    "consume_drop_reply",
    "in_worker",
    "request_drop_reply",
    "worker_main",
]

#: Set in the worker process environment — lets task code (and the
#: fault plane) detect it is running inside a cluster worker daemon.
WORKER_ENV_FLAG = "REPRO_CLUSTER_WORKER"

_STATE: Dict[str, Any] = {
    "active": False,
    "slot": None,
    "drop_reply": False,
    "muted_until": 0.0,
}


def in_worker() -> bool:
    """True inside a cluster worker daemon process."""
    return bool(_STATE["active"])


def request_drop_reply() -> None:
    """Arm the injected frame drop for the task being executed."""
    _STATE["drop_reply"] = True


def consume_drop_reply() -> bool:
    """Read-and-clear the armed frame drop."""
    armed = bool(_STATE["drop_reply"])
    _STATE["drop_reply"] = False
    return armed


class _BlobStore:
    """Worker-local spill files for oversized task outcomes."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._sequence = 0
        self._sizes: Dict[str, int] = {}

    def put(self, payload: bytes) -> str:
        with self._lock:
            self._sequence += 1
            blob_id = f"blob-{self._sequence:06d}"
            self._sizes[blob_id] = len(payload)
        path = os.path.join(self.root, blob_id)
        # Atomic publish (the PR 2 crash-safety idiom): a fetch can
        # never observe a half-written blob.
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
        return blob_id

    def get(self, blob_id: str) -> Optional[bytes]:
        if blob_id not in self._sizes:
            return None
        with open(os.path.join(self.root, blob_id), "rb") as handle:
            return handle.read()

    def __len__(self) -> int:
        return len(self._sizes)


class _WorkerServer:
    def __init__(
        self,
        slot: int,
        spill_dir: str,
        blob_threshold: int,
    ) -> None:
        self.slot = slot
        self.blob_threshold = blob_threshold
        self.blobs = _BlobStore(spill_dir)
        self.tasks_executed = 0
        self._task_lock = threading.Lock()
        self.listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self.listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(64)
        self.port = self.listener.getsockname()[1]

    # -- frame handlers ----------------------------------------------------

    def handle_task(self, header: Dict, payload: bytes) -> tuple:
        """Execute one task unit; returns ``(reply_header, payload)``."""
        from ..executors import _run_guarded

        try:
            fn, args = pickle.loads(payload)
        except Exception as exc:
            # The task unit doesn't resolve in this process (e.g. a
            # function defined in __main__ after the fleet forked);
            # an error *reply* — not a dropped connection — so the
            # driver can surface the picklability hint.
            return (
                {
                    "op": "error",
                    "kind": "undecodable-task",
                    "id": header.get("id"),
                    "detail": f"{type(exc).__name__}: {exc}",
                },
                b"",
            )
        with self._task_lock:
            outcome = _run_guarded(fn, args)
            self.tasks_executed += 1
        try:
            encoded = pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # unpicklable task result
            return (
                {
                    "op": "error",
                    "kind": "unpicklable",
                    "id": header.get("id"),
                    "detail": f"{type(exc).__name__}: {exc}",
                },
                b"",
            )
        reply = {
            "op": "result",
            "id": header.get("id"),
            "worker": self.slot,
        }
        if len(encoded) > self.blob_threshold:
            blob_id = self.blobs.put(encoded)
            reply["blob"] = RemoteBlob(
                worker=self.slot,
                port=self.port,
                blob=blob_id,
                size=len(encoded),
            ).to_header()
            return reply, b""
        return reply, encoded

    def handle_fetch(self, header: Dict) -> tuple:
        payload = self.blobs.get(str(header.get("blob")))
        if payload is None:
            return (
                {
                    "op": "error",
                    "kind": "blob-missing",
                    "detail": f"no blob {header.get('blob')!r} on "
                    f"worker {self.slot} (restarted?)",
                },
                b"",
            )
        return {"op": "blob", "size": len(payload)}, payload

    # -- connection plumbing -----------------------------------------------

    def serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                header, payload = recv_frame(conn)
                op = header.get("op")
                if op == "task":
                    reply, body = self.handle_task(header, payload)
                    if consume_drop_reply():
                        # Injected frame drop: hang up instead of
                        # replying — the attempt's work is lost and
                        # the driver re-executes it.
                        return
                    send_frame(conn, reply, body)
                elif op == "ping":
                    if time.monotonic() < _STATE["muted_until"]:
                        continue  # swallow the probe: injected silence
                    send_frame(
                        conn, {"op": "pong", "worker": self.slot}
                    )
                elif op == "fetch":
                    reply, body = self.handle_fetch(header)
                    send_frame(conn, reply, body)
                elif op == "mute":
                    _STATE["muted_until"] = time.monotonic() + float(
                        header.get("seconds", 0.0)
                    )
                    send_frame(conn, {"op": "ok"})
                elif op == "info":
                    send_frame(
                        conn,
                        {
                            "op": "info",
                            "worker": self.slot,
                            "pid": os.getpid(),
                            "tasks_executed": self.tasks_executed,
                            "blobs": len(self.blobs),
                        },
                    )
                elif op == "shutdown":
                    try:
                        send_frame(conn, {"op": "ok"})
                    finally:
                        os._exit(0)
                else:
                    send_frame(
                        conn,
                        {
                            "op": "error",
                            "kind": "bad-op",
                            "detail": f"unknown op {op!r}",
                        },
                    )
        except (OSError, EOFError):
            pass  # peer went away (or we are being abandoned): done
        except Exception:
            # A corrupt frame or internal bug must not take the whole
            # worker down with it; drop the connection and keep serving
            # the healthy ones.
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            conn.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            thread = threading.Thread(
                target=self.serve_connection,
                args=(conn,),
                name=f"repro-cluster-w{self.slot}-conn",
                daemon=True,
            )
            thread.start()


#: Name of the readiness announcement inside a worker's spill dir.
READY_FILE = "ready.json"


def worker_main(
    slot: int,
    generation: int,
    spill_dir: str,
    blob_threshold: int,
) -> None:
    """Process entry point: bind, announce readiness, serve forever.

    Readiness is announced by atomically publishing ``ready.json``
    (port + pid) into this generation's private spill directory — a
    deliberate choice over a shared ``multiprocessing.Queue``: the
    queue's cross-process semaphores are not robust against the
    SIGKILLs this plane injects on purpose (a worker killed at the
    wrong instant can wedge the shared lock for every later respawn),
    while a rename into a per-generation directory cannot be corrupted
    by any other process's death.
    """
    _STATE["active"] = True
    _STATE["slot"] = slot
    os.environ[WORKER_ENV_FLAG] = str(slot)
    server = _WorkerServer(slot, spill_dir, blob_threshold)
    announcement = json.dumps(
        {
            "slot": slot,
            "generation": generation,
            "port": server.port,
            "pid": os.getpid(),
        }
    )
    path = os.path.join(spill_dir, READY_FILE)
    with open(path + ".tmp", "w", encoding="utf-8") as handle:
        handle.write(announcement)
    os.replace(path + ".tmp", path)
    server.serve_forever()
