"""Distributed cluster backend: driver/worker protocol over TCP.

This package promotes the executor layer from shared-heap process
pools to a real (if localhost-bound) cluster: a
:class:`~repro.mapreduce.cluster.driver.ClusterDriver` assigns task
units to :mod:`worker <repro.mapreduce.cluster.worker>` daemon
processes over length-prefixed socket frames, workers keep their large
task outputs in worker-local spill files and serve them over the same
data plane on demand, and the driver supervises the fleet with
heartbeats, worker-death detection with task re-execution, and
straggler speculative backups.

The public entry point is ``backend="cluster"`` on
:class:`~repro.mapreduce.runtime.MapReduceRuntime` (or ``--backend
cluster`` on the CLI): :class:`~repro.mapreduce.cluster.executor.
ClusterExecutor` satisfies the existing
:class:`~repro.mapreduce.executors.Executor` contract, so the runtime,
the iterative driver, the matching layer, and the serving layer all
inherit the distributed backend without API changes — and, crucially,
so the cluster joins the bit-identical-across-backends verification
battery the other backends already pass.
"""

from .driver import ClusterDriver, TaskLost, WorkerDied
from .executor import ClusterExecutor
from .heartbeat import HeartbeatMonitor
from .protocol import (
    ConnectionClosed,
    ProtocolError,
    RemoteBlob,
    recv_frame,
    send_frame,
)

__all__ = [
    "ClusterDriver",
    "ClusterExecutor",
    "ConnectionClosed",
    "HeartbeatMonitor",
    "ProtocolError",
    "RemoteBlob",
    "TaskLost",
    "WorkerDied",
    "recv_frame",
    "send_frame",
]
