"""Backward-compatible alias of the storage subsystem's public names.

The in-memory filesystem (and its error type) originally lived here;
the storage layer has since grown into the :mod:`repro.mapreduce.
storage` package — a pluggable ``FileSystem`` contract with in-memory
and on-disk implementations plus the external sort-and-spill shuffle.
This module re-exports the original names so existing imports keep
working; new code should import from :mod:`repro.mapreduce.storage`
(or :mod:`repro.mapreduce`) directly.
"""

from __future__ import annotations

from .storage import (
    FileSystem,
    FileSystemError,
    InMemoryFileSystem,
    LocalDiskFileSystem,
)

__all__ = [
    "FileSystem",
    "FileSystemError",
    "InMemoryFileSystem",
    "LocalDiskFileSystem",
]
