"""An in-memory distributed-filesystem abstraction.

Real MapReduce jobs communicate through a distributed filesystem: each
job reads one or more input paths and writes an output path (§3.1:
"MapReduce assumes a distributed file system from which the map
instances retrieve the input").  :class:`InMemoryFileSystem` models
that contract — named, immutable-once-closed datasets of key-value
records — so multi-job pipelines (similarity join, the matching loops)
can be expressed the way they are deployed, and tests can assert what
each stage persisted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from .errors import MapReduceError
from .job import KeyValue

__all__ = ["FileSystemError", "InMemoryFileSystem"]


class FileSystemError(MapReduceError):
    """Raised for missing paths, overwrites, and malformed names."""


def _validate_path(path: str) -> str:
    if not path or not path.startswith("/"):
        raise FileSystemError(
            f"paths must be absolute (start with '/'), got {path!r}"
        )
    if path.endswith("/"):
        raise FileSystemError(f"paths must not end with '/': {path!r}")
    return path


class InMemoryFileSystem:
    """A flat namespace of record datasets, with HDFS-like semantics.

    * datasets are written once (no in-place mutation — jobs that need
      to update state write a new path, like real MapReduce iterations);
    * reads return copies, so downstream jobs cannot corrupt inputs;
    * ``glob``-free: a *directory* is just a path prefix, and
      :meth:`list_paths` filters by prefix.
    """

    def __init__(self) -> None:
        self._datasets: Dict[str, List[KeyValue]] = {}

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        """Store ``records`` at ``path``; returns the record count.

        Refuses to overwrite unless ``overwrite=True`` — accidentally
        clobbering a previous iteration's output is a classic pipeline
        bug this surface makes loud.
        """
        path = _validate_path(path)
        if path in self._datasets and not overwrite:
            raise FileSystemError(f"path already exists: {path!r}")
        materialized = list(records)
        for record in materialized:
            if not isinstance(record, tuple) or len(record) != 2:
                raise FileSystemError(
                    f"records must be (key, value) pairs, got {record!r}"
                )
        self._datasets[path] = materialized
        return len(materialized)

    def read(self, path: str) -> List[KeyValue]:
        """Return a copy of the records at ``path``."""
        path = _validate_path(path)
        try:
            return list(self._datasets[path])
        except KeyError:
            raise FileSystemError(f"no such path: {path!r}") from None

    def read_many(self, paths: Iterable[str]) -> List[KeyValue]:
        """Concatenate several datasets (multi-input jobs)."""
        records: List[KeyValue] = []
        for path in paths:
            records.extend(self.read(path))
        return records

    def exists(self, path: str) -> bool:
        """Whether ``path`` holds a dataset."""
        return _validate_path(path) in self._datasets

    def delete(self, path: str) -> None:
        """Remove a dataset (e.g. intermediate iteration outputs)."""
        path = _validate_path(path)
        if path not in self._datasets:
            raise FileSystemError(f"no such path: {path!r}")
        del self._datasets[path]

    def list_paths(self, prefix: str = "/") -> List[str]:
        """All dataset paths under ``prefix``, sorted."""
        if not prefix.startswith("/"):
            raise FileSystemError(
                f"prefix must start with '/', got {prefix!r}"
            )
        return sorted(
            path for path in self._datasets if path.startswith(prefix)
        )

    def size(self, path: str) -> int:
        """Number of records stored at ``path``."""
        return len(self.read(path))

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryFileSystem(paths={len(self._datasets)})"
