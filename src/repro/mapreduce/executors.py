"""Pluggable task-execution backends for the MapReduce runtime.

The runtime decomposes every job into *independent tasks* (map tasks,
reduce tasks) and hands each batch to an :class:`Executor`.  Three
backends are provided:

* :class:`SerialExecutor` — run tasks inline, one after another (the
  default; zero overhead, ideal for small inputs and for debugging);
* :class:`ThreadExecutor` — run tasks on a shared thread pool (cheap
  dispatch; parallel speedups where task bodies release the GIL);
* :class:`ProcessExecutor` — run tasks on a shared process pool
  (true CPU parallelism; tasks, jobs, and records must be picklable).

A fourth backend, ``"cluster"``, lives in :mod:`repro.mapreduce.
cluster`: worker daemon processes served over localhost TCP sockets
with worker-local result storage, heartbeats, death detection with
task re-execution, and speculative backups.  It registers here through
the same shared-pool machinery (kind ``"cluster"``) and resolves
lazily, so importing this module never pays for the cluster plane.

The contract every backend obeys — and the reason results are
bit-identical across backends — is:

1. ``run_tasks(fn, tasks)`` returns ``[fn(*task) for task in tasks]``
   *in input order*, regardless of completion order;
2. an exception raised by a task propagates to the caller as the
   original exception instance (the first one in task order);
3. backends never share mutable state between tasks: each task meters
   into its own :class:`~repro.mapreduce.counters.Counters`, and the
   runtime merges them deterministically in task-index order.

Worker pools are lazy, module-level, and shared across executor
instances, so constructing many runtimes — as property-based tests do
— does not fork a pool per instance.  At most one pool per kind is
kept: requesting a different worker count tears the stale pool down
first, so runtimes with different sizes never leak pools behind each
other.  Individual executors may release their pool early with
:meth:`Executor.close`; the global release point is
:func:`shutdown_shared_pools` (also registered ``atexit``).  Either
way pools are lazily recreated on the next use.

Fault tolerance: :class:`ProcessExecutor` survives a
``BrokenProcessPool`` (a worker dying mid-task, e.g. via ``os._exit``)
by respawning the pool and re-submitting the tasks that were in
flight, up to :attr:`ProcessExecutor.max_pool_respawns` times per
batch — re-execution is safe because task units are stateless and
idempotent.  Parallel backends also implement
:meth:`Executor.run_tasks_speculative`: tasks still running after a
timeout get a backup attempt and the first finisher wins, the loser's
result being discarded (identical by the statelessness contract).
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .errors import ExecutorError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_BACKENDS",
    "resolve_executor",
    "shutdown_shared_pools",
]

#: One task: the positional arguments applied to the task function.
Task = Tuple[Any, ...]
TaskFunction = Callable[..., Any]

#: Canonical backend names accepted by :func:`resolve_executor` (and
#: therefore by ``MapReduceRuntime(backend=...)`` and the CLI).
EXECUTOR_BACKENDS = ("serial", "threads", "processes", "cluster")


class Executor:
    """Strategy interface for executing a batch of independent tasks."""

    #: Canonical backend name, e.g. ``"serial"``.
    name: str = "abstract"

    #: ``True`` when task arguments cross a process boundary and must
    #: therefore pickle.  The runtime uses this to decide whether a
    #: reduce task may consume a lazy (unpicklable) record stream from
    #: the external shuffle or needs a materialized list.
    picklable_tasks: bool = False

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        """Return ``[fn(*task) for task in tasks]`` in input order."""
        raise NotImplementedError

    def run_tasks_speculative(
        self, fn: TaskFunction, tasks: Sequence[Task], timeout: float
    ) -> Tuple[List[Any], int]:
        """Like :meth:`run_tasks`, plus straggler mitigation.

        Tasks still running ``timeout`` seconds after dispatch get a
        backup attempt; whichever attempt finishes first supplies the
        result and the loser is discarded.  Returns ``(results,
        backup_wins)``.  Backends without real parallelism have no
        stragglers to race, so the base implementation just runs the
        batch.
        """
        return self.run_tasks(fn, tasks), 0

    def close(self) -> None:
        """Release any worker pool this executor was using.

        Safe to call repeatedly; the pool is lazily recreated on the
        next use.  The serial backend holds no resources.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task inline in the calling thread (default backend)."""

    name = "serial"

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        return [fn(*task) for task in tasks]


# -- shared pools ----------------------------------------------------------

_POOL_LOCK = threading.Lock()
_SHARED_POOLS: Dict[Tuple[str, int], Any] = {}


def _default_workers() -> int:
    return min(os.cpu_count() or 1, 8)


def _shared_pool(kind: str, max_workers: int) -> Any:
    """Return (creating lazily) the shared pool for ``(kind, size)``.

    At most one pool per kind stays alive: asking for a different
    worker count evicts the stale pool, so alternating runtimes with
    different sizes cannot accumulate idle worker fleets.
    """
    key = (kind, max_workers)
    stale: List[Any] = []
    with _POOL_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            for other_key in [
                k for k in _SHARED_POOLS if k[0] == kind
            ]:
                stale.append(_SHARED_POOLS.pop(other_key))
            if kind == "threads":
                pool = ThreadPoolExecutor(
                    max_workers=max_workers,
                    thread_name_prefix="repro-mr",
                )
            elif kind == "cluster":
                # Lazy import: the cluster plane is only paid for when
                # the cluster backend is actually used.
                from .cluster.driver import ClusterDriver

                pool = ClusterDriver(num_workers=max_workers)
            else:
                # The platform-default start method: fork on older
                # Linux Pythons, forkserver/spawn elsewhere (safer in a
                # process that also runs shared thread pools).  Under
                # non-fork start methods jobs must live in importable
                # modules — the same constraint pickling imposes anyway.
                pool = ProcessPoolExecutor(max_workers=max_workers)
            _SHARED_POOLS[key] = pool
    for old in stale:  # shutdown outside the lock; it can block
        old.shutdown(wait=False, cancel_futures=True)
    return pool


def _evict_pool(kind: str, max_workers: int) -> None:
    with _POOL_LOCK:
        pool = _SHARED_POOLS.pop((kind, max_workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every shared worker pool (also registered atexit)."""
    with _POOL_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)


class ThreadExecutor(Executor):
    """Run tasks on a shared :class:`ThreadPoolExecutor`."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_workers()

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = _shared_pool("threads", self.max_workers)
        futures = [pool.submit(fn, *task) for task in tasks]
        # Collect in submission order so the first task-order failure
        # raises, mirroring the serial backend's error determinism.
        return [future.result() for future in futures]

    def run_tasks_speculative(
        self, fn: TaskFunction, tasks: Sequence[Task], timeout: float
    ) -> Tuple[List[Any], int]:
        tasks = list(tasks)
        if not tasks:
            return [], 0
        pool = _shared_pool("threads", self.max_workers)
        return _speculate(pool.submit, fn, tasks, timeout)

    def close(self) -> None:
        _evict_pool("threads", self.max_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _speculate(
    submit: Callable[..., Any],
    fn: TaskFunction,
    tasks: List[Task],
    timeout: float,
) -> Tuple[List[Any], int]:
    """First-finisher-wins straggler racing over ``submit``.

    Primaries for every task are dispatched up front; any primary
    still running after ``timeout`` seconds gets one backup attempt,
    and whichever of the pair completes first supplies the result.
    The loser keeps running to completion in the pool but its result
    is never read — safe, because task units are stateless and their
    outputs identical.  Task-order error determinism is preserved:
    results (and the first failure) are collected in input order.
    """
    primaries = [submit(fn, *task) for task in tasks]
    done, straggling = wait(primaries, timeout=timeout)
    wins = 0
    winners: List[Any] = list(primaries)
    for index, primary in enumerate(primaries):
        if primary not in straggling:
            continue
        backup = submit(fn, *tasks[index])
        wait([primary, backup], return_when=FIRST_COMPLETED)
        # Prefer the primary on a photo finish — fewer discarded wins.
        if primary.done():
            backup.cancel()
        else:
            winners[index] = backup
            wins += 1
    return [future.result() for future in winners], wins


def _run_guarded(fn: TaskFunction, task: Task) -> Tuple[bool, Any]:
    """Process-pool trampoline: capture task errors as return values.

    Returning ``(False, exc)`` instead of raising keeps the *original*
    exception instance intact across the process boundary, so a
    ``JobValidationError`` raised inside a worker surfaces to the caller
    as a ``JobValidationError`` — not as a pool plumbing error.
    """
    try:
        return True, fn(*task)
    except Exception as exc:
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = ExecutorError(
                f"task raised unpicklable {type(exc).__name__}: {exc}"
            )
        return False, exc


class ProcessExecutor(Executor):
    """Run tasks on a shared :class:`ProcessPoolExecutor`.

    Task functions, jobs (including their side data), and all records
    must be picklable; violations raise :class:`ExecutorError` with the
    offending detail rather than a bare pool error.
    """

    name = "processes"
    picklable_tasks = True

    #: Pool respawns allowed per batch before giving up: a worker can
    #: die (and be replaced) this many times without failing the job.
    max_pool_respawns: int = 3

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_workers()
        #: Lifetime meters, read by the runtime to fill the ``faults``
        #: counter group after each dispatch.
        self.pool_respawns = 0
        self.resubmitted_tasks = 0

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        outcomes: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        respawns_left = self.max_pool_respawns
        while pending:
            pool = _shared_pool("processes", self.max_workers)
            futures: Dict[int, Any] = {}
            failed: List[int] = []
            broken: Optional[BaseException] = None
            for index in pending:
                try:
                    futures[index] = pool.submit(
                        _run_guarded, fn, tasks[index]
                    )
                except (BrokenExecutor, RuntimeError) as exc:
                    # The pool died under us before accepting the task;
                    # everything not yet submitted needs the next pool.
                    broken = exc
                    failed.append(index)
            for index in sorted(futures):
                try:
                    outcomes[index] = futures[index].result()
                except BrokenExecutor as exc:
                    # The worker holding this task died (e.g. hard
                    # os._exit); the task itself is innocent and gets
                    # re-submitted to a fresh pool.
                    broken = exc
                    failed.append(index)
                except Exception as exc:
                    # _run_guarded converts job errors into values, so
                    # any other exception is infrastructure:
                    # unpicklable inputs.
                    name = getattr(fn, "__name__", str(fn))
                    raise ExecutorError(
                        f"processes backend could not execute {name!r}: "
                        f"{exc} (jobs, side data, and records must be "
                        "picklable — define jobs at module level)"
                    ) from exc
            if broken is None:
                break
            _evict_pool("processes", self.max_workers)
            if respawns_left <= 0:
                raise ExecutorError(
                    "processes backend: worker pool kept breaking "
                    f"after {self.max_pool_respawns} respawns: {broken}"
                ) from broken
            respawns_left -= 1
            self.pool_respawns += 1
            self.resubmitted_tasks += len(failed)
            pending = sorted(failed)
        results = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return results

    def run_tasks_speculative(
        self, fn: TaskFunction, tasks: Sequence[Task], timeout: float
    ) -> Tuple[List[Any], int]:
        tasks = list(tasks)
        if not tasks:
            return [], 0
        pool = _shared_pool("processes", self.max_workers)

        def submit(task_fn: TaskFunction, *args: Any) -> Any:
            return pool.submit(_run_guarded, task_fn, args)

        try:
            outcomes, wins = _speculate(submit, fn, tasks, timeout)
        except BrokenExecutor as exc:
            # Speculative batches do not respawn mid-race (primary and
            # backup attempts would lose their pairing); the plain
            # run_tasks path is the recovery story for worker death.
            _evict_pool("processes", self.max_workers)
            raise ExecutorError(
                f"processes backend pool broke during speculative "
                f"execution: {exc}"
            ) from exc
        results = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return results, wins

    def close(self) -> None:
        _evict_pool("processes", self.max_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(max_workers={self.max_workers})"


_BACKEND_ALIASES = {
    "serial": "serial",
    "sequential": "serial",
    "sync": "serial",
    "threads": "threads",
    "thread": "threads",
    "threading": "threads",
    "processes": "processes",
    "process": "processes",
    "multiprocessing": "processes",
    "mp": "processes",
    "cluster": "cluster",
    "distributed": "cluster",
}

_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def resolve_executor(
    backend: Union[str, Executor, None],
    max_workers: Optional[int] = None,
) -> Executor:
    """Turn a backend name (or an :class:`Executor`) into an executor.

    ``None`` selects the serial backend.  Unknown names raise
    :class:`ExecutorError` listing :data:`EXECUTOR_BACKENDS`.
    """
    if backend is None:
        return SerialExecutor()
    if isinstance(backend, Executor):
        return backend
    if isinstance(backend, str):
        canonical = _BACKEND_ALIASES.get(backend.strip().lower())
        if canonical == "cluster":
            # Lazy: only cluster users pay the cluster plane's import.
            from .cluster.executor import ClusterExecutor

            return ClusterExecutor(max_workers=max_workers)
        if canonical is not None:
            cls = _BACKEND_CLASSES[canonical]
            if cls is SerialExecutor:
                return cls()
            return cls(max_workers=max_workers)
    raise ExecutorError(
        f"unknown executor backend {backend!r}; "
        f"known backends: {', '.join(EXECUTOR_BACKENDS)}"
    )
