"""Pluggable task-execution backends for the MapReduce runtime.

The runtime decomposes every job into *independent tasks* (map tasks,
reduce tasks) and hands each batch to an :class:`Executor`.  Three
backends are provided:

* :class:`SerialExecutor` — run tasks inline, one after another (the
  default; zero overhead, ideal for small inputs and for debugging);
* :class:`ThreadExecutor` — run tasks on a shared thread pool (cheap
  dispatch; parallel speedups where task bodies release the GIL);
* :class:`ProcessExecutor` — run tasks on a shared process pool
  (true CPU parallelism; tasks, jobs, and records must be picklable).

The contract every backend obeys — and the reason results are
bit-identical across backends — is:

1. ``run_tasks(fn, tasks)`` returns ``[fn(*task) for task in tasks]``
   *in input order*, regardless of completion order;
2. an exception raised by a task propagates to the caller as the
   original exception instance (the first one in task order);
3. backends never share mutable state between tasks: each task meters
   into its own :class:`~repro.mapreduce.counters.Counters`, and the
   runtime merges them deterministically in task-index order.

Worker pools are lazy, module-level, and shared across executor
instances (keyed by kind and size), so constructing many runtimes — as
property-based tests do — does not fork a pool per instance.  Because
pools are shared, individual executors own no resources to release;
the one release point is :func:`shutdown_shared_pools` (also
registered ``atexit``), after which pools are lazily recreated on the
next use.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .errors import ExecutorError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_BACKENDS",
    "resolve_executor",
    "shutdown_shared_pools",
]

#: One task: the positional arguments applied to the task function.
Task = Tuple[Any, ...]
TaskFunction = Callable[..., Any]

#: Canonical backend names accepted by :func:`resolve_executor` (and
#: therefore by ``MapReduceRuntime(backend=...)`` and the CLI).
EXECUTOR_BACKENDS = ("serial", "threads", "processes")


class Executor:
    """Strategy interface for executing a batch of independent tasks."""

    #: Canonical backend name, e.g. ``"serial"``.
    name: str = "abstract"

    #: ``True`` when task arguments cross a process boundary and must
    #: therefore pickle.  The runtime uses this to decide whether a
    #: reduce task may consume a lazy (unpicklable) record stream from
    #: the external shuffle or needs a materialized list.
    picklable_tasks: bool = False

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        """Return ``[fn(*task) for task in tasks]`` in input order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task inline in the calling thread (default backend)."""

    name = "serial"

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        return [fn(*task) for task in tasks]


# -- shared pools ----------------------------------------------------------

_POOL_LOCK = threading.Lock()
_SHARED_POOLS: Dict[Tuple[str, int], Any] = {}


def _default_workers() -> int:
    return min(os.cpu_count() or 1, 8)


def _shared_pool(kind: str, max_workers: int) -> Any:
    """Return (creating lazily) the shared pool for ``(kind, size)``."""
    key = (kind, max_workers)
    with _POOL_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            if kind == "threads":
                pool = ThreadPoolExecutor(
                    max_workers=max_workers,
                    thread_name_prefix="repro-mr",
                )
            else:
                # The platform-default start method: fork on older
                # Linux Pythons, forkserver/spawn elsewhere (safer in a
                # process that also runs shared thread pools).  Under
                # non-fork start methods jobs must live in importable
                # modules — the same constraint pickling imposes anyway.
                pool = ProcessPoolExecutor(max_workers=max_workers)
            _SHARED_POOLS[key] = pool
        return pool


def _evict_pool(kind: str, max_workers: int) -> None:
    with _POOL_LOCK:
        pool = _SHARED_POOLS.pop((kind, max_workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every shared worker pool (also registered atexit)."""
    with _POOL_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)


class ThreadExecutor(Executor):
    """Run tasks on a shared :class:`ThreadPoolExecutor`."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_workers()

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = _shared_pool("threads", self.max_workers)
        futures = [pool.submit(fn, *task) for task in tasks]
        # Collect in submission order so the first task-order failure
        # raises, mirroring the serial backend's error determinism.
        return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _run_guarded(fn: TaskFunction, task: Task) -> Tuple[bool, Any]:
    """Process-pool trampoline: capture task errors as return values.

    Returning ``(False, exc)`` instead of raising keeps the *original*
    exception instance intact across the process boundary, so a
    ``JobValidationError`` raised inside a worker surfaces to the caller
    as a ``JobValidationError`` — not as a pool plumbing error.
    """
    try:
        return True, fn(*task)
    except Exception as exc:
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = ExecutorError(
                f"task raised unpicklable {type(exc).__name__}: {exc}"
            )
        return False, exc


class ProcessExecutor(Executor):
    """Run tasks on a shared :class:`ProcessPoolExecutor`.

    Task functions, jobs (including their side data), and all records
    must be picklable; violations raise :class:`ExecutorError` with the
    offending detail rather than a bare pool error.
    """

    name = "processes"
    picklable_tasks = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_workers()

    def run_tasks(
        self, fn: TaskFunction, tasks: Sequence[Task]
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = _shared_pool("processes", self.max_workers)
        futures = [pool.submit(_run_guarded, fn, task) for task in tasks]
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:
                # _run_guarded converts job errors into values, so an
                # exception here is infrastructure: unpicklable inputs
                # or a broken pool.
                if isinstance(exc, BrokenExecutor):
                    _evict_pool("processes", self.max_workers)
                name = getattr(fn, "__name__", str(fn))
                raise ExecutorError(
                    f"processes backend could not execute {name!r}: "
                    f"{exc} (jobs, side data, and records must be "
                    "picklable — define jobs at module level)"
                ) from exc
        results = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(max_workers={self.max_workers})"


_BACKEND_ALIASES = {
    "serial": "serial",
    "sequential": "serial",
    "sync": "serial",
    "threads": "threads",
    "thread": "threads",
    "threading": "threads",
    "processes": "processes",
    "process": "processes",
    "multiprocessing": "processes",
    "mp": "processes",
}

_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def resolve_executor(
    backend: Union[str, Executor, None],
    max_workers: Optional[int] = None,
) -> Executor:
    """Turn a backend name (or an :class:`Executor`) into an executor.

    ``None`` selects the serial backend.  Unknown names raise
    :class:`ExecutorError` listing :data:`EXECUTOR_BACKENDS`.
    """
    if backend is None:
        return SerialExecutor()
    if isinstance(backend, Executor):
        return backend
    if isinstance(backend, str):
        canonical = _BACKEND_ALIASES.get(backend.strip().lower())
        if canonical is not None:
            cls = _BACKEND_CLASSES[canonical]
            if cls is SerialExecutor:
                return cls()
            return cls(max_workers=max_workers)
    raise ExecutorError(
        f"unknown executor backend {backend!r}; "
        f"known backends: {', '.join(EXECUTOR_BACKENDS)}"
    )
