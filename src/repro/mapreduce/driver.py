"""Drivers for iterative MapReduce computations.

Every algorithm in the paper is *iterative*: GreedyMR runs one job per
round until no edge remains; StackMR alternates maximal-matching rounds,
dual updates, and stack pops.  :class:`IterativeDriver` factors out the
round accounting, the convergence loop, and the safety cap that turns a
non-terminating bug into a loud :class:`~repro.mapreduce.errors.
RoundLimitExceeded` instead of a hang.
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from .counters import Counters
from .errors import RoundLimitExceeded
from .runtime import MapReduceRuntime
from .storage import FileSystem

__all__ = ["IterativeDriver"]

State = TypeVar("State")

#: One round of an iterative computation: consume the current state and
#: round number, return ``(next_state, done)``.
RoundFunction = Callable[[State, int], Tuple[State, bool]]


class IterativeDriver(Generic[State]):
    """Run a round function to convergence on a simulated cluster.

    The driver does not interpret the state; it only loops, counts rounds,
    and optionally invokes a progress callback after each round (used by
    the experiment harness to record any-time solution values).
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        name: str,
        max_rounds: int = 1_000_000,
        on_round_end: Optional[Callable[[State, int], None]] = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.max_rounds = max_rounds
        self.on_round_end = on_round_end
        self.rounds_completed = 0
        self.jobs_per_round: List[int] = []

    @property
    def counters(self) -> Counters:
        """The counters of the underlying runtime."""
        return self.runtime.counters

    @property
    def backend(self) -> str:
        """Execution backend of the underlying runtime.

        Every job launched by every round runs on this backend; the
        driver itself is backend-agnostic, so iterative results are
        bit-identical across ``serial``/``threads``/``processes``.
        """
        return self.runtime.backend

    @property
    def filesystem(self) -> FileSystem:
        """The storage backend of the underlying runtime.

        Rounds that persist per-iteration datasets (checkpoints,
        any-time snapshots) write here, so a driver constructed over a
        disk-backed runtime is out-of-core end to end.  Like
        :attr:`backend`, the driver is storage-agnostic: results are
        bit-identical across ``memory``/``disk``.
        """
        return self.runtime.filesystem

    @property
    def storage(self) -> str:
        """Canonical name of the runtime's storage backend."""
        return self.runtime.storage

    def iterate(self, step: RoundFunction, initial: State) -> State:
        """Run ``step`` until it reports completion and return the state."""
        state = initial
        for round_number in range(self.max_rounds):
            jobs_before = self.runtime.jobs_executed
            state, done = step(state, round_number)
            self.rounds_completed = round_number + 1
            self.jobs_per_round.append(
                self.runtime.jobs_executed - jobs_before
            )
            self.counters.increment(self.name, "rounds")
            if self.on_round_end is not None:
                self.on_round_end(state, round_number)
            if done:
                return state
        raise RoundLimitExceeded(self.name, self.max_rounds)
