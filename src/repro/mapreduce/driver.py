"""Drivers for iterative MapReduce computations.

Every algorithm in the paper is *iterative*: GreedyMR runs one job per
round until no edge remains; StackMR alternates maximal-matching rounds,
dual updates, and stack pops.  :class:`IterativeDriver` factors out the
round accounting, the convergence loop, and the safety cap that turns a
non-terminating bug into a loud :class:`~repro.mapreduce.errors.
RoundLimitExceeded` instead of a hang.

The driver is also the natural home of the *delta iteration plane*
(see :mod:`repro.mapreduce.state`): :meth:`IterativeDriver.create_store`
attaches a per-partition resident state store backed by the runtime's
pluggable filesystem, :meth:`IterativeDriver.run_stateful` runs one
resident-state round against it, and :meth:`IterativeDriver.
quiescent_ratio` reports the fraction of resident records the delta
rounds never had to touch — the savings the plane exists to harvest.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Mapping, Optional, Tuple, TypeVar

from .counters import Counters
from .errors import DriverError, RoundLimitExceeded
from .job import KeyValue, MapReduceJob
from .runtime import MapReduceRuntime
from .state import ResidentStateStore
from .storage import FileSystem

__all__ = ["IterativeDriver"]

State = TypeVar("State")

#: One round of an iterative computation: consume the current state and
#: round number, return ``(next_state, done)``.
RoundFunction = Callable[[State, int], Tuple[State, bool]]


class IterativeDriver(Generic[State]):
    """Run a round function to convergence on a simulated cluster.

    The driver does not interpret the state; it only loops, counts rounds,
    and optionally invokes a progress callback after each round (used by
    the experiment harness to record any-time solution values).
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        name: str,
        max_rounds: int = 1_000_000,
        on_round_end: Optional[Callable[[State, int], None]] = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.max_rounds = max_rounds
        self.on_round_end = on_round_end
        self.rounds_completed = 0
        self.jobs_per_round: List[int] = []
        #: Resident state store of the delta iteration plane, attached
        #: by :meth:`create_store`; ``None`` for full-state drivers.
        self.store: Optional[ResidentStateStore] = None

    @property
    def counters(self) -> Counters:
        """The counters of the underlying runtime."""
        return self.runtime.counters

    @property
    def backend(self) -> str:
        """Execution backend of the underlying runtime.

        Every job launched by every round runs on this backend; the
        driver itself is backend-agnostic, so iterative results are
        bit-identical across ``serial``/``threads``/``processes``.
        """
        return self.runtime.backend

    @property
    def filesystem(self) -> FileSystem:
        """The storage backend of the underlying runtime.

        Rounds that persist per-iteration datasets (checkpoints,
        any-time snapshots) write here, so a driver constructed over a
        disk-backed runtime is out-of-core end to end.  Like
        :attr:`backend`, the driver is storage-agnostic: results are
        bit-identical across ``memory``/``disk``.
        """
        return self.runtime.filesystem

    @property
    def storage(self) -> str:
        """Canonical name of the runtime's storage backend."""
        return self.runtime.storage

    # -- the delta iteration plane ----------------------------------------

    def create_store(
        self, records: Optional[List[KeyValue]] = None
    ) -> ResidentStateStore:
        """Attach (and optionally seed) a resident state store.

        The store is created through the runtime, so its partitioning
        matches the shuffle's and it parks out-of-core on the runtime's
        filesystem past the configured spill threshold.
        """
        store = self.runtime.state_store(self.name)
        if records:
            store.load(records)
        self.store = store
        return store

    def run_stateful(
        self,
        job: MapReduceJob,
        deltas: Optional[List[KeyValue]] = None,
        scan: bool = False,
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[List[KeyValue], List[KeyValue]]:
        """One resident-state round against the attached store.

        Thin delegation to :meth:`MapReduceRuntime.run_stateful`; see
        there for the scan/frontier modes and the delta contract.
        """
        if self.store is None:
            raise DriverError(
                f"driver {self.name!r} has no resident state store; "
                "call create_store first"
            )
        return self.runtime.run_stateful(
            job, self.store, deltas=deltas, scan=scan, side_data=side_data
        )

    def quiescent_ratio(self) -> float:
        """Fraction of resident records the rounds left untouched.

        Computed from the ``iteration.*`` counters accumulated across
        every stateful round this driver's runtime has run — 0.0 when
        nothing stateful ran yet.  This is the savings meter of the
        delta plane: the full-state path re-ships and re-reduces every
        record every round, so its ratio is by definition 0.
        """
        resident = self.counters.get(
            "runtime", "iteration.resident_records"
        )
        if not resident:
            return 0.0
        quiescent = self.counters.get(
            "runtime", "iteration.quiescent_records"
        )
        return quiescent / resident

    def close(self) -> None:
        """Release the resident state store (parked datasets included)."""
        if self.store is not None:
            self.store.close()
            self.store = None

    def iterate(self, step: RoundFunction, initial: State) -> State:
        """Run ``step`` until it reports completion and return the state.

        When the runtime carries a tracer, every round runs inside a
        ``round:<name>:<n>`` span, so each round's jobs (and their
        phase/task spans) nest under it in the span log.
        """
        state = initial
        for round_number in range(self.max_rounds):
            jobs_before = self.runtime.jobs_executed
            with self.runtime._span(
                f"round:{self.name}:{round_number}", kind="round"
            ):
                state, done = step(state, round_number)
            self.rounds_completed = round_number + 1
            self.jobs_per_round.append(
                self.runtime.jobs_executed - jobs_before
            )
            self.counters.increment(self.name, "rounds")
            if self.on_round_end is not None:
                self.on_round_end(state, round_number)
            if done:
                return state
        raise RoundLimitExceeded(self.name, self.max_rounds)
