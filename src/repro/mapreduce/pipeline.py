"""Declarative multi-job pipelines over a pluggable filesystem.

The paper's system is a pipeline of MapReduce jobs wired through the
distributed filesystem (similarity join: term-bounds → candidates →
verify; matching: one job per iteration).  :class:`Pipeline` captures
that wiring declaratively so stages can be inspected, re-run, and
tested individually — the shape a production Hadoop driver would have.

Stages read and write named datasets on any
:class:`~repro.mapreduce.storage.FileSystem` — the in-memory simulator
store or the out-of-core disk store — selected via ``storage=`` (a
backend name), ``filesystem=`` (an instance), or inherited from the
runtime.  Pipeline results are bit-identical across storage backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .errors import MapReduceError
from .job import MapReduceJob
from .runtime import MapReduceRuntime
from .storage import FileSystem, resolve_filesystem

__all__ = ["PipelineStage", "Pipeline"]

#: Lazily computed side data: receives the filesystem, returns the
#: mapping shipped to the stage's tasks (e.g. a dict built from a
#: previous stage's output).
SideDataFactory = Callable[[FileSystem], Mapping[str, Any]]


@dataclass
class PipelineStage:
    """One MapReduce job with its input paths and output path."""

    job: MapReduceJob
    inputs: Sequence[str]
    output: str
    side_data: Optional[SideDataFactory] = None

    def describe(self) -> str:
        """One-line human-readable summary of the stage."""
        inputs = ", ".join(self.inputs)
        return f"{self.job.name}: [{inputs}] -> {self.output}"


class Pipeline:
    """Run a sequence of stages on a runtime + filesystem pair.

    ``backend`` selects the execution backend (``"serial"``,
    ``"threads"``, ``"processes"``) and ``storage`` the storage backend
    (``"memory"``, ``"disk"``) when no runtime/filesystem is supplied;
    a supplied runtime brings its own backend *and* its own filesystem
    (pass ``filesystem=`` to override the latter explicitly).

    >>> pipeline = Pipeline()
    >>> _ = pipeline.filesystem.write("/in", [(0, "a b a")])
    >>> # pipeline.add(job, ["/in"], "/out"); pipeline.run()
    """

    def __init__(
        self,
        runtime: Optional[MapReduceRuntime] = None,
        filesystem: Optional[FileSystem] = None,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
    ) -> None:
        if runtime is not None and backend is not None:
            raise MapReduceError(
                "pass either a runtime or a backend name, not both "
                "(the runtime already fixes its backend)"
            )
        if filesystem is not None and storage is not None:
            raise MapReduceError(
                "pass either a filesystem or a storage name, not both"
            )
        if runtime is not None and storage is not None:
            raise MapReduceError(
                "pass either a runtime or a storage name, not both "
                "(the runtime already fixes its filesystem; pass "
                "filesystem= to override it)"
            )
        self.runtime = runtime or MapReduceRuntime(
            backend=backend or "serial", storage=storage
        )
        self.filesystem: FileSystem = (
            filesystem
            if filesystem is not None
            else self.runtime.filesystem
        )
        self.stages: List[PipelineStage] = []
        self.records_out: Dict[str, int] = {}

    def add(
        self,
        job: MapReduceJob,
        inputs: Sequence[str],
        output: str,
        side_data: Optional[SideDataFactory] = None,
    ) -> "Pipeline":
        """Append a stage; returns ``self`` for chaining."""
        self.stages.append(
            PipelineStage(
                job=job,
                inputs=list(inputs),
                output=output,
                side_data=side_data,
            )
        )
        return self

    def validate(self) -> None:
        """Check stage wiring before running anything.

        Every stage's inputs must exist on the filesystem already or be
        produced by an *earlier* stage, and no two stages may write the
        same output.
        """
        produced = set()
        for stage in self.stages:
            for path in stage.inputs:
                if path not in produced and not self.filesystem.exists(
                    path
                ):
                    raise MapReduceError(
                        f"stage {stage.job.name!r} reads {path!r}, which "
                        "no earlier stage produces and which does not "
                        "exist"
                    )
            if stage.output in produced:
                raise MapReduceError(
                    f"two stages write to {stage.output!r}"
                )
            produced.add(stage.output)

    def run(self) -> List[tuple]:
        """Execute all stages in order; returns the last stage's output.

        Stage outputs *stream* from the runtime's reduce tasks straight
        into ``filesystem.write`` (:meth:`~repro.mapreduce.runtime.
        MapReduceRuntime.run_iter`) — no stage's output is ever
        materialized as one driver-side list, which is what lets a
        disk-backed pipeline honor the out-of-core storage contract.
        ``records_out`` comes from the filesystem's own ``du``
        accounting; the return value is the last stage's dataset read
        back (bit-identical to the reduce output by the storage codec
        contract).
        """
        self.validate()
        last_output: Optional[str] = None
        for stage in self.stages:
            # A stage span wraps the job's whole lifecycle, including
            # streaming the reduce output into the filesystem — the
            # write cost belongs to the stage, not to any phase.
            with self.runtime._span(
                f"stage:{stage.job.name}",
                kind="stage",
                output=stage.output,
            ):
                records = self.filesystem.read_many(stage.inputs)
                side = (
                    stage.side_data(self.filesystem)
                    if stage.side_data is not None
                    else None
                )
                stream = self.runtime.run_iter(
                    stage.job, records, side_data=side
                )
                self.filesystem.write(
                    stage.output, stream, overwrite=True
                )
                self.records_out[stage.output] = self.filesystem.du(
                    stage.output
                ).records
                last_output = stage.output
        if last_output is None:
            return []
        return self.filesystem.read(last_output)

    def describe(self) -> str:
        """Multi-line summary of the pipeline's wiring and storage use.

        For every stage whose output dataset exists (i.e. after
        :meth:`run`), the line carries the dataset's ``du`` stats —
        record and byte counts — the numbers that guide
        ``spill_threshold`` tuning::

            simjoin-candidates: [/simjoin/documents] -> /simjoin/candidates  [1204 records, 31 kB]
        """
        lines = []
        for stage in self.stages:
            line = stage.describe()
            if self.filesystem.exists(stage.output):
                stats = self.filesystem.du(stage.output)
                line += (
                    f"  [{stats.records} records, "
                    f"{_human_bytes(stats.bytes)}]"
                )
            lines.append(line)
        return "\n".join(lines)


def _human_bytes(count: int) -> str:
    """``1234567 -> '1.2 MB'`` (SI units, one decimal)."""
    size = float(count)
    for unit in ("B", "kB", "MB", "GB"):
        if size < 1000 or unit == "GB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1000.0
    return f"{int(count)} B"  # pragma: no cover - unreachable
