"""Declarative multi-job pipelines over the in-memory filesystem.

The paper's system is a pipeline of MapReduce jobs wired through the
distributed filesystem (similarity join: term-bounds → candidates →
verify; matching: one job per iteration).  :class:`Pipeline` captures
that wiring declaratively so stages can be inspected, re-run, and
tested individually — the shape a production Hadoop driver would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .errors import MapReduceError
from .hdfs import InMemoryFileSystem
from .job import MapReduceJob
from .runtime import MapReduceRuntime

__all__ = ["PipelineStage", "Pipeline"]

#: Lazily computed side data: receives the filesystem, returns the
#: mapping shipped to the stage's tasks (e.g. a dict built from a
#: previous stage's output).
SideDataFactory = Callable[[InMemoryFileSystem], Mapping[str, Any]]


@dataclass
class PipelineStage:
    """One MapReduce job with its input paths and output path."""

    job: MapReduceJob
    inputs: Sequence[str]
    output: str
    side_data: Optional[SideDataFactory] = None

    def describe(self) -> str:
        """One-line human-readable summary of the stage."""
        inputs = ", ".join(self.inputs)
        return f"{self.job.name}: [{inputs}] -> {self.output}"


class Pipeline:
    """Run a sequence of stages on a runtime + filesystem pair.

    ``backend`` selects the execution backend (``"serial"``,
    ``"threads"``, ``"processes"``) when no runtime is supplied; a
    supplied runtime brings its own backend.

    >>> fs = InMemoryFileSystem()
    >>> _ = fs.write("/in", [(0, "a b a")])
    >>> # pipeline = Pipeline(runtime, fs); pipeline.add(job, ["/in"], "/out")
    """

    def __init__(
        self,
        runtime: Optional[MapReduceRuntime] = None,
        filesystem: Optional[InMemoryFileSystem] = None,
        backend: Optional[str] = None,
    ) -> None:
        if runtime is not None and backend is not None:
            raise MapReduceError(
                "pass either a runtime or a backend name, not both "
                "(the runtime already fixes its backend)"
            )
        self.runtime = runtime or MapReduceRuntime(
            backend=backend or "serial"
        )
        self.filesystem = filesystem or InMemoryFileSystem()
        self.stages: List[PipelineStage] = []
        self.records_out: Dict[str, int] = {}

    def add(
        self,
        job: MapReduceJob,
        inputs: Sequence[str],
        output: str,
        side_data: Optional[SideDataFactory] = None,
    ) -> "Pipeline":
        """Append a stage; returns ``self`` for chaining."""
        self.stages.append(
            PipelineStage(
                job=job,
                inputs=list(inputs),
                output=output,
                side_data=side_data,
            )
        )
        return self

    def validate(self) -> None:
        """Check stage wiring before running anything.

        Every stage's inputs must exist on the filesystem already or be
        produced by an *earlier* stage, and no two stages may write the
        same output.
        """
        produced = set()
        for stage in self.stages:
            for path in stage.inputs:
                if path not in produced and not self.filesystem.exists(
                    path
                ):
                    raise MapReduceError(
                        f"stage {stage.job.name!r} reads {path!r}, which "
                        "no earlier stage produces and which does not "
                        "exist"
                    )
            if stage.output in produced:
                raise MapReduceError(
                    f"two stages write to {stage.output!r}"
                )
            produced.add(stage.output)

    def run(self) -> List[tuple]:
        """Execute all stages in order; returns the last stage's output."""
        self.validate()
        last: List[tuple] = []
        for stage in self.stages:
            records = self.filesystem.read_many(stage.inputs)
            side = (
                stage.side_data(self.filesystem)
                if stage.side_data is not None
                else None
            )
            last = self.runtime.run(stage.job, records, side_data=side)
            self.filesystem.write(stage.output, last, overwrite=True)
            self.records_out[stage.output] = len(last)
        return last

    def describe(self) -> str:
        """Multi-line summary of the pipeline's wiring."""
        return "\n".join(stage.describe() for stage in self.stages)
