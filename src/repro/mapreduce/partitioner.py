"""Deterministic partitioning of intermediate keys to reduce tasks.

Python's built-in :func:`hash` is randomized per process for strings, which
would make simulated shuffles non-reproducible across runs.  We therefore
hash a *canonical byte encoding* of each key.  The same encoding doubles
as a total order for the sort phase, so keys of heterogeneous types can
be sorted deterministically.

The encoding is the currency of the runtime's *encoded shuffle plane*
(see :mod:`repro.mapreduce.runtime`): :func:`canonical_bytes` is computed
exactly once per intermediate record, and everything downstream —
partitioning, spill sorting, merging, reduce-side sort/group — reuses the
cached bytes.  Partitioning therefore has a bytes-first entry point,
:meth:`HashPartitioner.partition_bytes`, built on :func:`fast_hash_bytes`
— a CRC32 with a murmur3-style finalizer, several times cheaper than the
MD5 it replaced.  :func:`stable_hash` keeps the original MD5 construction
because it seeds per-node RNGs in the matching drivers (wider digest,
pinned by golden tests); it is no longer on the shuffle hot path.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Any

from .errors import JobValidationError

__all__ = [
    "canonical_bytes",
    "fast_hash_bytes",
    "stable_hash",
    "HashPartitioner",
]


def canonical_bytes(key: Any) -> bytes:
    """Encode ``key`` into bytes, stably across processes and runs.

    Supported key types are the ones used throughout this package:
    ``str``, ``bytes``, ``int``, ``float``, ``bool``, ``None`` and
    (arbitrarily nested) tuples thereof.  Each value is prefixed with a
    type tag so that e.g. ``1`` and ``"1"`` encode differently.

    This runs once per intermediate record (the encoded shuffle
    plane's invariant), which still makes it the hottest function in
    the simulator — the type checks are ordered by observed key
    frequency (str and tuple-of-str keys dominate every pipeline in
    the repo), with the bool check kept ahead of int, of which bool is
    a subclass.
    """
    cls = key.__class__
    if cls is str:
        return b"S" + key.encode("utf-8")
    if cls is tuple:
        body = bytearray(b"T")
        for part in key:
            if part.__class__ is str:  # inlined: hottest nested type
                encoded = b"S" + part.encode("utf-8")
            else:
                encoded = canonical_bytes(part)
            body += len(encoded).to_bytes(4, "big")
            body += encoded
        return bytes(body)
    if cls is bool:  # must precede int: bool is a subclass
        return b"B1" if key else b"B0"
    if cls is int:
        return b"I" + str(key).encode("ascii")
    if cls is float:
        return b"F" + repr(key).encode("ascii")
    if key is None:
        return b"N"
    if cls is bytes:
        return b"Y" + key
    # Subclasses (str/int/tuple/bytes subtypes) miss the exact-type
    # fast paths above and resolve here, encoding as their base type.
    if isinstance(key, bool):
        return b"B1" if key else b"B0"
    if isinstance(key, str):
        return b"S" + key.encode("utf-8")
    if isinstance(key, tuple):
        parts = bytearray(b"T")
        for part in key:
            encoded = canonical_bytes(part)
            parts += len(encoded).to_bytes(4, "big")
            parts += encoded
        return bytes(parts)
    if isinstance(key, int):
        return b"I" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"F" + repr(key).encode("ascii")
    if isinstance(key, bytes):
        return b"Y" + key
    raise JobValidationError(
        f"unsupported key type for shuffling: {type(key).__name__}"
    )


def fast_hash_bytes(data: bytes) -> int:
    """A cheap, process-independent 32-bit hash of encoded key bytes.

    CRC32 (a single C call) followed by the murmur3 32-bit finalizer,
    so the low bits — the ones ``% num_partitions`` consumes — avalanche
    well even for near-identical or structured keys.  Values are pinned
    by the golden-hash test; changing this function re-partitions every
    shuffle.
    """
    h = zlib.crc32(data)
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


def stable_hash(key: Any) -> int:
    """Return a process-independent 64-bit hash of ``key``.

    MD5-based: wider and better mixed than :func:`fast_hash_bytes`, used
    where hash *quality* matters more than speed (seeding per-node RNGs
    in the randomized matching drivers).  The shuffle hot path uses
    :meth:`HashPartitioner.partition_bytes` instead.
    """
    digest = hashlib.md5(canonical_bytes(key)).digest()
    return int.from_bytes(digest[:8], "big")


class HashPartitioner:
    """Assign each key to one of ``num_partitions`` reduce tasks.

    This is the default partitioner, the analogue of Hadoop's
    ``HashPartitioner``.  Custom partitioners only need to be callables
    with the same ``(key, num_partitions) -> int`` signature; they may
    additionally expose ``partition_bytes(key_bytes, num_partitions)``
    to partition straight from the cached canonical encoding — the
    runtime prefers that entry point, so the default shuffle never
    re-encodes a key it already encoded at map time.
    """

    def __call__(self, key: Any, num_partitions: int) -> int:
        return fast_hash_bytes(canonical_bytes(key)) % num_partitions

    @staticmethod
    def partition_bytes(key_bytes: bytes, num_partitions: int) -> int:
        """Partition from the cached canonical encoding (no re-encode)."""
        return fast_hash_bytes(key_bytes) % num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashPartitioner()"
