"""Deterministic partitioning of intermediate keys to reduce tasks.

Python's built-in :func:`hash` is randomized per process for strings, which
would make simulated shuffles non-reproducible across runs.  We therefore
hash a *canonical byte encoding* of each key with MD5.  The same encoding
doubles as a total order for the sort phase, so keys of heterogeneous types
can be sorted deterministically.
"""

from __future__ import annotations

import hashlib
from typing import Any

from .errors import JobValidationError

__all__ = ["canonical_bytes", "stable_hash", "HashPartitioner"]


def canonical_bytes(key: Any) -> bytes:
    """Encode ``key`` into bytes, stably across processes and runs.

    Supported key types are the ones used throughout this package:
    ``str``, ``bytes``, ``int``, ``float``, ``bool``, ``None`` and
    (arbitrarily nested) tuples thereof.  Each value is prefixed with a
    type tag so that e.g. ``1`` and ``"1"`` encode differently.
    """
    if key is None:
        return b"N"
    if isinstance(key, bool):  # must precede int: bool is a subclass
        return b"B1" if key else b"B0"
    if isinstance(key, int):
        return b"I" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"F" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"S" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"Y" + key
    if isinstance(key, tuple):
        parts = [canonical_bytes(part) for part in key]
        body = b"".join(
            len(part).to_bytes(4, "big") + part for part in parts
        )
        return b"T" + body
    raise JobValidationError(
        f"unsupported key type for shuffling: {type(key).__name__}"
    )


def stable_hash(key: Any) -> int:
    """Return a process-independent 64-bit hash of ``key``."""
    digest = hashlib.md5(canonical_bytes(key)).digest()
    return int.from_bytes(digest[:8], "big")


class HashPartitioner:
    """Assign each key to one of ``num_partitions`` reduce tasks.

    This is the default partitioner, the analogue of Hadoop's
    ``HashPartitioner``.  Custom partitioners only need to be callables
    with the same ``(key, num_partitions) -> int`` signature.
    """

    def __call__(self, key: Any, num_partitions: int) -> int:
        return stable_hash(key) % num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashPartitioner()"
