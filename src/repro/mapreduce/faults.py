"""Deterministic fault injection and the recovery machinery over it.

The ROADMAP's distributed-cluster north star needs task retry on
worker death, straggler re-execution, and clean-restart semantics —
none of which can be trusted without a way to *provoke* failures
reproducibly and prove that recovery preserves the bit-identical
contract.  This module supplies both halves:

* **Injection** — a seeded :class:`FaultPlan` schedules task crashes,
  artificial straggler delays, transient storage errors, poisoned
  event records, and mid-flush service faults, each decided by a
  cryptographic hash of ``(seed, site)`` so every failure scenario is
  reproducible from one integer seed, across backends and machines.
  :class:`FaultyFileSystem` wraps any
  :class:`~repro.mapreduce.storage.FileSystem` and raises seeded
  transient :class:`InjectedIOError`\\ s from ``read``/``write``.

* **Recovery** — :class:`RetryPolicy` configures how many attempts a
  task (or a storage operation, or a service flush) gets and how long
  to back off between them; :func:`resilient_task_call` is the
  picklable in-worker wrapper that re-executes failed task attempts
  (a failed attempt's counters are simply never returned, so totals
  stay bit-identical — the ``counters=None`` retry discipline);
  :class:`RetryingFileSystem` retries transient storage faults
  driver-side.

Why recovery preserves determinism
----------------------------------

Task units are stateless and idempotent (the contract the speculative
statelessness check has enforced since PR 1), and each attempt meters
into a *fresh* task-local :class:`~repro.mapreduce.counters.Counters`
that only the successful attempt returns.  Storage writes are atomic
(PR 2's rename-on-close), and :class:`FaultyFileSystem` raises
*before* delegating, so a faulted operation leaves nothing behind and
its retry observes exactly the pre-fault state.  The chaos property
matrix in ``tests/mapreduce/test_faults.py`` asserts the consequence:
outputs, job logs, and volatile-stripped counters of a faulted run are
bit-identical to the fault-free run, with the ``faults`` counter group
(:data:`FAULT_COUNTER_GROUP` — dropped by
:func:`~repro.mapreduce.state.strip_volatile_counters`) proving the
faults actually fired.

Fault identity and the consumed-once rule
-----------------------------------------

Every fault site has a stable identity: tasks by ``(job, phase,
task_index, attempt)``, storage operations by ``(kind, op_index)``,
flushes by ``(flush_index, attempt)``, events by their admission
sequence number.  Crash-like faults are *attempt-capped*
(``max_faults_per_site``, default 1): the fault fires on early
attempts and stands down afterwards, so any recovery budget of at
least two attempts deterministically converges.  Storage faults are
*consumed once*: the faulted operation does not advance the logical
op index, so the immediate retry of the same logical operation hits
the already-consumed fault key and succeeds — the transient-error
model, made deterministic.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .counters import Counters
from .errors import JobValidationError, MapReduceError
from .job import KeyValue
from .storage.base import FileSystem

__all__ = [
    "FAULT_COUNTER_GROUP",
    "FaultPlan",
    "FaultyFileSystem",
    "InjectedFault",
    "InjectedIOError",
    "InjectedTaskFault",
    "PoisonedEvent",
    "RetryPolicy",
    "RetryingFileSystem",
    "TaskFaultSpec",
    "fired_specs",
    "resilient_task_call",
]

#: Counter group for every fault/recovery meter (``injected_*``,
#: ``task.retries``, ``task.speculative_wins``, ``pool.respawns``,
#: ``storage.retries``, ``flush.retries``, ``events.dead_lettered``).
#: The group is volatile by definition — whether and where faults fire
#: must never perturb the deterministic totals — so
#: :func:`~repro.mapreduce.state.strip_volatile_counters` drops it
#: wholesale.
FAULT_COUNTER_GROUP = "faults"


class InjectedFault(MapReduceError):
    """Base class of every deliberately injected failure."""


class InjectedTaskFault(InjectedFault):
    """A scheduled task-attempt crash (stands in for worker death)."""


class InjectedIOError(InjectedFault, IOError):
    """A scheduled *transient* storage error.

    Also an :class:`IOError`, so generic ``except OSError`` recovery
    paths treat it exactly like the real flaky-disk errors it models.
    """


class PoisonedEvent(InjectedFault):
    """A scheduled admission failure for one service event."""


@dataclass(frozen=True)
class RetryPolicy:
    """How much recovery a runtime (or matcher) is allowed to buy.

    Parameters
    ----------
    max_attempts:
        Total attempts per task / storage operation / flush (``1`` =
        no retries, the pre-fault-plane behavior).
    backoff:
        Base seconds slept between attempts, scaled linearly by the
        attempt number (attempt ``n`` retries after ``backoff * n``
        seconds).  Keep ``0.0`` in tests.
    task_timeout:
        When set and the executor is parallel, the runtime promotes
        the speculative-execution hook to real straggler mitigation:
        tasks still running after this many seconds get a backup
        attempt and the first finisher wins (the loser's output is
        discarded — identical by the statelessness contract).
    """

    max_attempts: int = 3
    backoff: float = 0.0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise JobValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise JobValidationError(
                f"backoff must be >= 0, got {self.backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise JobValidationError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )

    def retry_delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        return self.backoff * attempt

    @staticmethod
    def retryable(exc: BaseException) -> bool:
        """Whether an exception models a *transient* failure.

        Injected faults and OS-level errors qualify; deterministic job
        bugs (validation errors, event rejections) do not — retrying a
        deterministic failure is wasted work that hides the bug.
        """
        return isinstance(exc, (InjectedFault, OSError))


@dataclass(frozen=True)
class TaskFaultSpec:
    """One scheduled fault for one task attempt (picklable).

    ``kind`` is ``"crash"`` (raise :class:`InjectedTaskFault`),
    ``"delay"`` (sleep ``seconds``), ``"worker_kill"`` (hard-kill the
    hosting cluster worker), or ``"drop_frame"`` (run the task but
    drop its result frame).  ``once_path``, when set, makes the fault
    *machine-scoped* rather than attempt-scoped: the first execution
    to claim the sentinel file fires it, any concurrent or later
    re-execution of the same attempt runs clean — for delays, the
    straggler shape speculative backups exist to beat; for the cluster
    kinds, the guarantee that driver-side re-execution converges.
    """

    kind: str
    seconds: float = 0.0
    once_path: Optional[str] = None


def fired_specs(
    specs: Sequence[Optional[TaskFaultSpec]],
) -> List[TaskFaultSpec]:
    """The specs that will actually fire, in firing order.

    Attempt 0 always runs; attempt ``n`` runs only if attempt ``n-1``
    crashed (a delay slows an attempt but lets it succeed).  Computed
    driver-side so the ``injected_*`` meters are backend-independent.
    """
    fired: List[TaskFaultSpec] = []
    for spec in specs:
        if spec is None:
            break
        fired.append(spec)
        if spec.kind != "crash":
            break
    return fired


class FaultPlan:
    """A seeded, deterministic schedule of failures.

    Every decision is a pure function of ``(seed, site identity)`` via
    SHA-256, so the same plan injects the same faults at the same
    sites on every run, backend, filesystem, and machine — one integer
    seed reproduces a whole failure scenario.

    Parameters
    ----------
    seed:
        The scenario. Same seed, same faults.
    crash_rate:
        Probability a task attempt is scheduled to crash
        (:class:`InjectedTaskFault` before the task body runs).
        Capped per task by ``max_faults_per_site`` and by the retry
        budget — a crash is only scheduled on attempts that have a
        successor, so recovery always converges.
    delay_rate, delay_seconds:
        Probability a task attempt is scheduled to straggle, and for
        how long.  Delays are machine-scoped via a sentinel file (see
        :class:`TaskFaultSpec.once_path`), so a speculative backup of
        a delayed task runs at full speed.
    worker_kill_rate:
        Probability a task's first execution hard-kills its hosting
        cluster worker (``os._exit`` mid-task — the worker-death
        shape).  Recovery is *driver-side*: the cluster driver detects
        the death, respawns the worker, and re-executes the task;
        the fault is sentinel-scoped so the re-execution runs clean.
        On single-process backends (no worker to kill) it degrades to
        an in-worker task-attempt crash.
    frame_drop_rate:
        Probability a task's first execution completes but its result
        frame is dropped on the wire (the worker closes the connection
        instead of replying) — the lost-message shape.  Driver-side
        recovery re-executes; sentinel-scoped like ``worker_kill``.
        Degrades to a task-attempt crash off-cluster.
    io_rate:
        Probability a ``read``/``write`` through a
        :class:`FaultyFileSystem` raises a transient
        :class:`InjectedIOError` (consumed-once per logical op).
    flush_rate:
        Probability a service flush attempt faults mid-reconvergence
        (capped per flush by ``max_faults_per_site``).
    poison_rate:
        Probability an admitted event is *permanently* poisoned: its
        admission raises :class:`PoisonedEvent` on every attempt until
        the matcher dead-letters it.
    max_faults_per_site:
        Cap on crash-like faults per site (task / flush).  The default
        of 1 guarantees recovery with any ``max_attempts >= 2``.
    scratch_dir:
        Directory for delay sentinel files; a private temporary
        directory is created lazily when omitted (removed by
        :meth:`cleanup` / context-manager exit).
    """

    def __init__(
        self,
        seed: int,
        crash_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.05,
        worker_kill_rate: float = 0.0,
        frame_drop_rate: float = 0.0,
        io_rate: float = 0.0,
        flush_rate: float = 0.0,
        poison_rate: float = 0.0,
        max_faults_per_site: int = 1,
        scratch_dir: Optional[str] = None,
    ) -> None:
        for name, rate in (
            ("crash_rate", crash_rate),
            ("delay_rate", delay_rate),
            ("worker_kill_rate", worker_kill_rate),
            ("frame_drop_rate", frame_drop_rate),
            ("io_rate", io_rate),
            ("flush_rate", flush_rate),
            ("poison_rate", poison_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise JobValidationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if delay_seconds < 0:
            raise JobValidationError(
                f"delay_seconds must be >= 0, got {delay_seconds}"
            )
        if max_faults_per_site < 0:
            raise JobValidationError(
                "max_faults_per_site must be >= 0, got "
                f"{max_faults_per_site}"
            )
        self.seed = seed
        self.crash_rate = crash_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        self.worker_kill_rate = worker_kill_rate
        self.frame_drop_rate = frame_drop_rate
        self.io_rate = io_rate
        self.flush_rate = flush_rate
        self.poison_rate = poison_rate
        self.max_faults_per_site = max_faults_per_site
        self._scratch_dir = scratch_dir
        self._owns_scratch = False

    # -- the seeded coin ---------------------------------------------------

    def _roll(self, *site: Any) -> float:
        """A uniform draw in ``[0, 1)`` keyed by ``(seed, site)``."""
        token = repr((self.seed,) + site).encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # -- task faults -------------------------------------------------------

    @property
    def has_task_faults(self) -> bool:
        return (
            self.crash_rate > 0
            or self.delay_rate > 0
            or self.worker_kill_rate > 0
            or self.frame_drop_rate > 0
        )

    def task_faults(
        self,
        job: str,
        phase: str,
        task_index: int,
        max_attempts: int,
    ) -> Tuple[Optional[TaskFaultSpec], ...]:
        """Per-attempt fault specs for one task, ``max_attempts`` long.

        Crashes are scheduled only on attempts with a successor and at
        most ``max_faults_per_site`` times, so a task that keeps being
        retried always reaches a crash-free attempt.  Delays may fire
        on any attempt (they slow, never fail).

        Cluster faults (``worker_kill`` / ``drop_frame``) are
        scheduled at most once per task, on the first execution only,
        and are mutually exclusive with the in-worker kinds: their
        recovery is a driver-side *re-execution* (the same attempt-0
        spec tuple runs again), so the spec is sentinel-scoped and the
        remaining attempts stay clean — and :func:`fired_specs` still
        meters exactly what fires.
        """
        if self.worker_kill_rate > 0 or self.frame_drop_rate > 0:
            site = (job, phase, task_index, 0)
            spec: Optional[TaskFaultSpec] = None
            if self._roll("worker_kill", *site) < self.worker_kill_rate:
                spec = TaskFaultSpec(
                    kind="worker_kill",
                    once_path=self._sentinel_path("worker_kill", *site),
                )
            elif self._roll("drop_frame", *site) < self.frame_drop_rate:
                spec = TaskFaultSpec(
                    kind="drop_frame",
                    once_path=self._sentinel_path("drop_frame", *site),
                )
            if spec is not None:
                return (spec,) + (None,) * (max_attempts - 1)
        crash_budget = min(self.max_faults_per_site, max_attempts - 1)
        specs: List[Optional[TaskFaultSpec]] = []
        for attempt in range(max_attempts):
            site = (job, phase, task_index, attempt)
            if (
                attempt < crash_budget
                and self._roll("crash", *site) < self.crash_rate
            ):
                specs.append(TaskFaultSpec(kind="crash"))
            elif self._roll("delay", *site) < self.delay_rate:
                specs.append(
                    TaskFaultSpec(
                        kind="delay",
                        seconds=self.delay_seconds,
                        once_path=self._sentinel_path(*site),
                    )
                )
            else:
                specs.append(None)
        return tuple(specs)

    # -- storage / service faults ------------------------------------------

    def storage_fault(self, kind: str, op_index: int) -> bool:
        """Whether logical storage operation ``op_index`` of ``kind``
        (``"read"`` / ``"write"``) should raise transiently."""
        return self._roll("io", kind, op_index) < self.io_rate

    def flush_fault(self, flush_index: int, attempt: int) -> bool:
        """Whether flush ``flush_index``'s attempt ``attempt`` should
        fault mid-reconvergence (attempt-capped like task crashes)."""
        if attempt >= self.max_faults_per_site:
            return False
        return self._roll("flush", flush_index, attempt) < self.flush_rate

    def event_poisoned(self, sequence: int) -> bool:
        """Whether the event with admission sequence number
        ``sequence`` is permanently poisoned."""
        return self._roll("poison", sequence) < self.poison_rate

    # -- straggler sentinels -----------------------------------------------

    def _sentinel_path(self, *site: Any) -> str:
        token = hashlib.sha256(
            repr(site).encode("utf-8")
        ).hexdigest()[:20]
        return os.path.join(self.scratch_dir, f"straggler-{token}")

    @property
    def scratch_dir(self) -> str:
        """The sentinel directory, created lazily."""
        if self._scratch_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-faults-")
            self._owns_scratch = True
        return self._scratch_dir

    def cleanup(self) -> None:
        """Remove the sentinel scratch directory if this plan owns it."""
        if self._owns_scratch and self._scratch_dir is not None:
            shutil.rmtree(self._scratch_dir, ignore_errors=True)
            self._scratch_dir = None
            self._owns_scratch = False

    def __enter__(self) -> "FaultPlan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rates = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in (
                "crash_rate",
                "delay_rate",
                "io_rate",
                "flush_rate",
                "poison_rate",
            )
            if getattr(self, name)
        )
        return f"FaultPlan(seed={self.seed}{', ' + rates if rates else ''})"


# -- the in-worker retry wrapper ---------------------------------------------
#
# A module-level function so the processes backend can pickle it by
# reference; fault specs are precomputed driver-side (deterministic and
# picklable) and travel with the task arguments.


def _claim_once(path: str) -> bool:
    """Claim a fault sentinel; ``False`` if already claimed elsewhere."""
    try:
        handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(handle)
    except FileExistsError:
        return False  # another execution already fired this fault
    except OSError:
        pass  # scratch dir gone: fire anyway
    return True


def _fire(spec: TaskFaultSpec) -> None:
    """Make one scheduled fault happen, inside the worker."""
    if spec.kind == "crash":
        raise InjectedTaskFault("injected task-attempt crash")
    if spec.kind == "delay":
        if spec.once_path is not None and not _claim_once(spec.once_path):
            return
        time.sleep(spec.seconds)
        return
    if spec.kind in ("worker_kill", "drop_frame"):
        if spec.once_path is not None and not _claim_once(spec.once_path):
            return  # a previous execution already paid this fault
        # Lazy import: only chaos runs that schedule cluster kinds pay
        # for the cluster plane, and only to ask "am I in a worker?".
        try:
            from .cluster import worker as cluster_worker
        except Exception:  # pragma: no cover - defensive
            cluster_worker = None
        on_cluster = (
            cluster_worker is not None and cluster_worker.in_worker()
        )
        if spec.kind == "worker_kill":
            if on_cluster:
                os._exit(17)  # hard worker death, mid-task
            raise InjectedTaskFault(
                "injected worker kill (no cluster worker to kill: "
                "degraded to a task-attempt crash)"
            )
        if on_cluster:
            cluster_worker.request_drop_reply()
            return  # the task runs; its result frame is dropped
        raise InjectedTaskFault(
            "injected frame drop (no frame to drop: degraded to a "
            "task-attempt crash)"
        )


def resilient_task_call(
    max_attempts: int,
    backoff: float,
    specs: Tuple[Optional[TaskFaultSpec], ...],
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """Run a task unit with injected faults and bounded retries.

    Each attempt first fires its scheduled fault (if any), then runs
    the real task function.  A failed attempt's partial result — and
    crucially its task-local :class:`Counters` — is discarded whole,
    so only the successful attempt's counters ever reach the driver
    and totals stay bit-identical with the fault-free run.  The
    recovery meters (``task.retries``) land on the successful result's
    trailing counters under :data:`FAULT_COUNTER_GROUP`, which the
    bit-identical comparisons strip.

    Retries cover injected faults only: a deterministic job bug (a
    validation error, say) fails fast on its first attempt exactly as
    it does without a fault plan.
    """
    attempt = 0
    while True:
        spec = specs[attempt] if attempt < len(specs) else None
        try:
            if spec is not None:
                _fire(spec)
            result = fn(*args)
        except InjectedFault:
            attempt += 1
            if attempt >= max_attempts:
                raise
            if backoff:
                time.sleep(backoff * attempt)
            continue
        if attempt:
            counters = result[-1]
            if isinstance(counters, Counters):
                counters.increment(
                    FAULT_COUNTER_GROUP, "task.retries", attempt
                )
        return result


# -- filesystem wrappers ------------------------------------------------------


class _DelegatingFileSystem(FileSystem):
    """Shared plumbing: forward everything to an inner filesystem."""

    def __init__(self, inner: FileSystem) -> None:
        self.inner = inner

    @property  # type: ignore[override]
    def name(self) -> str:  # the wrapped backend keeps its identity
        return self.inner.name

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        return self.inner.write(path, records, overwrite=overwrite)

    def read(self, path: str) -> List[KeyValue]:
        return self.inner.read(path)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def delete(self, path: str) -> None:
        self.inner.delete(path)

    def list_paths(self, prefix: str = "/") -> List[str]:
        return self.inner.list_paths(prefix)

    def du(self, path: Optional[str] = None):
        return self.inner.du(path)

    def __getattr__(self, attr: str) -> Any:
        # Backend extras (e.g. LocalDiskFileSystem.root) stay reachable
        # through the wrapper; only missing attributes land here.
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.inner!r})"


class FaultyFileSystem(_DelegatingFileSystem):
    """Inject seeded transient IO errors over any filesystem.

    Fault decisions key off the *logical operation index* per kind
    (the N-th ``read``, the N-th ``write``), and a faulted call does
    **not** advance that index — the fault key is consumed instead, so
    the immediate retry of the same logical operation deterministically
    succeeds.  The fault is raised *before* delegating, so a faulted
    write never leaves partial state (and the inner backend's atomic
    rename-on-close covers real crashes).

    Because every decision is a pure function of the plan's seed and
    the op index, a run over ``Faulty(disk)`` injects the same faults
    as the same run over ``Faulty(memory)``.
    """

    def __init__(
        self,
        inner: FileSystem,
        plan: FaultPlan,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(inner)
        self.plan = plan
        self.counters = counters
        self._op_counts: Dict[str, int] = {"read": 0, "write": 0}
        self._consumed: Set[Tuple[str, int]] = set()

    def _maybe_fault(self, kind: str, path: str) -> None:
        index = self._op_counts[kind]
        key = (kind, index)
        if key not in self._consumed and self.plan.storage_fault(
            kind, index
        ):
            self._consumed.add(key)
            if self.counters is not None:
                self.counters.increment(FAULT_COUNTER_GROUP, "injected_io")
                self.counters.increment(
                    FAULT_COUNTER_GROUP, "injected_total"
                )
            raise InjectedIOError(
                f"injected transient {kind} fault at {path!r} "
                f"(op #{index})"
            )
        self._op_counts[kind] = index + 1

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        self._maybe_fault("write", path)
        return self.inner.write(path, records, overwrite=overwrite)

    def read(self, path: str) -> List[KeyValue]:
        self._maybe_fault("read", path)
        return self.inner.read(path)


class RetryingFileSystem(_DelegatingFileSystem):
    """Retry transient ``read``/``write`` failures per a policy.

    The driver-side half of storage recovery: wraps the (possibly
    faulty) filesystem so state parking, point reads, and pipeline
    stage writes transparently survive transient errors.  Retries
    :class:`InjectedFault` and :class:`OSError` only — contract
    violations (:class:`~repro.mapreduce.storage.FileSystemError`,
    e.g. an overwrite without ``overwrite=True``) are deterministic
    and fail fast.
    """

    def __init__(
        self,
        inner: FileSystem,
        policy: RetryPolicy,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(inner)
        self.policy = policy
        self.counters = counters

    def _with_retries(self, fn: Callable[[], Any], what: str) -> Any:
        attempt = 0
        while True:
            try:
                return fn()
            except (InjectedFault, OSError):
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise
                if self.counters is not None:
                    self.counters.increment(
                        FAULT_COUNTER_GROUP, "storage.retries"
                    )
                delay = self.policy.retry_delay(attempt)
                if delay:
                    time.sleep(delay)

    def write(
        self,
        path: str,
        records: Iterable[KeyValue],
        overwrite: bool = False,
    ) -> int:
        # Materialize once so every attempt writes the same records
        # even when the caller streams them.
        rows = records if isinstance(records, list) else list(records)
        return self._with_retries(
            lambda: self.inner.write(path, rows, overwrite=overwrite),
            f"write {path!r}",
        )

    def read(self, path: str) -> List[KeyValue]:
        return self._with_retries(
            lambda: self.inner.read(path), f"read {path!r}"
        )
