"""The resident state store of the delta iteration plane.

Every algorithm in the paper is iterative, and until this layer existed
each round re-shipped the *entire* residual graph through
map/shuffle/reduce — node records were emitted as ``("self", state)``
messages, canonically encoded, partitioned, sorted, and re-emitted from
the reduce, every single round, even though most nodes are quiescent
after the first few iterations ("Taming the zoo" calls this
full-state-per-iteration pattern the dominant cost of iterative
algorithms on Hadoop).

A :class:`ResidentStateStore` keeps one ``key -> state`` record per
node *resident on the reduce side* instead:

* records are partitioned by the **same** hash of the canonical key
  bytes the shuffle uses (:meth:`~repro.mapreduce.partitioner.
  HashPartitioner.partition_bytes`), so a reduce task's state partition
  is exactly the set of keys its shuffle partition can address — the
  join is local and compares cached key bytes, never re-encoding;
* between rounds the store can *park* its partitions on the runtime's
  pluggable :class:`~repro.mapreduce.storage.FileSystem` (the same
  ``--fs`` knob that backs inter-job datasets), so resident state
  spills out-of-core exactly like the external shuffle does;
* each round, the reduce returns only *changed* records — the
  **deltas** — which the runtime applies to the store and hands back as
  the next round's delta stream; convergence is simply "the delta
  stream is empty".

See :meth:`repro.mapreduce.runtime.MapReduceRuntime.run_stateful` for
the two execution modes (resident *scan* rounds and *frontier* delta
rounds) and the job-side hooks.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from .counters import Counters
from .errors import JobValidationError
from .faults import FAULT_COUNTER_GROUP
from .job import KeyValue
from .partitioner import HashPartitioner, canonical_bytes
from .storage import FileSystem, InMemoryFileSystem, strip_spill_counters

__all__ = [
    "Quiet",
    "ResidentStateStore",
    "Retired",
    "STATE_POINT_COUNTERS",
    "STATE_SPILL_COUNTERS",
    "strip_volatile_counters",
]

#: Counter names metered by the resident state store when it parks
#: partitions out-of-core.  Like the external shuffle's spill counters,
#: these are the only counters allowed to differ between runs at
#: different spill thresholds.
STATE_SPILL_COUNTERS = (
    "state.spilled_records",
    "state.spill_files",
    "state.spilled_bytes",
)

#: Counters metered by the single-key fast path on *parked* partitions:
#: ``point_applies`` counts :meth:`ResidentStateStore.put`/``discard``
#: calls absorbed by the overlay without unparking, ``point_reads``
#: counts :meth:`ResidentStateStore.get` lookups served straight from a
#: parked file.  Whether a partition is parked depends on the spill
#: threshold, so these join the spill counters as volatile.
STATE_POINT_COUNTERS = (
    "state.point_applies",
    "state.point_reads",
)


def strip_volatile_counters(snapshot: dict) -> dict:
    """Drop shuffle-spill, state-spill, point-access, and fault counters.

    The cross-cell equivalence contract of the matching test matrix:
    for a fixed delta mode, counter totals are bit-identical across
    executors, filesystems, and spill thresholds once the
    threshold-dependent counters are stripped.  The ``faults`` group
    (injection and recovery meters) is dropped wholesale for the same
    reason: a chaos run must agree with the fault-free run on
    everything *except* the record of the faults themselves.

    Accepts either a plain :class:`Counters` snapshot or a full
    :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot (the
    ``counters`` / ``gauges`` / ``histograms`` shape).  For the
    latter, the counter section is stripped as before, the gauge
    section is dropped wholesale (gauges are wall-clock meters —
    and, on the cluster backend, scheduling meters like per-worker
    task tallies and respawn counts, which depend on dispatch timing
    — always volatile), and histograms flagged ``volatile`` (per-job timing
    distributions) are dropped while the deterministic record-count
    histograms are kept — so the bit-identical property tests keep
    passing with timing metrics enabled, and the contract extends to
    histogram bucket totals.
    """
    if _is_registry_snapshot(snapshot):
        histograms = {}
        for group, names in snapshot.get("histograms", {}).items():
            kept = {
                name: hist
                for name, hist in names.items()
                if not hist.get("volatile")
            }
            if kept:
                histograms[group] = kept
        return {
            "counters": strip_volatile_counters(
                snapshot.get("counters", {})
            ),
            "histograms": histograms,
        }
    stripped = strip_spill_counters(
        snapshot, extra=STATE_SPILL_COUNTERS + STATE_POINT_COUNTERS
    )
    stripped.pop(FAULT_COUNTER_GROUP, None)
    return stripped


def _is_registry_snapshot(snapshot: dict) -> bool:
    """A registry snapshot has the three fixed sections; a counter
    snapshot maps group names to ``name -> int`` dicts."""
    return set(snapshot) <= {"counters", "gauges", "histograms"} and (
        "gauges" in snapshot or "histograms" in snapshot
    )


@dataclass(frozen=True)
class Quiet:
    """A state update that must be stored but is *not* a delta.

    Returned from ``reduce_state`` when a record's bookkeeping changed
    without changing anything its peers can observe — GreedyMR's inbox
    is the canonical case: a node must remember the proposals it
    received, but since its own outgoing messages are a function of its
    capacity and adjacency alone, an inbox-only change obliges it to
    nothing next round.  The runtime stores ``state`` silently: no
    delta is emitted, the record counts as quiescent, and a round whose
    only updates are quiet ones can end the iteration.
    """

    state: Any


@dataclass(frozen=True)
class Retired:
    """The final delta of a record leaving the resident store.

    Returned from :meth:`~repro.mapreduce.job.MapReduceJob.
    reduce_state` to delete the key.  ``notify`` optionally names peer
    keys that must observe the departure: the runtime prunes peers that
    are no longer resident themselves and, if any survive, re-emits
    ``(key, Retired(notify))`` into the next round's delta stream so
    the job's ``map_delta`` can send death notices.  (Pruning is what
    keeps round counts identical to the full-state path: a round whose
    only pending work is notifying already-dead peers never runs.)
    """

    notify: Tuple[str, ...] = ()


#: One resident entry: the original key and its current state value.
StateEntry = Tuple[Any, Any]


class ResidentStateStore:
    """Per-partition resident state for delta-driven iterative jobs.

    Parameters
    ----------
    name:
        Namespace for parked datasets (``/state/<name>/part-NNNNN``)
        and the counter group for spill metering.
    num_partitions:
        Must equal the owning runtime's ``num_reduce_tasks`` — the
        whole point is that partition ``i`` of the store joins against
        shuffle partition ``i`` without data movement.
    filesystem:
        Where partitions park when the store exceeds
        ``spill_threshold`` records; defaults to a private in-memory
        filesystem.  States are pickled into ``bytes`` payloads, so any
        picklable state value survives the JSONL disk codec.
    spill_threshold:
        Total resident records above which :meth:`maybe_park` offloads
        every partition to the filesystem between rounds.  ``None``
        (default) keeps the store in memory.
    counters:
        Optional shared :class:`Counters` for the spill metering
        (:data:`STATE_SPILL_COUNTERS`).
    router:
        Optional ``(key_bytes, key, num_partitions) -> index`` override
        for runtimes with a custom shuffle partitioner — the store must
        agree with the shuffle record for record, or the reduce-side
        join silently misses (``MapReduceRuntime.state_store`` installs
        the right router automatically).  Default: the shuffle's own
        :meth:`~repro.mapreduce.partitioner.HashPartitioner.
        partition_bytes`.
    """

    def __init__(
        self,
        name: str,
        num_partitions: int,
        filesystem: Optional[FileSystem] = None,
        spill_threshold: Optional[int] = None,
        counters: Optional[Counters] = None,
        router: Optional[Callable[[bytes, Any, int], int]] = None,
    ) -> None:
        if num_partitions < 1:
            raise JobValidationError(
                "state store needs at least one partition"
            )
        self.name = name
        self.num_partitions = num_partitions
        self.filesystem = filesystem or InMemoryFileSystem()
        self.spill_threshold = spill_threshold
        self.counters = counters
        self._router = router
        self._partitions: List[Optional[Dict[bytes, StateEntry]]] = [
            {} for _ in range(num_partitions)
        ]
        #: Resident key bytes per partition, kept in memory even while
        #: the values are parked — membership tests never touch disk.
        self._keys: List[Set[bytes]] = [
            set() for _ in range(num_partitions)
        ]
        #: Pending single-key edits against *parked* partitions:
        #: ``key_bytes -> entry`` (``None`` = deletion tombstone).
        #: Invariant: a partition's overlay is non-empty only while
        #: ``_partitions[index] is None``; loading the partition folds
        #: the overlay in and clears it.
        self._overlay: List[Dict[bytes, Optional[StateEntry]]] = [
            {} for _ in range(num_partitions)
        ]
        #: Open transaction snapshot (see :meth:`begin_transaction`),
        #: or ``None``.
        self._txn: Optional[Tuple[Any, Any, Any]] = None
        self._park_deferred = False

    # -- transactions ------------------------------------------------------

    def begin_transaction(self) -> None:
        """Snapshot the store so a failure can roll it back.

        The snapshot is *shallow*: the partition dicts, key sets, and
        overlays are copied, the :data:`StateEntry` values are aliased.
        That is sound because every producer of entries treats them as
        immutable — ``reduce_state`` implementations return fresh state
        instances rather than mutating the stored ones (the
        statelessness contract the speculative check enforces) — so an
        aliased entry can never be changed under the snapshot, only
        replaced.  Cost is O(resident keys), independent of state size.

        While a transaction is open, :meth:`maybe_park` is deferred:
        parked *files* are never rewritten mid-transaction, so the
        on-disk image always reflects the last committed state and
        rollback is pure in-memory restoration.  The deferred park (if
        any) runs at :meth:`commit_transaction`.
        """
        if self._txn is not None:
            raise JobValidationError(
                f"store {self.name!r} already has an open transaction"
            )
        self._txn = (
            [
                dict(part) if part is not None else None
                for part in self._partitions
            ],
            [set(keys) for keys in self._keys],
            [dict(overlay) for overlay in self._overlay],
        )
        self._park_deferred = False

    def commit_transaction(self) -> None:
        """Discard the rollback snapshot and run any deferred park."""
        if self._txn is None:
            raise JobValidationError(
                f"store {self.name!r} has no open transaction"
            )
        self._txn = None
        if self._park_deferred:
            self._park_deferred = False
            self.maybe_park()

    def rollback_transaction(self) -> None:
        """Restore the store to its :meth:`begin_transaction` state."""
        if self._txn is None:
            raise JobValidationError(
                f"store {self.name!r} has no open transaction"
            )
        partitions, keys, overlay = self._txn
        self._partitions = partitions
        self._keys = keys
        self._overlay = overlay
        self._txn = None
        self._park_deferred = False

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # -- addressing --------------------------------------------------------

    def _path(self, index: int) -> str:
        return f"/state/{self.name}/part-{index:05d}"

    def partition_of(self, key_bytes: bytes, key: Any) -> int:
        """The partition owning ``key`` (same routing as the shuffle)."""
        if self._router is not None:
            return self._router(key_bytes, key, self.num_partitions)
        return HashPartitioner.partition_bytes(
            key_bytes, self.num_partitions
        )

    # -- loading and access ------------------------------------------------

    def load(self, records: Any) -> int:
        """Bulk-insert initial ``(key, value)`` records; returns count."""
        count = 0
        for key, value in records:
            key_bytes = canonical_bytes(key)
            index = self.partition_of(key_bytes, key)
            self.partition(index)[key_bytes] = (key, value)
            self._keys[index].add(key_bytes)
            count += 1
        return count

    def partition(self, index: int) -> Dict[bytes, StateEntry]:
        """Partition ``index`` as a ``key_bytes -> (key, state)`` dict.

        A parked partition is read back from the filesystem (and stays
        in memory until the next :meth:`maybe_park`).  Reduce tasks
        receive this dict read-only; all mutation goes through
        :meth:`put` / :meth:`discard`.
        """
        loaded = self._partitions[index]
        if loaded is None:
            path = self._path(index)
            loaded = {}
            if self.filesystem.exists(path):
                for key_bytes, payload in self.filesystem.read(path):
                    loaded[key_bytes] = pickle.loads(payload)
            overlay = self._overlay[index]
            if overlay:
                for key_bytes, entry in overlay.items():
                    if entry is None:
                        loaded.pop(key_bytes, None)
                    else:
                        loaded[key_bytes] = entry
                overlay.clear()
            self._partitions[index] = loaded
        return loaded

    def put(self, key_bytes: bytes, key: Any, value: Any) -> None:
        """Insert or replace the state for one key.

        On a *parked* partition the write lands in the partition's
        overlay — a per-event admission never reloads the whole parked
        file to touch one key (metered as ``state.point_applies``).
        """
        index = self.partition_of(key_bytes, key)
        part = self._partitions[index]
        if part is None:
            self._overlay[index][key_bytes] = (key, value)
            self._meter_point("state.point_applies")
        else:
            part[key_bytes] = (key, value)
        self._keys[index].add(key_bytes)

    def discard(self, key_bytes: bytes, key: Any) -> None:
        """Remove one key (no-op when absent).

        Deleting from a parked partition writes an overlay tombstone
        instead of unparking (metered as ``state.point_applies``).
        """
        index = self.partition_of(key_bytes, key)
        if key_bytes not in self._keys[index]:
            return
        part = self._partitions[index]
        if part is None:
            self._overlay[index][key_bytes] = None
            self._meter_point("state.point_applies")
        else:
            part.pop(key_bytes, None)
        self._keys[index].discard(key_bytes)

    def get(self, key: Any, default: Any = None) -> Any:
        """The state of one key, or ``default`` when absent.

        A point read: a miss is answered from the in-memory key index,
        a resident partition is probed directly, and a parked partition
        is *scanned without unparking* — the partition stays on disk
        (metered as ``state.point_reads``).
        """
        key_bytes = canonical_bytes(key)
        index = self.partition_of(key_bytes, key)
        if key_bytes not in self._keys[index]:
            return default
        part = self._partitions[index]
        if part is not None:
            return part[key_bytes][1]
        pending = self._overlay[index].get(key_bytes)
        if pending is not None:
            return pending[1]
        self._meter_point("state.point_reads")
        path = self._path(index)
        if self.filesystem.exists(path):
            for stored_bytes, payload in self.filesystem.read(path):
                if stored_bytes == key_bytes:
                    return pickle.loads(payload)[1]
        return default

    def _meter_point(self, name: str) -> None:
        if self.counters is not None:
            self.counters.increment(self.name, name)
            self.counters.increment("runtime", name)

    def contains(self, key: Any) -> bool:
        """Whether ``key`` is resident (checked against the in-memory
        key index — never loads a parked partition)."""
        key_bytes = canonical_bytes(key)
        return key_bytes in self._keys[self.partition_of(key_bytes, key)]

    def __contains__(self, key: Any) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return sum(len(keys) for keys in self._keys)

    def records(self) -> Iterator[KeyValue]:
        """Every resident ``(key, state)`` in deterministic order.

        Partition-major, canonical-byte-sorted within each partition —
        the same order the reduce side visits keys, so scan-mode map
        splits are reproducible across runs and backends.
        """
        for index in range(self.num_partitions):
            part = self.partition(index)
            for key_bytes in sorted(part):
                yield part[key_bytes]

    # -- out-of-core parking -----------------------------------------------

    def maybe_park(self) -> None:
        """Park every partition on the filesystem if over threshold.

        Called by the runtime after each stateful round; bounds the
        *between-round* memory footprint (during a round the active
        partitions are resident, mirroring the external shuffle's
        correctness-first semantics).
        """
        if self._txn is not None:
            # Mid-transaction parks are deferred to commit so the
            # on-disk image keeps the last committed state (rollback
            # then never needs to touch the filesystem).
            self._park_deferred = True
            return
        if self.spill_threshold is None:
            return
        if len(self) <= self.spill_threshold:
            return
        self.park()

    def park(self) -> None:
        """Unconditionally write in-memory partitions out and drop them."""
        spilled_records = 0
        spill_files = 0
        spilled_bytes = 0
        for index in range(self.num_partitions):
            part = self._partitions[index]
            if part is None:
                if not self._overlay[index]:
                    continue  # already parked and not re-loaded
                # Pending single-key edits: fold them into the parked
                # file (the one unavoidable full-partition pass, paid
                # once per park instead of once per edit).
                part = self.partition(index)
            path = self._path(index)
            if not part:
                if self.filesystem.exists(path):
                    self.filesystem.delete(path)
                self._partitions[index] = {}
                continue
            rows = [
                (key_bytes, pickle.dumps(entry, pickle.HIGHEST_PROTOCOL))
                for key_bytes, entry in sorted(part.items())
            ]
            self.filesystem.write(path, rows, overwrite=True)
            spilled_records += len(rows)
            spill_files += 1
            spilled_bytes += self.filesystem.du(path).bytes
            self._partitions[index] = None
        if self.counters is not None and spill_files:
            for name, value in zip(
                STATE_SPILL_COUNTERS,
                (spilled_records, spill_files, spilled_bytes),
            ):
                self.counters.increment(self.name, name, value)
                self.counters.increment("runtime", name, value)

    def close(self) -> None:
        """Drop all state and delete any parked datasets."""
        for index in range(self.num_partitions):
            self._partitions[index] = {}
            self._keys[index].clear()
            self._overlay[index].clear()
            path = self._path(index)
            if self.filesystem.exists(path):
                self.filesystem.delete(path)

    def __enter__(self) -> "ResidentStateStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidentStateStore(name={self.name!r}, "
            f"partitions={self.num_partitions}, records={len(self)})"
        )
