"""Exception hierarchy for the MapReduce simulator.

All errors raised by :mod:`repro.mapreduce` derive from
:class:`MapReduceError`, so callers can catch simulator failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "MapReduceError",
    "JobValidationError",
    "ExecutorError",
    "DriverError",
    "RoundLimitExceeded",
]


class MapReduceError(Exception):
    """Base class for every error raised by the MapReduce simulator."""


class JobValidationError(MapReduceError):
    """A job or its configuration is structurally invalid.

    Raised, for example, when a job emits a non-iterable from ``map`` or
    when the runtime is constructed with a non-positive number of tasks.
    """


class ExecutorError(MapReduceError):
    """An execution backend failed for infrastructure reasons.

    Raised when a backend cannot run tasks at all — an unknown backend
    name, a broken worker pool, or (for the ``processes`` backend) a job
    whose tasks cannot be pickled.  Errors raised *by* job code keep
    their original type and traverse the backend unchanged.
    """


class DriverError(MapReduceError):
    """An iterative driver could not make progress."""


class RoundLimitExceeded(DriverError):
    """An iterative computation exceeded its configured round budget.

    The randomized algorithms in this package terminate with probability 1
    (and in expectation after a poly-logarithmic number of rounds); hitting
    this error indicates either a pathological seed or a bug, so we fail
    loudly instead of looping forever.
    """

    def __init__(self, name: str, max_rounds: int):
        super().__init__(
            f"{name!r} did not converge within {max_rounds} rounds"
        )
        self.name = name
        self.max_rounds = max_rounds
