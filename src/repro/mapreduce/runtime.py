"""An in-process MapReduce cluster simulator.

This is the substrate substituting for Hadoop in the reproduction (see
DESIGN.md): it enforces the MapReduce programming model strictly —

* the input is split across ``num_map_tasks`` map tasks;
* ``map`` is applied record-by-record with no shared mutable state;
* intermediate pairs are *shuffled*: partitioned by a deterministic hash
  of the key, sorted within each partition, and grouped by key;
* ``reduce`` is applied once per key group per partition.

The simulator meters the quantities the paper reports — number of jobs
executed and records shuffled — through :class:`~repro.mapreduce.counters.
Counters`.  Results are guaranteed to be independent of the number of map
and reduce tasks (property-tested in ``tests/mapreduce``).
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .counters import Counters
from .errors import JobValidationError
from .job import KeyValue, MapReduceJob
from .partitioner import HashPartitioner, canonical_bytes

__all__ = ["MapReduceRuntime"]

Partitioner = Callable[[Any, int], int]


class MapReduceRuntime:
    """Execute :class:`MapReduceJob` instances on an in-process "cluster".

    Parameters
    ----------
    num_map_tasks, num_reduce_tasks:
        Degree of simulated parallelism.  Results never depend on these,
        only the simulated task boundaries do.
    counters:
        Optional shared :class:`Counters`; a fresh one is created if
        omitted.  All jobs run by this runtime meter into it.
    meter_bytes:
        When ``True``, the shuffle additionally meters pickled record
        sizes under ``<job>.shuffle.bytes``.  Off by default because
        serializing every record is slow for multi-million-edge graphs.
    partitioner:
        Shuffle partitioner; defaults to a deterministic hash partitioner.
    speculative_execution:
        When ``True``, every map task is executed twice (as a real
        cluster may do for stragglers or after failures) and the two
        outputs must match exactly.  This catches jobs that violate the
        statelessness contract — the silent-corruption class of bug on
        a real cluster.  Costs 2x map work; intended for tests.
    """

    def __init__(
        self,
        num_map_tasks: int = 4,
        num_reduce_tasks: int = 4,
        counters: Optional[Counters] = None,
        meter_bytes: bool = False,
        partitioner: Optional[Partitioner] = None,
        speculative_execution: bool = False,
    ) -> None:
        if num_map_tasks < 1 or num_reduce_tasks < 1:
            raise JobValidationError("task counts must be positive")
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.counters = counters if counters is not None else Counters()
        self.meter_bytes = meter_bytes
        self.partitioner: Partitioner = partitioner or HashPartitioner()
        self.speculative_execution = speculative_execution
        self.jobs_executed = 0
        self.job_log: List[str] = []

    # -- public API --------------------------------------------------------

    def run(
        self,
        job: MapReduceJob,
        records: Iterable[KeyValue],
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> List[KeyValue]:
        """Run one complete map-shuffle-reduce cycle and return the output.

        ``records`` is the job input as ``(key, value)`` pairs;
        ``side_data`` is installed on the job via
        :meth:`MapReduceJob.configure` before any task runs.
        """
        job.configure(side_data)
        splits = self._split_input(records)
        intermediate = self._run_map_phase(job, splits)
        partitions = self._shuffle(job, intermediate)
        output = self._run_reduce_phase(job, partitions)
        self.jobs_executed += 1
        self.job_log.append(job.name)
        self.counters.increment("runtime", "jobs")
        return output

    # -- phases --------------------------------------------------------------

    def _split_input(
        self, records: Iterable[KeyValue]
    ) -> List[List[KeyValue]]:
        """Distribute input records round-robin across map tasks."""
        splits: List[List[KeyValue]] = [
            [] for _ in range(self.num_map_tasks)
        ]
        for index, record in enumerate(records):
            if not isinstance(record, tuple) or len(record) != 2:
                raise JobValidationError(
                    "input records must be (key, value) pairs, got "
                    f"{record!r}"
                )
            splits[index % self.num_map_tasks].append(record)
        return splits

    def _run_map_phase(
        self, job: MapReduceJob, splits: List[List[KeyValue]]
    ) -> List[List[KeyValue]]:
        """Apply ``job.map`` to every record, one task per split."""
        intermediate: List[List[KeyValue]] = []
        group = job.name
        for split in splits:
            emitted = self._run_map_task(job, split, group)
            if self.speculative_execution:
                speculative = self._run_map_task(
                    job, split, group, meter=False
                )
                if speculative != emitted:
                    raise JobValidationError(
                        f"{job.name}.map is non-deterministic: a "
                        "speculative re-execution of a task produced "
                        "different output (jobs must be stateless and "
                        "derive any randomness from their inputs)"
                    )
            if job.has_combiner and emitted:
                emitted = self._run_combiner(job, emitted)
            self.counters.increment(
                group, "map.output.records", len(emitted)
            )
            intermediate.append(emitted)
        return intermediate

    def _run_map_task(
        self,
        job: MapReduceJob,
        split: List[KeyValue],
        group: str,
        meter: bool = True,
    ) -> List[KeyValue]:
        """Run one map task (one attempt) over its split."""
        emitted: List[KeyValue] = []
        for key, value in split:
            if meter:
                self.counters.increment(group, "map.input.records")
            produced = job.map(key, value)
            if produced is None:
                raise JobValidationError(
                    f"{job.name}.map returned None; return an iterable"
                )
            for pair in produced:
                emitted.append(self._validated_pair(job, pair))
        return emitted

    def _run_combiner(
        self, job: MapReduceJob, emitted: List[KeyValue]
    ) -> List[KeyValue]:
        """Group one map task's output by key and apply ``job.combine``."""
        grouped = _group_sorted(_sorted_by_key(emitted))
        combined: List[KeyValue] = []
        for key, values in grouped:
            for pair in job.combine(key, values):
                combined.append(self._validated_pair(job, pair))
        return combined

    def _shuffle(
        self, job: MapReduceJob, intermediate: List[List[KeyValue]]
    ) -> List[List[KeyValue]]:
        """Partition, meter, and sort the intermediate records."""
        group = job.name
        partitions: List[List[KeyValue]] = [
            [] for _ in range(self.num_reduce_tasks)
        ]
        shuffled = 0
        shuffled_bytes = 0
        for task_output in intermediate:
            for key, value in task_output:
                index = self.partitioner(key, self.num_reduce_tasks)
                if not 0 <= index < self.num_reduce_tasks:
                    raise JobValidationError(
                        f"partitioner returned {index} for "
                        f"{self.num_reduce_tasks} partitions"
                    )
                partitions[index].append((key, value))
                shuffled += 1
                if self.meter_bytes:
                    shuffled_bytes += len(pickle.dumps((key, value)))
        self.counters.increment(group, "shuffle.records", shuffled)
        self.counters.increment("runtime", "shuffle.records", shuffled)
        if self.meter_bytes:
            self.counters.increment(group, "shuffle.bytes", shuffled_bytes)
        return [_sorted_by_key(partition) for partition in partitions]

    def _run_reduce_phase(
        self, job: MapReduceJob, partitions: List[List[KeyValue]]
    ) -> List[KeyValue]:
        """Apply ``job.reduce`` to each key group of each partition."""
        group = job.name
        output: List[KeyValue] = []
        for partition in partitions:
            for key, values in _group_sorted(partition):
                self.counters.increment(group, "reduce.input.groups")
                produced = job.reduce(key, values)
                if produced is None:
                    raise JobValidationError(
                        f"{job.name}.reduce returned None; return an "
                        "iterable"
                    )
                for pair in produced:
                    output.append(self._validated_pair(job, pair))
        self.counters.increment(group, "reduce.output.records", len(output))
        return output

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _validated_pair(job: MapReduceJob, pair: Any) -> KeyValue:
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise JobValidationError(
                f"{job.name} emitted {pair!r}; emit (key, value) tuples"
            )
        return pair

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MapReduceRuntime(map={self.num_map_tasks}, "
            f"reduce={self.num_reduce_tasks}, jobs={self.jobs_executed})"
        )


def _sorted_by_key(records: List[KeyValue]) -> List[KeyValue]:
    """Sort records by the canonical byte order of their keys.

    A canonical encoding (rather than Python's ``<``) keeps the order
    deterministic even for keys of mixed types, mirroring Hadoop's
    byte-wise comparators.  The sort is stable, so values of equal keys
    keep their arrival order.
    """
    return sorted(records, key=lambda kv: canonical_bytes(kv[0]))


def _group_sorted(
    records: List[KeyValue],
) -> Iterable[Tuple[Any, List[Any]]]:
    """Group a key-sorted record list into ``(key, [values])`` runs."""
    run_key: Any = None
    run_bytes: Optional[bytes] = None
    run_values: List[Any] = []
    for key, value in records:
        encoded = canonical_bytes(key)
        if run_bytes is not None and encoded == run_bytes:
            run_values.append(value)
        else:
            if run_bytes is not None:
                yield run_key, run_values
            run_key, run_bytes, run_values = key, encoded, [value]
    if run_bytes is not None:
        yield run_key, run_values
