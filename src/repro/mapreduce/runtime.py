"""An in-process MapReduce cluster simulator with pluggable executors.

This is the substrate substituting for Hadoop in the reproduction (see
DESIGN.md): it enforces the MapReduce programming model strictly —

* the input is split across ``num_map_tasks`` map tasks;
* ``map`` is applied record-by-record with no shared mutable state;
* intermediate pairs are *shuffled*: partitioned by a deterministic hash
  of the key, sorted within each partition, and grouped by key;
* ``reduce`` is applied once per key group per partition.

The simulator meters the quantities the paper reports — number of jobs
executed and records shuffled — through :class:`~repro.mapreduce.counters.
Counters`.  Results are guaranteed to be independent of the number of map
and reduce tasks (property-tested in ``tests/mapreduce``).

Execution model
---------------

The runtime is faithful to MapReduce's *execution* model as well as its
programming model: every phase is decomposed into independent task
units and dispatched through an :class:`~repro.mapreduce.executors.
Executor` (``backend="serial" | "threads" | "processes" |
"cluster"`` — the last a real localhost worker fleet over TCP, see
:mod:`repro.mapreduce.cluster`).

* A **map task** is one unit of work: it applies ``job.map`` to every
  record of its split, optionally re-executes itself speculatively and
  compares the attempts (the statelessness check a real cluster's
  task retries would perform), applies the combiner to its own output,
  and meters into a *task-local* :class:`Counters`.
* The **shuffle** routes each intermediate record to its reduce
  partition with the deterministic hash partitioner (pure data
  movement, performed by the driver).
* A **reduce task** is one unit of work per partition: it sorts its
  partition by the canonical key order (unless the external shuffle
  already merge-sorted it), groups, applies ``job.reduce`` to each
  group, and meters into a task-local :class:`Counters`.

The encoded shuffle plane
-------------------------

Everything between ``job.map`` emitting a pair and ``job.reduce``
receiving a key group flows as an *encoded record* — the triple
``(key_bytes, key, value)`` where ``key_bytes = canonical_bytes(key)``
is computed **exactly once**, at emit time.  Partitioning hashes the
cached bytes (:meth:`~repro.mapreduce.partitioner.HashPartitioner.
partition_bytes`, a CRC-based hash far cheaper than the per-record MD5
it replaced), the combiner and reduce-side sort/group compare the
cached bytes, and the external shuffle spills and k-way merges them
byte-first — no stage re-encodes.  The one-encode-per-record invariant
is asserted by a counting-codec test in
``tests/mapreduce/test_encoded_plane.py``.

Storage model
-------------

Storage is pluggable alongside compute (see :mod:`repro.mapreduce.
storage`): ``storage="memory" | "disk"`` (or any
:class:`~repro.mapreduce.storage.FileSystem`) selects where inter-job
datasets live — :class:`~repro.mapreduce.pipeline.Pipeline` wires its
stages through the runtime's filesystem — and ``spill_threshold``
bounds the driver-side shuffle: when set, map outputs accumulate in
per-partition buffers that sort-and-spill to disk runs past the
threshold and are k-way merged at reduce time
(:class:`~repro.mapreduce.storage.ExternalShuffle`), metering
``spilled_records``/``spill_files``/``spilled_bytes``.  Because the
spill path delivers each partition already merge-sorted, the reduce
tasks skip their sort; on the serial and threads backends they consume
the merged runs as a lazy stream, never re-materializing the partition
driver-side.

Profiling
---------

Per-phase wall-clock accumulates in the runtime's
:class:`~repro.telemetry.metrics.MetricsRegistry` as ``runtime``
gauges (``phase.map_seconds`` etc.), still readable as a plain dict
via :attr:`MapReduceRuntime.phase_timings` (``map`` / ``shuffle`` /
``reduce`` / ``spill`` seconds, across all jobs run by the instance).
Timings are a diagnostic meter — gauges (and the volatile per-job
timing histograms alongside them) are deliberately kept out of
:class:`Counters`, whose totals are part of the bit-identical
determinism contract; :func:`~repro.mapreduce.state.
strip_volatile_counters` drops them from registry snapshots.  The CLI
surfaces them via ``repro join/match/serve --profile``.

Alongside the counters, the registry carries *deterministic*
histograms of data-dependent per-task quantities (map/reduce output
records per task), observed driver-side in task-index order — their
bucket totals join the bit-identical contract.  Attaching a
:class:`~repro.telemetry.trace.Tracer` (the ``tracer`` argument, or
``--trace`` on the CLI) additionally records a ``job → phase → task``
span tree, with per-task wall-clock measured inside the task wrapper
so the same spans come back from every backend.

Determinism contract: the runtime collects task results and merges
task-local counters *in task-index order*, so outputs, ``job_log``, and
counter totals are bit-identical across backends and worker counts
(property-tested in ``tests/mapreduce/test_executors.py``) — and, minus
the spill counters, across filesystems and spill thresholds
(property-tested in ``tests/mapreduce/test_storage_spill.py``).
Because tasks may execute in separate processes, jobs must be
stateless and — for the ``processes`` backend — picklable together
with their side data and records.
"""

from __future__ import annotations

import pickle
import time
from contextlib import nullcontext
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..telemetry.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    TIMING_BUCKETS,
)
from .counters import Counters
from .errors import JobValidationError
from .executors import Executor, resolve_executor
from .faults import (
    FAULT_COUNTER_GROUP,
    FaultPlan,
    FaultyFileSystem,
    RetryPolicy,
    RetryingFileSystem,
    fired_specs,
    resilient_task_call,
)
from .job import KeyValue, MapReduceJob
from .partitioner import HashPartitioner, canonical_bytes, fast_hash_bytes
from .state import Quiet, ResidentStateStore, Retired
from .storage import ExternalShuffle, FileSystem, resolve_filesystem

__all__ = ["MapReduceRuntime"]

Partitioner = Callable[[Any, int], int]

#: One record on the encoded shuffle plane: the canonical key encoding
#: (computed once, at map-emit time), the key, and the value.
EncodedRecord = Tuple[bytes, Any, Any]

#: Sort/group key of the encoded plane: the cached canonical bytes.
_record_key_bytes = itemgetter(0)


def _custom_partition_bytes(partitioner: Any):
    """The byte-level entry point of a custom partitioner, or ``None``.

    Only honored when the partitioner's own class *defines*
    ``partition_bytes`` — merely inheriting :class:`HashPartitioner`'s
    must not bypass an overridden ``__call__``.  Shared by the shuffle
    and the resident state store so both route identically.
    """
    if any(
        "partition_bytes" in cls.__dict__
        for cls in type(partitioner).__mro__
        if cls is not HashPartitioner
    ):
        return partitioner.partition_bytes
    return None


class MapReduceRuntime:
    """Execute :class:`MapReduceJob` instances on an in-process "cluster".

    Parameters
    ----------
    num_map_tasks, num_reduce_tasks:
        Degree of simulated parallelism.  Results never depend on these,
        only the task boundaries do.
    counters:
        Optional shared :class:`Counters`; a fresh one is created if
        omitted.  All jobs run by this runtime meter into it.
    meter_bytes:
        When ``True``, the shuffle additionally meters record sizes
        under ``<job>.shuffle.bytes`` — the cached canonical key bytes
        plus the pickled value.  Off by default because serializing
        every value is slow for multi-million-edge graphs.  (The key
        side, ``shuffle.encoded_bytes``, is metered unconditionally:
        the encoding already exists, so its size is a free ``len``.)
    partitioner:
        Shuffle partitioner; defaults to a deterministic hash
        partitioner.  A partitioner whose class defines
        ``partition_bytes(key_bytes, num_partitions)`` is fed the
        cached canonical encoding; a plain ``(key, num_partitions)``
        callable receives the key itself.  (Subclassing
        :class:`HashPartitioner` and overriding only ``__call__``
        routes through the override — the inherited byte-level entry
        point never bypasses it.)
    speculative_execution:
        When ``True``, every map task is executed twice (as a real
        cluster may do for stragglers or after failures) and the two
        outputs must match exactly.  This catches jobs that violate the
        statelessness contract — the silent-corruption class of bug on
        a real cluster.  Costs 2x map work; intended for tests.
    backend:
        Execution backend for map and reduce tasks: ``"serial"``
        (default), ``"threads"``, ``"processes"``, ``"cluster"``
        (worker daemon processes over localhost TCP sockets), or any
        :class:`~repro.mapreduce.executors.Executor` instance.  Results
        and counters are bit-identical across backends.
    max_workers:
        Worker-pool size for the parallel backends; ignored by
        ``"serial"`` and by pre-built executor instances.
    storage:
        Storage backend for inter-job datasets: ``"memory"``
        (default), ``"disk"``, or any :class:`~repro.mapreduce.storage.
        FileSystem` instance.  :class:`~repro.mapreduce.pipeline.
        Pipeline` defaults to this runtime's filesystem.  Results are
        bit-identical across storage backends.
    spill_threshold:
        When set, the shuffle becomes *external*: each reduce
        partition's map outputs accumulate in a bounded buffer that is
        sorted and spilled to a disk run once it holds more than this
        many records (``0`` spills every record), and runs are k-way
        merged at reduce time.  ``None`` (default) keeps the entire
        shuffle in memory.  Outputs are bit-identical across
        thresholds; only the spill counters differ.
    spill_dir:
        Parent directory for spill runs (default: the system temporary
        directory).
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`.  When set,
        every job records a ``job → phase → task`` span tree (per-task
        wall-clock measured inside the picklable task wrapper, so all
        backends report comparably).  ``None`` (default) keeps the
        instrumentation sites zero-cost.
    retry_policy:
        Optional :class:`~repro.mapreduce.faults.RetryPolicy`.  With
        ``max_attempts > 1``, failed task attempts re-execute (the
        failed attempt's counters are discarded whole, so totals stay
        bit-identical) and transient storage errors are retried
        driver-side; with ``task_timeout`` set and a parallel backend,
        straggling tasks get a speculative backup attempt and the
        first finisher wins.  Recovery activity is metered under the
        volatile ``faults`` counter group.
    fault_plan:
        Optional :class:`~repro.mapreduce.faults.FaultPlan` injecting
        seeded, deterministic task crashes / straggler delays /
        transient storage errors into this runtime — chaos testing
        for the retry machinery.  Pair with a ``retry_policy`` whose
        budget covers the plan, or jobs fail as the plan dictates.
    """

    def __init__(
        self,
        num_map_tasks: int = 4,
        num_reduce_tasks: int = 4,
        counters: Optional[Counters] = None,
        meter_bytes: bool = False,
        partitioner: Optional[Partitioner] = None,
        speculative_execution: bool = False,
        backend: Any = "serial",
        max_workers: Optional[int] = None,
        storage: Any = None,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
        tracer: Any = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if num_map_tasks < 1 or num_reduce_tasks < 1:
            raise JobValidationError("task counts must be positive")
        if spill_threshold is not None and spill_threshold < 0:
            raise JobValidationError(
                f"spill_threshold must be >= 0 or None, got "
                f"{spill_threshold}"
            )
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.counters = counters if counters is not None else Counters()
        self.meter_bytes = meter_bytes
        self.partitioner: Partitioner = partitioner or HashPartitioner()
        self.speculative_execution = speculative_execution
        self.executor: Executor = resolve_executor(
            backend, max_workers=max_workers
        )
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        filesystem: FileSystem = resolve_filesystem(storage)
        if fault_plan is not None and fault_plan.io_rate > 0:
            filesystem = FaultyFileSystem(
                filesystem, fault_plan, counters=self.counters
            )
        if retry_policy is not None and retry_policy.max_attempts > 1:
            filesystem = RetryingFileSystem(
                filesystem, retry_policy, counters=self.counters
            )
        self.filesystem: FileSystem = filesystem
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir
        self.jobs_executed = 0
        self.job_log: List[str] = []
        self._state_store_sequence = 0
        #: The unified metrics registry: wraps this runtime's counters
        #: (same instance — every counter contract carries over) and
        #: adds gauges for phase wall-clock plus histograms for
        #: per-task record distributions.
        self.metrics = MetricsRegistry(counters=self.counters)
        #: Optional :class:`~repro.telemetry.trace.Tracer`; ``None``
        #: (the default) keeps every instrumentation site zero-cost.
        self.tracer = tracer

    _PHASES = ("map", "shuffle", "reduce", "spill")

    @property
    def phase_timings(self) -> Dict[str, float]:
        """Accumulated wall-clock seconds per phase across every job
        this runtime has run, as a plain dict.

        A read-only view over the registry's ``runtime`` gauges
        (``phase.<name>_seconds``) — the gauges are the source of
        truth, so any holder of the registry (the serving layer's
        cumulative ``--profile``, the metrics endpoint) sees the same
        accumulation.  A diagnostic meter; never part of the counter
        determinism contract.
        """
        return {
            phase: self.metrics.gauge(
                "runtime", f"phase.{phase}_seconds"
            ).value
            for phase in self._PHASES
        }

    def _meter_phase(self, phase: str, seconds: float) -> None:
        """Accumulate one job's phase wall-clock: cumulative gauge plus
        a volatile per-job timing distribution."""
        self.metrics.gauge("runtime", f"phase.{phase}_seconds").add(
            seconds
        )
        self.metrics.observe(
            "runtime",
            f"phase.{phase}_seconds_dist",
            seconds,
            TIMING_BUCKETS,
            volatile=True,
        )

    def _span(self, name: str, kind: str, **attrs: Any):
        """A tracer span when tracing is on, else a no-op context."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, kind=kind, **attrs)

    def _run_tasks(
        self,
        fn: Callable,
        tasks: List[Tuple],
        label: str,
        job: Optional[MapReduceJob] = None,
    ) -> List[Any]:
        """Dispatch task units, recording per-task spans when tracing.

        The timing wrapper runs *inside* the task (picklable, so the
        processes backend measures the same way), and leaf spans are
        recorded driver-side in task-index order under whichever span
        is currently open.

        This is also the recovery choke point.  With a
        :class:`RetryPolicy`, every task is wrapped in
        :func:`~repro.mapreduce.faults.resilient_task_call` (retries
        stay inside the worker, so the backend sees one submission per
        task) and a ``task_timeout`` routes the batch through the
        executor's speculative path; with a :class:`FaultPlan`, the
        wrapper also fires the scheduled crashes and delays.  Failed
        attempts never return their counters, so the merged totals are
        bit-identical with the fault-free run; recovery activity lands
        in the volatile ``faults`` group.
        """
        policy = self.retry_policy
        plan = self.fault_plan
        max_attempts = policy.max_attempts if policy is not None else 1
        backoff = policy.backoff if policy is not None else 0.0
        if plan is not None and plan.has_task_faults:
            job_name = job.name if job is not None else label
            wrapped: List[Tuple] = []
            for index, task in enumerate(tasks):
                specs = plan.task_faults(
                    job_name, label, index, max_attempts
                )
                for spec in fired_specs(specs):
                    self.counters.increment(
                        FAULT_COUNTER_GROUP, f"injected_{spec.kind}"
                    )
                    self.counters.increment(
                        FAULT_COUNTER_GROUP, "injected_total"
                    )
                wrapped.append(
                    (max_attempts, backoff, specs, fn) + tuple(task)
                )
            fn, tasks = resilient_task_call, wrapped
        elif max_attempts > 1:
            # No scheduled faults, but real transient errors (OSError
            # from a flaky disk, say) still get the retry budget.
            tasks = [
                (max_attempts, backoff, (), fn) + tuple(task)
                for task in tasks
            ]
            fn = resilient_task_call
        executor = self.executor
        respawns_before = getattr(executor, "pool_respawns", 0)
        resubmits_before = getattr(executor, "resubmitted_tasks", 0)
        tracer = self.tracer
        if tracer is not None:
            # Timing composes outside the retry wrapper: a task's span
            # covers all its attempts, which is what straggler-hunting
            # traces should see.
            fn, tasks = _timed_call, [
                (fn,) + tuple(task) for task in tasks
            ]
        timeout = policy.task_timeout if policy is not None else None
        if timeout is not None:
            raw, wins = executor.run_tasks_speculative(
                fn, tasks, timeout
            )
            if wins:
                self.counters.increment(
                    FAULT_COUNTER_GROUP, "task.speculative_wins", wins
                )
        else:
            raw = executor.run_tasks(fn, tasks)
        respawned = (
            getattr(executor, "pool_respawns", 0) - respawns_before
        )
        resubmitted = (
            getattr(executor, "resubmitted_tasks", 0) - resubmits_before
        )
        if respawned:
            self.counters.increment(
                FAULT_COUNTER_GROUP, "pool.respawns", respawned
            )
        if resubmitted:
            self.counters.increment(
                FAULT_COUNTER_GROUP, "task.resubmits", resubmitted
            )
        # Executors with fleet-level health (the cluster backend's
        # per-worker task counts, respawns, queue depth) export it as
        # volatile gauges after each dispatch; the duck-typed hook
        # keeps the runtime backend-agnostic.
        publish = getattr(executor, "publish_metrics", None)
        if publish is not None:
            publish(self.metrics)
        if tracer is None:
            return raw
        # Worker attribution (which fleet slot produced each accepted
        # result) rides on the task spans when the backend reports it.
        workers = getattr(executor, "last_task_workers", None) or ()
        results: List[Any] = []
        for index, (seconds, result) in enumerate(raw):
            attrs: Dict[str, Any] = {}
            if index < len(workers) and workers[index] is not None:
                attrs["worker"] = workers[index]
            tracer.record(
                f"{label}-{index}", kind="task", seconds=seconds, **attrs
            )
            results.append(result)
        return results

    @property
    def backend(self) -> str:
        """Canonical name of the active execution backend."""
        return self.executor.name

    @property
    def storage(self) -> str:
        """Canonical name of the active storage backend."""
        return self.filesystem.name

    # -- public API --------------------------------------------------------

    def run(
        self,
        job: MapReduceJob,
        records: Iterable[KeyValue],
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> List[KeyValue]:
        """Run one complete map-shuffle-reduce cycle and return the output.

        ``records`` is the job input as ``(key, value)`` pairs;
        ``side_data`` is installed on the job via
        :meth:`MapReduceJob.configure` before any task runs.
        """
        return list(self.run_iter(job, records, side_data=side_data))

    def run_iter(
        self,
        job: MapReduceJob,
        records: Iterable[KeyValue],
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> Iterator[KeyValue]:
        """Like :meth:`run`, streaming the output task by task.

        The whole job executes eagerly (every reduce task has finished,
        counters are merged in task-index order, and the job is logged
        before this returns), but the output records are *yielded* from
        the per-task result lists instead of being concatenated into
        one driver-side list — each task's output is released as soon
        as it is consumed.  :class:`~repro.mapreduce.pipeline.Pipeline`
        streams this straight into ``filesystem.write``, so a stage's
        output never exists twice driver-side.
        """
        job.configure(side_data)
        splits = self._split_input(records)
        spiller = self._make_spiller()
        with self._span(f"job:{job.name}", kind="job"):
            try:
                partitions = self._map_and_shuffle(job, splits, spiller)
                started = time.perf_counter()
                with self._span(
                    "phase:reduce", kind="phase", tasks=len(partitions)
                ):
                    # The external shuffle hands each partition over
                    # already merge-sorted, so the reduce tasks skip
                    # their sort.
                    results = self._run_tasks(
                        _execute_reduce_task,
                        [
                            (job, partition, spiller is not None)
                            for partition in partitions
                        ],
                        label="reduce",
                        job=job,
                    )
                self._meter_phase(
                    "reduce", time.perf_counter() - started
                )
            finally:
                self._close_spiller(spiller)
            reduce_hist = self.metrics.histogram(
                "runtime", "task.reduce_output_records", COUNT_BUCKETS
            )
            for task_output, task_counters in results:
                self.counters.merge(task_counters)
                reduce_hist.observe(len(task_output))
            self._finish_job(job)

        def stream() -> Iterator[KeyValue]:
            for index in range(len(results)):
                task_output, _ = results[index]
                results[index] = None  # release as consumed
                yield from task_output

        return stream()

    # -- the delta iteration plane ----------------------------------------

    def state_store(self, name: str) -> ResidentStateStore:
        """A resident state store aligned with this runtime's shuffle.

        Partition count, filesystem, spill threshold, and — crucially —
        the partition routing all follow the runtime's own
        configuration, so the store's partition ``i`` holds exactly the
        keys reduce partition ``i`` can address (a custom shuffle
        partitioner is honored record for record) and parks out-of-core
        on the same ``--fs`` backend the shuffle spills to.
        """
        self._state_store_sequence += 1
        return ResidentStateStore(
            name=f"{name}-{self._state_store_sequence:03d}",
            num_partitions=self.num_reduce_tasks,
            filesystem=self.filesystem,
            spill_threshold=self.spill_threshold,
            counters=self.counters,
            router=self._partition_router(),
        )

    def _partition_router(self):
        """A ``(key_bytes, key, n) -> index`` mirror of the shuffle's
        routing, or ``None`` for the fully inlined default."""
        if type(self.partitioner) is HashPartitioner:
            return None
        partition_bytes = _custom_partition_bytes(self.partitioner)
        if partition_bytes is not None:
            return lambda key_bytes, key, n: partition_bytes(
                key_bytes, n
            )
        partitioner = self.partitioner

        def route(key_bytes: bytes, key: Any, n: int) -> int:
            index = partitioner(key, n)
            if not 0 <= index < n:
                raise JobValidationError(
                    f"partitioner returned {index} for {n} partitions"
                )
            return index

        return route

    def run_stateful(
        self,
        job: MapReduceJob,
        store: ResidentStateStore,
        deltas: Optional[List[KeyValue]] = None,
        scan: bool = False,
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[List[KeyValue], List[KeyValue]]:
        """Run one *resident-state* round and return ``(outputs, deltas)``.

        The stateful variant of :meth:`run`: node records stay in
        ``store`` (partitioned by the same hash of the canonical key
        bytes the shuffle uses) instead of flowing through the job, and
        only the job's lightweight messages are shuffled.  On the
        reduce side each task joins its message groups against its
        state partition by cached key bytes and reports only *changed*
        records back; the runtime applies them to the store and returns
        them as the round's delta stream — an empty stream means the
        iteration has converged.

        Two modes:

        * ``scan=True`` — *resident scan*: the map phase iterates every
          resident record (``job.map_resident``), and the reduce visits
          the byte-sorted union of resident keys and message groups, so
          every record re-evaluates exactly as it would on the
          full-state path — minus the state records in the shuffle.
        * ``scan=False`` — *frontier*: the map phase covers only
          ``deltas`` (``job.map_delta``) — last round's changed records
          plus :class:`~repro.mapreduce.state.Retired` notices — and
          the reduce visits only keys that received messages.  The
          job's protocol must guarantee quiescent keys cannot change.

        Rounds meter ``iteration.resident_records`` (records resident
        at round start), ``iteration.delta_records`` (changed records
        emitted), and ``iteration.quiescent_records`` (resident records
        untouched by the round) into the job's counter group and the
        global ``runtime`` group.
        """
        if store.num_partitions != self.num_reduce_tasks:
            raise JobValidationError(
                f"state store has {store.num_partitions} partitions "
                f"but the runtime runs {self.num_reduce_tasks} reduce "
                "tasks; create stores via MapReduceRuntime.state_store"
            )
        job.configure(side_data)
        records: Iterable[KeyValue]
        records = store.records() if scan else (deltas or [])
        splits = self._split_input(records)
        resident_before = len(store)
        spiller = self._make_spiller()
        with self._span(
            f"job:{job.name}",
            kind="job",
            mode="scan" if scan else "frontier",
        ):
            try:
                partitions = self._map_and_shuffle(
                    job, splits, spiller, scan=scan
                )
                started = time.perf_counter()
                # Frontier rounds touch only the partitions that
                # received messages: a message-less partition has no
                # groups to visit, so its state partition is never
                # loaded (a parked one stays parked on disk) and no
                # task is dispatched.  Scan rounds dispatch every
                # partition; on the spill path the spiller's routing
                # counts stand in for the lazy partition streams,
                # which cannot be emptiness-tested.  Which partitions
                # carry messages is decided by the deterministic
                # partitioner, so the skip is identical across
                # backends, filesystems, and spill thresholds.
                def has_messages(index: int) -> bool:
                    if spiller is not None:
                        return spiller.partition_records[index] > 0
                    return bool(partitions[index])

                tasks = [
                    (
                        job,
                        partitions[index],
                        store.partition(index),
                        spiller is not None,
                        scan,
                    )
                    for index in range(self.num_reduce_tasks)
                    if scan or has_messages(index)
                ]
                with self._span(
                    "phase:reduce", kind="phase", tasks=len(tasks)
                ):
                    results = self._run_tasks(
                        _execute_stateful_reduce_task,
                        tasks,
                        label="reduce",
                        job=job,
                    )
                self._meter_phase(
                    "reduce", time.perf_counter() - started
                )
            finally:
                self._close_spiller(spiller)
            output: List[KeyValue] = []
            updates: List[Tuple[bytes, Any, Any]] = []
            reduce_hist = self.metrics.histogram(
                "runtime", "task.reduce_output_records", COUNT_BUCKETS
            )
            for task_output, task_updates, task_counters in results:
                self.counters.merge(task_counters)
                reduce_hist.observe(len(task_output))
                output.extend(task_output)
                updates.extend(task_updates)
            next_deltas, changed = self._apply_updates(store, updates)
            store.maybe_park()
            group = job.name
            for target in (group, "runtime"):
                self.counters.increment(
                    target, "iteration.resident_records", resident_before
                )
                self.counters.increment(
                    target, "iteration.delta_records", changed
                )
                self.counters.increment(
                    target,
                    "iteration.quiescent_records",
                    max(0, resident_before - changed),
                )
            self._finish_job(job)
        return output, next_deltas

    # -- shared job scaffolding --------------------------------------------
    #
    # run() and run_stateful() share the front half (timed map +
    # shuffle through an optional external spiller) and the tail
    # (job accounting); keeping them here keeps the two paths'
    # metering identical by construction.

    def _make_spiller(self) -> Optional[ExternalShuffle]:
        if self.spill_threshold is None:
            return None
        return ExternalShuffle(
            self.num_reduce_tasks,
            self.spill_threshold,
            spill_dir=self.spill_dir,
        )

    def _close_spiller(self, spiller: Optional[ExternalShuffle]) -> None:
        if spiller is not None:
            self._meter_phase("spill", spiller.spill_seconds)
            spiller.close()

    def _map_and_shuffle(
        self,
        job: MapReduceJob,
        splits: List[List[KeyValue]],
        spiller: Optional[ExternalShuffle],
        scan: Optional[bool] = None,
    ) -> List[Any]:
        """The timed map phase followed by the timed shuffle."""
        started = time.perf_counter()
        with self._span("phase:map", kind="phase", tasks=len(splits)):
            intermediate = self._run_map_phase(job, splits, scan=scan)
        self._meter_phase("map", time.perf_counter() - started)
        started = time.perf_counter()
        with self._span("phase:shuffle", kind="phase"):
            partitions = self._shuffle(job, intermediate, spiller)
        self._meter_phase("shuffle", time.perf_counter() - started)
        return partitions

    def _finish_job(self, job: MapReduceJob) -> None:
        self.jobs_executed += 1
        self.job_log.append(job.name)
        self.counters.increment("runtime", "jobs")

    @staticmethod
    def _apply_updates(
        store: ResidentStateStore,
        updates: List[Tuple[bytes, Any, Any]],
    ) -> Tuple[List[KeyValue], int]:
        """Apply one round's state updates; return ``(deltas, changed)``.

        Changed records become ``(key, new_state)`` deltas in reduce
        order.  :class:`Quiet` updates are stored without becoming
        deltas (and without counting as changed).  :class:`Retired`
        records are deleted; their ``notify`` lists are pruned against
        the *post-round* store (a peer that left in the same round
        needs no notice) and re-emitted only when a surviving peer
        remains — this pruning is what keeps the delta path's round
        count identical to the full-state path's.
        """
        retirements: List[Tuple[Any, Retired]] = []
        next_deltas: List[KeyValue] = []
        changed = 0
        for key_bytes, key, new_state in updates:
            if isinstance(new_state, Retired):
                store.discard(key_bytes, key)
                changed += 1
                if new_state.notify:
                    retirements.append((key, new_state))
            elif isinstance(new_state, Quiet):
                store.put(key_bytes, key, new_state.state)
            else:
                store.put(key_bytes, key, new_state)
                changed += 1
                next_deltas.append((key, new_state))
        for key, retired in retirements:
            survivors = tuple(
                peer for peer in retired.notify if store.contains(peer)
            )
            if survivors:
                next_deltas.append((key, Retired(survivors)))
        return next_deltas, changed

    # -- phases --------------------------------------------------------------

    def _split_input(
        self, records: Iterable[KeyValue]
    ) -> List[List[KeyValue]]:
        """Distribute input records round-robin across map tasks."""
        splits: List[List[KeyValue]] = [
            [] for _ in range(self.num_map_tasks)
        ]
        for index, record in enumerate(records):
            if not isinstance(record, tuple) or len(record) != 2:
                raise JobValidationError(
                    "input records must be (key, value) pairs, got "
                    f"{record!r}"
                )
            splits[index % self.num_map_tasks].append(record)
        return splits

    def _run_map_phase(
        self,
        job: MapReduceJob,
        splits: List[List[KeyValue]],
        scan: Optional[bool] = None,
    ) -> List[List[EncodedRecord]]:
        """Dispatch one map task per split through the executor.

        ``scan=None`` runs the plain ``job.map``; ``True``/``False``
        select the stateful plane's ``map_resident``/``map_delta``.
        """
        results = self._run_tasks(
            _execute_map_task,
            [
                (job, split, self.speculative_execution, scan)
                for split in splits
            ],
            label="map",
            job=job,
        )
        map_hist = self.metrics.histogram(
            "runtime", "task.map_output_records", COUNT_BUCKETS
        )
        intermediate: List[List[EncodedRecord]] = []
        for emitted, task_counters in results:
            self.counters.merge(task_counters)
            map_hist.observe(len(emitted))
            intermediate.append(emitted)
        return intermediate

    def _shuffle(
        self,
        job: MapReduceJob,
        intermediate: List[List[EncodedRecord]],
        spiller: Optional[ExternalShuffle],
    ) -> List[Any]:
        """Partition and meter the intermediate records.

        With ``spill_threshold=None`` every partition stays in memory
        in arrival order and sorting happens inside each reduce task
        (the task unit owns its partition's sort, as a real cluster's
        reducer-side merge does).  With a threshold, records route
        through the :class:`ExternalShuffle` — bounded buffers that
        sort-and-spill to disk runs and k-way merge per partition.
        Both paths hand each reduce task the same multiset of records
        with equal keys in the same arrival order, so reduce outputs
        are bit-identical either way.

        Routing reuses each record's cached key bytes: the default
        partitioner hashes them directly via ``partition_bytes``, and
        byte metering measures them with ``len`` instead of re-pickling
        the key.
        """
        group = job.name
        partitions: List[Any] = [
            [] for _ in range(self.num_reduce_tasks)
        ]
        num_partitions = self.num_reduce_tasks
        # The default partitioner gets a fully inlined hash-and-mod
        # (the modulo proves the range, so no per-record validation).
        # A custom partitioner routes through its byte-level entry
        # point only when its own class *defines* partition_bytes —
        # merely inheriting HashPartitioner's must not bypass an
        # overridden __call__ — and otherwise receives the key itself.
        default_partitioner = type(self.partitioner) is HashPartitioner
        partition_bytes = None
        if not default_partitioner:
            partition_bytes = _custom_partition_bytes(self.partitioner)
        shuffled = 0
        encoded_bytes = 0
        shuffled_bytes = 0
        for task_index, task_output in enumerate(intermediate):
            for record in task_output:
                key_bytes = record[0]
                if default_partitioner:
                    index = fast_hash_bytes(key_bytes) % num_partitions
                else:
                    if partition_bytes is not None:
                        index = partition_bytes(
                            key_bytes, num_partitions
                        )
                    else:
                        index = self.partitioner(
                            record[1], num_partitions
                        )
                    if not 0 <= index < num_partitions:
                        raise JobValidationError(
                            f"partitioner returned {index} for "
                            f"{num_partitions} partitions"
                        )
                if spiller is not None:
                    spiller.add(index, record)
                else:
                    partitions[index].append(record)
                shuffled += 1
                encoded_bytes += len(key_bytes)
                if self.meter_bytes:
                    shuffled_bytes += len(key_bytes) + len(
                        pickle.dumps(record[2], pickle.HIGHEST_PROTOCOL)
                    )
            if spiller is not None:
                # These records now live in the spiller's bounded
                # buffers or on-disk runs; drop the driver's copy so
                # routing never holds the shuffle twice.
                intermediate[task_index] = []
        if spiller is not None:
            if self.executor.picklable_tasks:
                # Task arguments cross a process boundary: materialize.
                partitions = [
                    spiller.merged_partition(index)
                    for index in range(num_partitions)
                ]
            else:
                # Shared-memory executors consume the merged runs
                # lazily — the partition is never re-materialized
                # driver-side.  (Run files live until after reduce;
                # ``run`` closes the spiller in its ``finally``.)
                partitions = [
                    spiller.merged_stream(index)
                    for index in range(num_partitions)
                ]
            spiller.meter(self.counters, group)
        self.counters.increment(group, "shuffle.records", shuffled)
        self.counters.increment("runtime", "shuffle.records", shuffled)
        self.counters.increment(
            group, "shuffle.encoded_bytes", encoded_bytes
        )
        self.counters.increment(
            "runtime", "shuffle.encoded_bytes", encoded_bytes
        )
        if self.meter_bytes:
            self.counters.increment(group, "shuffle.bytes", shuffled_bytes)
        return partitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MapReduceRuntime(map={self.num_map_tasks}, "
            f"reduce={self.num_reduce_tasks}, "
            f"backend={self.backend!r}, storage={self.storage!r}, "
            f"spill_threshold={self.spill_threshold}, "
            f"jobs={self.jobs_executed})"
        )


# -- task units of work ------------------------------------------------------
#
# Module-level functions (not methods) so the processes backend can
# pickle them by reference.  Each returns ``(records, Counters)``; the
# runtime merges the counters in task-index order.


def _timed_call(fn: Callable, *args: Any) -> Tuple[float, Any]:
    """Run a task unit and measure its wall-clock inside the worker.

    Used only when a tracer is attached: measuring inside the (still
    picklable) wrapper means serial, thread, and process backends all
    report the task's own execution time, not dispatch overhead.
    """
    started = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - started, result


def _execute_map_task(
    job: MapReduceJob,
    split: List[KeyValue],
    speculative: bool,
    scan: Optional[bool] = None,
) -> Tuple[List[EncodedRecord], Counters]:
    """One map task: map every record, verify retries, combine, meter.

    ``scan`` selects the map function: ``None`` for the plain
    ``job.map``, ``True`` for the stateful plane's ``map_resident``,
    ``False`` for its ``map_delta``.
    """
    counters = Counters()
    group = job.name
    emitted = _attempt_map(job, split, group, counters, scan)
    if speculative:
        retry = _attempt_map(job, split, group, None, scan)
        if retry != emitted:
            raise JobValidationError(
                f"{job.name}.map is non-deterministic: a "
                "speculative re-execution of a task produced "
                "different output (jobs must be stateless and "
                "derive any randomness from their inputs)"
            )
    if job.has_combiner and emitted:
        emitted = _apply_combiner(job, emitted)
    counters.increment(group, "map.output.records", len(emitted))
    return emitted, counters


def _attempt_map(
    job: MapReduceJob,
    split: List[KeyValue],
    group: str,
    counters: Optional[Counters],
    scan: Optional[bool] = None,
) -> List[EncodedRecord]:
    """Run one attempt of a map task (``counters=None`` for retries).

    This is where intermediate records enter the encoded plane: each
    emitted pair is validated and its key canonically encoded — the one
    and only ``canonical_bytes`` call that record will ever see.
    """
    if scan is None:
        mapper = job.map
    else:
        mapper = job.map_resident if scan else job.map_delta
    emitted: List[EncodedRecord] = []
    if counters is not None and split:
        counters.increment(group, "map.input.records", len(split))
    for key, value in split:
        produced = mapper(key, value)
        if produced is None:
            raise JobValidationError(
                f"{job.name}.map returned None; return an iterable"
            )
        for pair in produced:
            if type(pair) is not tuple or len(pair) != 2:
                _validated_pair(job, pair)
            out_key, out_value = pair
            emitted.append(
                (canonical_bytes(out_key), out_key, out_value)
            )
    return emitted


def _apply_combiner(
    job: MapReduceJob, emitted: List[EncodedRecord]
) -> List[EncodedRecord]:
    """Group one map task's output by key and apply ``job.combine``.

    Sorting and grouping compare the cached key bytes; only the
    combiner's *output* records — new intermediate records — are
    encoded, once each, as they enter the plane.
    """
    emitted.sort(key=_record_key_bytes)  # stable: arrival order kept
    combined: List[EncodedRecord] = []
    for key, values in _group_encoded(emitted):
        for pair in job.combine(key, values):
            if type(pair) is not tuple or len(pair) != 2:
                _validated_pair(job, pair)
            out_key, out_value = pair
            combined.append(
                (canonical_bytes(out_key), out_key, out_value)
            )
    return combined


def _execute_reduce_task(
    job: MapReduceJob,
    partition: Iterable[EncodedRecord],
    presorted: bool,
) -> Tuple[List[KeyValue], Counters]:
    """One reduce task: sort its partition (unless the external shuffle
    already merge-sorted it), group, reduce, meter."""
    counters = Counters()
    group = job.name
    if not presorted:
        partition = sorted(partition, key=_record_key_bytes)
    output: List[KeyValue] = []
    groups = 0
    for key, values in _group_encoded(partition):
        groups += 1
        produced = job.reduce(key, values)
        if produced is None:
            raise JobValidationError(
                f"{job.name}.reduce returned None; return an "
                "iterable"
            )
        for pair in produced:
            if type(pair) is not tuple or len(pair) != 2:
                _validated_pair(job, pair)
            output.append(pair)
    if groups:
        counters.increment(group, "reduce.input.groups", groups)
    counters.increment(group, "reduce.output.records", len(output))
    return output, counters


def _execute_stateful_reduce_task(
    job: MapReduceJob,
    partition: Iterable[EncodedRecord],
    state_partition: Dict[bytes, Tuple[Any, Any]],
    presorted: bool,
    scan: bool,
) -> Tuple[List[KeyValue], List[Tuple[bytes, Any, Any]], Counters]:
    """One resident-state reduce task: join messages against state.

    Visits either the byte-sorted union of resident keys and message
    groups (``scan=True``) or the message groups alone (frontier mode),
    hands each key's resident state and message values to
    ``job.reduce_state``, and returns ``(outputs, updates, counters)``
    where ``updates`` holds only the *changed* records — ``(key_bytes,
    key, new_state)`` with :class:`Retired` marking departures.  The
    state partition is read-only here; the runtime applies the updates
    driver-side, after every task of the round has finished.
    """
    counters = Counters()
    group = job.name
    if not presorted:
        partition = sorted(partition, key=_record_key_bytes)
    groups = _group_encoded_bytes(partition)
    if scan:
        visits = _scan_join(groups, state_partition)
    else:
        visits = (
            (key_bytes, key, state_partition.get(key_bytes), values)
            for key_bytes, key, values in groups
        )
    output: List[KeyValue] = []
    updates: List[Tuple[bytes, Any, Any]] = []
    visited = 0
    for key_bytes, key, entry, values in visits:
        visited += 1
        state = entry[1] if entry is not None else None
        new_state, produced = job.reduce_state(key, state, values)
        if produced is None:
            raise JobValidationError(
                f"{job.name}.reduce_state returned no output "
                "iterable; return (new_state, outputs)"
            )
        for pair in produced:
            if type(pair) is not tuple or len(pair) != 2:
                _validated_pair(job, pair)
            output.append(pair)
        if isinstance(new_state, Retired):
            if entry is not None:
                updates.append((key_bytes, key, new_state))
        elif isinstance(new_state, Quiet):
            if entry is None or new_state.state != entry[1]:
                updates.append((key_bytes, key, new_state))
        elif entry is None:
            if new_state is not None:
                updates.append((key_bytes, key, new_state))
        elif new_state is None:
            updates.append((key_bytes, key, Retired()))
        elif new_state != entry[1]:
            updates.append((key_bytes, key, new_state))
    if visited:
        counters.increment(group, "reduce.input.groups", visited)
    counters.increment(group, "reduce.output.records", len(output))
    return output, updates, counters


def _scan_join(
    groups: Iterator[Tuple[bytes, Any, List[Any]]],
    state_partition: Dict[bytes, Tuple[Any, Any]],
) -> Iterator[Tuple[bytes, Any, Optional[Tuple[Any, Any]], List[Any]]]:
    """Merge-join message groups with a state partition by key bytes.

    Both sides arrive sorted by the canonical key encoding (the groups
    by the shuffle sort, the partition by an explicit sort here), so
    the join is a linear two-pointer merge — resident keys without
    messages are visited with an empty value list, message keys without
    state with ``entry=None``, exactly the union the full-state path's
    reduce would see.
    """
    resident = sorted(state_partition.items())
    index = 0
    total = len(resident)
    for key_bytes, key, values in groups:
        while index < total and resident[index][0] < key_bytes:
            entry = resident[index][1]
            yield resident[index][0], entry[0], entry, []
            index += 1
        if index < total and resident[index][0] == key_bytes:
            yield key_bytes, key, resident[index][1], values
            index += 1
        else:
            yield key_bytes, key, None, values
    while index < total:
        entry = resident[index][1]
        yield resident[index][0], entry[0], entry, []
        index += 1


def _validated_pair(job: MapReduceJob, pair: Any) -> KeyValue:
    if not isinstance(pair, tuple) or len(pair) != 2:
        raise JobValidationError(
            f"{job.name} emitted {pair!r}; emit (key, value) tuples"
        )
    return pair


def _group_encoded(
    records: Iterable[EncodedRecord],
) -> Iterator[Tuple[Any, List[Any]]]:
    """Group a key-sorted encoded-record stream into ``(key, [values])``.

    Key equality is byte equality on the cached canonical encoding —
    no re-encoding, and it works for keys of mixed types exactly like
    the sort order does.  The stream may be lazy (the external
    shuffle's merged runs); it is consumed once, in order.
    """
    for _, key, values in _group_encoded_bytes(records):
        yield key, values


def _group_encoded_bytes(
    records: Iterable[EncodedRecord],
) -> Iterator[Tuple[bytes, Any, List[Any]]]:
    """Like :func:`_group_encoded` but keeps each group's key bytes.

    The stateful reduce joins groups against the resident state store
    by those cached bytes, so they must survive the grouping.
    """
    run_key: Any = None
    run_bytes: Optional[bytes] = None
    run_values: List[Any] = []
    for key_bytes, key, value in records:
        if run_bytes is not None and key_bytes == run_bytes:
            run_values.append(value)
        else:
            if run_bytes is not None:
                yield run_bytes, run_key, run_values
            run_key, run_bytes, run_values = key, key_bytes, [value]
    if run_bytes is not None:
        yield run_bytes, run_key, run_values
