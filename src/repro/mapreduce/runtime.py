"""An in-process MapReduce cluster simulator with pluggable executors.

This is the substrate substituting for Hadoop in the reproduction (see
DESIGN.md): it enforces the MapReduce programming model strictly —

* the input is split across ``num_map_tasks`` map tasks;
* ``map`` is applied record-by-record with no shared mutable state;
* intermediate pairs are *shuffled*: partitioned by a deterministic hash
  of the key, sorted within each partition, and grouped by key;
* ``reduce`` is applied once per key group per partition.

The simulator meters the quantities the paper reports — number of jobs
executed and records shuffled — through :class:`~repro.mapreduce.counters.
Counters`.  Results are guaranteed to be independent of the number of map
and reduce tasks (property-tested in ``tests/mapreduce``).

Execution model
---------------

The runtime is faithful to MapReduce's *execution* model as well as its
programming model: every phase is decomposed into independent task
units and dispatched through an :class:`~repro.mapreduce.executors.
Executor` (``backend="serial" | "threads" | "processes"``).

* A **map task** is one unit of work: it applies ``job.map`` to every
  record of its split, optionally re-executes itself speculatively and
  compares the attempts (the statelessness check a real cluster's
  task retries would perform), applies the combiner to its own output,
  and meters into a *task-local* :class:`Counters`.
* The **shuffle** routes each intermediate record to its reduce
  partition with the deterministic hash partitioner (pure data
  movement, performed by the driver).
* A **reduce task** is one unit of work per partition: it sorts its
  partition by the canonical key order, groups, applies ``job.reduce``
  to each group, and meters into a task-local :class:`Counters`.

Storage model
-------------

Storage is pluggable alongside compute (see :mod:`repro.mapreduce.
storage`): ``storage="memory" | "disk"`` (or any
:class:`~repro.mapreduce.storage.FileSystem`) selects where inter-job
datasets live — :class:`~repro.mapreduce.pipeline.Pipeline` wires its
stages through the runtime's filesystem — and ``spill_threshold``
bounds the driver-side shuffle: when set, map outputs accumulate in
per-partition buffers that sort-and-spill to disk runs past the
threshold and are k-way merged at reduce time
(:class:`~repro.mapreduce.storage.ExternalShuffle`), metering
``spilled_records``/``spill_files``/``spilled_bytes``.

Determinism contract: the runtime collects task results and merges
task-local counters *in task-index order*, so outputs, ``job_log``, and
counter totals are bit-identical across backends and worker counts
(property-tested in ``tests/mapreduce/test_executors.py``) — and, minus
the spill counters, across filesystems and spill thresholds
(property-tested in ``tests/mapreduce/test_storage_spill.py``).
Because tasks may execute in separate processes, jobs must be
stateless and — for the ``processes`` backend — picklable together
with their side data and records.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .counters import Counters
from .errors import JobValidationError
from .executors import Executor, resolve_executor
from .job import KeyValue, MapReduceJob
from .partitioner import HashPartitioner, canonical_bytes
from .storage import ExternalShuffle, FileSystem, resolve_filesystem

__all__ = ["MapReduceRuntime"]

Partitioner = Callable[[Any, int], int]


class MapReduceRuntime:
    """Execute :class:`MapReduceJob` instances on an in-process "cluster".

    Parameters
    ----------
    num_map_tasks, num_reduce_tasks:
        Degree of simulated parallelism.  Results never depend on these,
        only the task boundaries do.
    counters:
        Optional shared :class:`Counters`; a fresh one is created if
        omitted.  All jobs run by this runtime meter into it.
    meter_bytes:
        When ``True``, the shuffle additionally meters pickled record
        sizes under ``<job>.shuffle.bytes``.  Off by default because
        serializing every record is slow for multi-million-edge graphs.
    partitioner:
        Shuffle partitioner; defaults to a deterministic hash partitioner.
    speculative_execution:
        When ``True``, every map task is executed twice (as a real
        cluster may do for stragglers or after failures) and the two
        outputs must match exactly.  This catches jobs that violate the
        statelessness contract — the silent-corruption class of bug on
        a real cluster.  Costs 2x map work; intended for tests.
    backend:
        Execution backend for map and reduce tasks: ``"serial"``
        (default), ``"threads"``, ``"processes"``, or any
        :class:`~repro.mapreduce.executors.Executor` instance.  Results
        and counters are bit-identical across backends.
    max_workers:
        Worker-pool size for the parallel backends; ignored by
        ``"serial"`` and by pre-built executor instances.
    storage:
        Storage backend for inter-job datasets: ``"memory"``
        (default), ``"disk"``, or any :class:`~repro.mapreduce.storage.
        FileSystem` instance.  :class:`~repro.mapreduce.pipeline.
        Pipeline` defaults to this runtime's filesystem.  Results are
        bit-identical across storage backends.
    spill_threshold:
        When set, the shuffle becomes *external*: each reduce
        partition's map outputs accumulate in a bounded buffer that is
        sorted and spilled to a disk run once it holds more than this
        many records (``0`` spills every record), and runs are k-way
        merged at reduce time.  ``None`` (default) keeps the entire
        shuffle in memory.  Outputs are bit-identical across
        thresholds; only the spill counters differ.
    spill_dir:
        Parent directory for spill runs (default: the system temporary
        directory).
    """

    def __init__(
        self,
        num_map_tasks: int = 4,
        num_reduce_tasks: int = 4,
        counters: Optional[Counters] = None,
        meter_bytes: bool = False,
        partitioner: Optional[Partitioner] = None,
        speculative_execution: bool = False,
        backend: Any = "serial",
        max_workers: Optional[int] = None,
        storage: Any = None,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        if num_map_tasks < 1 or num_reduce_tasks < 1:
            raise JobValidationError("task counts must be positive")
        if spill_threshold is not None and spill_threshold < 0:
            raise JobValidationError(
                f"spill_threshold must be >= 0 or None, got "
                f"{spill_threshold}"
            )
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.counters = counters if counters is not None else Counters()
        self.meter_bytes = meter_bytes
        self.partitioner: Partitioner = partitioner or HashPartitioner()
        self.speculative_execution = speculative_execution
        self.executor: Executor = resolve_executor(
            backend, max_workers=max_workers
        )
        self.filesystem: FileSystem = resolve_filesystem(storage)
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir
        self.jobs_executed = 0
        self.job_log: List[str] = []

    @property
    def backend(self) -> str:
        """Canonical name of the active execution backend."""
        return self.executor.name

    @property
    def storage(self) -> str:
        """Canonical name of the active storage backend."""
        return self.filesystem.name

    # -- public API --------------------------------------------------------

    def run(
        self,
        job: MapReduceJob,
        records: Iterable[KeyValue],
        side_data: Optional[Mapping[str, Any]] = None,
    ) -> List[KeyValue]:
        """Run one complete map-shuffle-reduce cycle and return the output.

        ``records`` is the job input as ``(key, value)`` pairs;
        ``side_data`` is installed on the job via
        :meth:`MapReduceJob.configure` before any task runs.
        """
        job.configure(side_data)
        splits = self._split_input(records)
        intermediate = self._run_map_phase(job, splits)
        partitions = self._shuffle(job, intermediate)
        output = self._run_reduce_phase(job, partitions)
        self.jobs_executed += 1
        self.job_log.append(job.name)
        self.counters.increment("runtime", "jobs")
        return output

    # -- phases --------------------------------------------------------------

    def _split_input(
        self, records: Iterable[KeyValue]
    ) -> List[List[KeyValue]]:
        """Distribute input records round-robin across map tasks."""
        splits: List[List[KeyValue]] = [
            [] for _ in range(self.num_map_tasks)
        ]
        for index, record in enumerate(records):
            if not isinstance(record, tuple) or len(record) != 2:
                raise JobValidationError(
                    "input records must be (key, value) pairs, got "
                    f"{record!r}"
                )
            splits[index % self.num_map_tasks].append(record)
        return splits

    def _run_map_phase(
        self, job: MapReduceJob, splits: List[List[KeyValue]]
    ) -> List[List[KeyValue]]:
        """Dispatch one map task per split through the executor."""
        results = self.executor.run_tasks(
            _execute_map_task,
            [
                (job, split, self.speculative_execution)
                for split in splits
            ],
        )
        intermediate: List[List[KeyValue]] = []
        for emitted, task_counters in results:
            self.counters.merge(task_counters)
            intermediate.append(emitted)
        return intermediate

    def _shuffle(
        self, job: MapReduceJob, intermediate: List[List[KeyValue]]
    ) -> List[List[KeyValue]]:
        """Partition and meter the intermediate records.

        With ``spill_threshold=None`` every partition stays in memory
        in arrival order and sorting happens inside each reduce task
        (the task unit owns its partition's sort, as a real cluster's
        reducer-side merge does).  With a threshold, records route
        through the :class:`ExternalShuffle` — bounded buffers that
        sort-and-spill to disk runs and k-way merge per partition.
        Both paths hand each reduce task the same multiset of records
        with equal keys in the same arrival order, so reduce outputs
        are bit-identical either way.
        """
        group = job.name
        spiller: Optional[ExternalShuffle] = None
        partitions: List[List[KeyValue]] = [
            [] for _ in range(self.num_reduce_tasks)
        ]
        if self.spill_threshold is not None:
            spiller = ExternalShuffle(
                self.num_reduce_tasks,
                self.spill_threshold,
                spill_dir=self.spill_dir,
            )
        try:
            shuffled = 0
            shuffled_bytes = 0
            for task_index, task_output in enumerate(intermediate):
                for key, value in task_output:
                    index = self.partitioner(key, self.num_reduce_tasks)
                    if not 0 <= index < self.num_reduce_tasks:
                        raise JobValidationError(
                            f"partitioner returned {index} for "
                            f"{self.num_reduce_tasks} partitions"
                        )
                    if spiller is not None:
                        spiller.add(index, key, value)
                    else:
                        partitions[index].append((key, value))
                    shuffled += 1
                    if self.meter_bytes:
                        shuffled_bytes += len(pickle.dumps((key, value)))
                if spiller is not None:
                    # These records now live in the spiller's bounded
                    # buffers or on-disk runs; drop the driver's copy so
                    # routing never holds the shuffle twice.
                    intermediate[task_index] = []
            if spiller is not None:
                partitions = [
                    spiller.merged_partition(index)
                    for index in range(self.num_reduce_tasks)
                ]
                spiller.meter(self.counters, group)
        finally:
            if spiller is not None:
                spiller.close()
        self.counters.increment(group, "shuffle.records", shuffled)
        self.counters.increment("runtime", "shuffle.records", shuffled)
        if self.meter_bytes:
            self.counters.increment(group, "shuffle.bytes", shuffled_bytes)
        return partitions

    def _run_reduce_phase(
        self, job: MapReduceJob, partitions: List[List[KeyValue]]
    ) -> List[KeyValue]:
        """Dispatch one reduce task per partition through the executor."""
        results = self.executor.run_tasks(
            _execute_reduce_task,
            [(job, partition) for partition in partitions],
        )
        output: List[KeyValue] = []
        for task_output, task_counters in results:
            self.counters.merge(task_counters)
            output.extend(task_output)
        return output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MapReduceRuntime(map={self.num_map_tasks}, "
            f"reduce={self.num_reduce_tasks}, "
            f"backend={self.backend!r}, storage={self.storage!r}, "
            f"spill_threshold={self.spill_threshold}, "
            f"jobs={self.jobs_executed})"
        )


# -- task units of work ------------------------------------------------------
#
# Module-level functions (not methods) so the processes backend can
# pickle them by reference.  Each returns ``(records, Counters)``; the
# runtime merges the counters in task-index order.


def _execute_map_task(
    job: MapReduceJob, split: List[KeyValue], speculative: bool
) -> Tuple[List[KeyValue], Counters]:
    """One map task: map every record, verify retries, combine, meter."""
    counters = Counters()
    group = job.name
    emitted = _attempt_map(job, split, group, counters)
    if speculative:
        retry = _attempt_map(job, split, group, None)
        if retry != emitted:
            raise JobValidationError(
                f"{job.name}.map is non-deterministic: a "
                "speculative re-execution of a task produced "
                "different output (jobs must be stateless and "
                "derive any randomness from their inputs)"
            )
    if job.has_combiner and emitted:
        emitted = _apply_combiner(job, emitted)
    counters.increment(group, "map.output.records", len(emitted))
    return emitted, counters


def _attempt_map(
    job: MapReduceJob,
    split: List[KeyValue],
    group: str,
    counters: Optional[Counters],
) -> List[KeyValue]:
    """Run one attempt of a map task (``counters=None`` for retries)."""
    emitted: List[KeyValue] = []
    for key, value in split:
        if counters is not None:
            counters.increment(group, "map.input.records")
        produced = job.map(key, value)
        if produced is None:
            raise JobValidationError(
                f"{job.name}.map returned None; return an iterable"
            )
        for pair in produced:
            emitted.append(_validated_pair(job, pair))
    return emitted


def _apply_combiner(
    job: MapReduceJob, emitted: List[KeyValue]
) -> List[KeyValue]:
    """Group one map task's output by key and apply ``job.combine``."""
    grouped = _group_sorted(_sorted_by_key(emitted))
    combined: List[KeyValue] = []
    for key, values in grouped:
        for pair in job.combine(key, values):
            combined.append(_validated_pair(job, pair))
    return combined


def _execute_reduce_task(
    job: MapReduceJob, partition: List[KeyValue]
) -> Tuple[List[KeyValue], Counters]:
    """One reduce task: sort its partition, group, reduce, meter."""
    counters = Counters()
    group = job.name
    output: List[KeyValue] = []
    for key, values in _group_sorted(_sorted_by_key(partition)):
        counters.increment(group, "reduce.input.groups")
        produced = job.reduce(key, values)
        if produced is None:
            raise JobValidationError(
                f"{job.name}.reduce returned None; return an "
                "iterable"
            )
        for pair in produced:
            output.append(_validated_pair(job, pair))
    counters.increment(group, "reduce.output.records", len(output))
    return output, counters


def _validated_pair(job: MapReduceJob, pair: Any) -> KeyValue:
    if not isinstance(pair, tuple) or len(pair) != 2:
        raise JobValidationError(
            f"{job.name} emitted {pair!r}; emit (key, value) tuples"
        )
    return pair


def _sorted_by_key(records: List[KeyValue]) -> List[KeyValue]:
    """Sort records by the canonical byte order of their keys.

    A canonical encoding (rather than Python's ``<``) keeps the order
    deterministic even for keys of mixed types, mirroring Hadoop's
    byte-wise comparators.  The sort is stable, so values of equal keys
    keep their arrival order.
    """
    return sorted(records, key=lambda kv: canonical_bytes(kv[0]))


def _group_sorted(
    records: List[KeyValue],
) -> Iterable[Tuple[Any, List[Any]]]:
    """Group a key-sorted record list into ``(key, [values])`` runs."""
    run_key: Any = None
    run_bytes: Optional[bytes] = None
    run_values: List[Any] = []
    for key, value in records:
        encoded = canonical_bytes(key)
        if run_bytes is not None and encoded == run_bytes:
            run_values.append(value)
        else:
            if run_bytes is not None:
                yield run_key, run_values
            run_key, run_bytes, run_values = key, encoded, [value]
    if run_bytes is not None:
        yield run_key, run_values
