"""Exact maximum-weight b-matching for bipartite graphs.

The paper notes that weighted b-matching is solvable in polynomial time
via max-flow techniques [10, 13] but too slowly for web-scale inputs; the
exact solver here plays the same role as those citations — a quality
upper bound for evaluating the approximation algorithms on small and
medium instances.

Two backends are provided:

* :func:`flow_b_matching` — our own successive-shortest-path min-cost
  flow on the layered network ``source → items → consumers → sink``
  (Johnson potentials + Dijkstra, bottleneck augmentation, stopping as
  soon as the cheapest augmenting path stops improving the objective).
* :func:`lp_b_matching` — the LP relaxation solved with
  ``scipy.optimize.linprog`` (HiGHS).  For *bipartite* graphs the
  constraint matrix is totally unimodular, so the LP optimum is integral
  and exact; for general graphs the value is still a valid upper bound
  (exposed as :func:`lp_upper_bound`).

Both are cross-validated against brute-force enumeration in the tests.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..graph.bipartite import BipartiteGraph, Graph
from .types import Matching, MatchingResult

__all__ = [
    "flow_b_matching",
    "lp_b_matching",
    "lp_upper_bound",
    "exact_b_matching",
]

_EPS = 1e-9


class _MinCostFlow:
    """A small residual-network min-cost-flow core (adjacency arrays)."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.head: List[List[int]] = [[] for _ in range(num_nodes)]
        self.to: List[int] = []
        self.cap: List[float] = []
        self.cost: List[float] = []

    def add_arc(self, frm: int, to: int, cap: float, cost: float) -> int:
        """Add a forward arc and its zero-capacity reverse; return index."""
        index = len(self.to)
        self.head[frm].append(index)
        self.to.append(to)
        self.cap.append(cap)
        self.cost.append(cost)
        self.head[to].append(index + 1)
        self.to.append(frm)
        self.cap.append(0.0)
        self.cost.append(-cost)
        return index

    def _arc_source(self, index: int) -> int:
        """The tail of arc ``index`` (stored implicitly via the pair)."""
        return self.to[index ^ 1]

    def dijkstra(
        self, source: int, potentials: List[float]
    ) -> Tuple[List[float], List[int]]:
        """Shortest reduced-cost distances from ``source``; parents by arc."""
        infinity = float("inf")
        dist = [infinity] * self.num_nodes
        parent_arc = [-1] * self.num_nodes
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist[node] + _EPS:
                continue
            for arc in self.head[node]:
                if self.cap[arc] <= _EPS:
                    continue
                target = self.to[arc]
                reduced = (
                    self.cost[arc] + potentials[node] - potentials[target]
                )
                candidate = d + reduced
                if candidate < dist[target] - _EPS:
                    dist[target] = candidate
                    parent_arc[target] = arc
                    heapq.heappush(heap, (candidate, target))
        return dist, parent_arc


def flow_b_matching(graph: BipartiteGraph) -> MatchingResult:
    """Exact maximum-weight b-matching by min-cost flow (own solver).

    Augments along the cheapest path while it has negative cost (i.e.
    positive marginal matching weight); by the concavity of the optimal
    weight in the flow value, stopping there is globally optimal.
    """
    items = graph.items()
    consumers = graph.consumers()
    index: Dict[str, int] = {}
    for node in items + consumers:
        index[node] = len(index) + 1  # 0 is the source
    source = 0
    sink = len(index) + 1
    network = _MinCostFlow(sink + 1)

    for item in items:
        capacity = graph.capacity(item)
        if capacity > 0 and graph.degree(item) > 0:
            network.add_arc(source, index[item], float(capacity), 0.0)
    middle_arcs: Dict[int, Tuple[str, str, float]] = {}
    for edge in graph.edges():
        item, consumer = (
            (edge.u, edge.v)
            if graph.side(edge.u) == "item"
            else (edge.v, edge.u)
        )
        arc = network.add_arc(
            index[item], index[consumer], 1.0, -edge.weight
        )
        middle_arcs[arc] = (item, consumer, edge.weight)
    for consumer in consumers:
        capacity = graph.capacity(consumer)
        if capacity > 0 and graph.degree(consumer) > 0:
            network.add_arc(index[consumer], sink, float(capacity), 0.0)

    # Initial potentials via relaxation in layer order (the network is a
    # DAG before any augmentation, so three passes suffice).
    infinity = float("inf")
    potentials = [infinity] * network.num_nodes
    potentials[source] = 0.0
    for _ in range(3):
        for arc_index in range(0, len(network.to), 2):
            frm = network._arc_source(arc_index)
            to = network.to[arc_index]
            if (
                network.cap[arc_index] > _EPS
                and potentials[frm] < infinity
            ):
                candidate = potentials[frm] + network.cost[arc_index]
                if candidate < potentials[to]:
                    potentials[to] = candidate
    # Unreached nodes keep +inf; replace by 0 after checking reachability.
    potentials = [0.0 if p == infinity else p for p in potentials]

    while True:
        dist, parent_arc = network.dijkstra(source, potentials)
        if dist[sink] == float("inf"):
            break
        true_cost = dist[sink] + potentials[sink] - potentials[source]
        if true_cost >= -_EPS:
            break  # further augmentation can only lose weight
        # Bottleneck along the path.
        bottleneck = float("inf")
        node = sink
        while node != source:
            arc = parent_arc[node]
            bottleneck = min(bottleneck, network.cap[arc])
            node = network._arc_source(arc)
        node = sink
        while node != source:
            arc = parent_arc[node]
            network.cap[arc] -= bottleneck
            network.cap[arc ^ 1] += bottleneck
            node = network._arc_source(arc)
        for i in range(network.num_nodes):
            if dist[i] < float("inf"):
                potentials[i] += dist[i]

    matching = Matching()
    for arc, (item, consumer, weight) in middle_arcs.items():
        if network.cap[arc] < 0.5:  # saturated unit arc => matched
            matching.add(item, consumer, weight)
    return MatchingResult(
        matching=matching,
        algorithm="ExactFlow",
        rounds=1,
        value_history=[matching.value],
    )


def _lp_solve(graph: Graph) -> Tuple[float, List[float], List[Tuple[str, str, float]]]:
    """Solve the b-matching LP relaxation; returns (value, x, edges)."""
    from scipy.optimize import linprog
    from scipy.sparse import lil_matrix

    edges = [(e.u, e.v, e.weight) for e in graph.edges()]
    if not edges:
        return 0.0, [], []
    nodes = sorted(graph.nodes())
    node_index = {node: i for i, node in enumerate(nodes)}
    constraint = lil_matrix((len(nodes), len(edges)))
    for j, (u, v, _) in enumerate(edges):
        constraint[node_index[u], j] = 1.0
        constraint[node_index[v], j] = 1.0
    bounds_b = [float(graph.capacity(node)) for node in nodes]
    objective = [-w for (_, _, w) in edges]
    result = linprog(
        objective,
        A_ub=constraint.tocsr(),
        b_ub=bounds_b,
        bounds=[(0.0, 1.0)] * len(edges),
        method="highs",
    )
    if not result.success:  # pragma: no cover - solver failure
        raise RuntimeError(f"LP solver failed: {result.message}")
    return -float(result.fun), list(result.x), edges


def lp_b_matching(graph: BipartiteGraph) -> MatchingResult:
    """Exact b-matching via the (integral) bipartite LP relaxation.

    The bipartite degree-constraint matrix is totally unimodular, so the
    HiGHS vertex solution is integral; fractional components beyond
    numerical noise raise an error rather than being rounded silently.
    """
    value, solution, edges = _lp_solve(graph)
    matching = Matching()
    for x, (u, v, w) in zip(solution, edges):
        if x > 0.5:
            if x < 1.0 - 1e-6:
                raise RuntimeError(
                    f"LP returned a fractional value {x} for edge "
                    f"({u!r}, {v!r}); expected an integral vertex"
                )
            matching.add(u, v, w)
    return MatchingResult(
        matching=matching,
        algorithm="ExactLP",
        rounds=1,
        value_history=[matching.value],
    )


def lp_upper_bound(graph: Graph) -> float:
    """The LP-relaxation value: an upper bound on OPT for any graph."""
    value, _, _ = _lp_solve(graph)
    return value


def exact_b_matching(
    graph: BipartiteGraph, backend: str = "flow"
) -> MatchingResult:
    """Dispatch to an exact backend (``"flow"`` or ``"lp"``)."""
    if backend == "flow":
        return flow_b_matching(graph)
    if backend == "lp":
        return lp_b_matching(graph)
    raise ValueError(f"unknown exact backend {backend!r}")
