"""b-Suitor: a proposal-based ½-approximation for weighted b-matching.

An independent engine for the same problem (Khan et al., *Efficient
Approximation Algorithms for Weighted b-Matching*, 2016; generalizing
Manne & Halappanavar's Suitor algorithm): every node tries to become a
*suitor* of its ``b`` best reachable partners; a proposal displaces a
partner's worst current suitor when it beats it; displaced nodes
re-propose further down their (lazily consumed) preference lists.  The
matching is the set of **mutual** suitor pairs.

Under the same strict total edge order used by the greedy algorithms
(weight descending, edge key ascending), b-Suitor provably returns
*exactly* the sequential greedy matching while avoiding the global edge
sort — it only ever sorts each node's neighborhood.  This gives the
repository a third, structurally different implementation of the
½-approximation (sequential sweep / parallel rounds / proposals), all
property-tested to agree, which is a strong cross-check on each.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import EdgeKey, edge_key, edge_sort_key
from .types import Matching, MatchingResult

__all__ = ["suitor_b_matching"]


def suitor_b_matching(graph: Graph) -> MatchingResult:
    """Run the b-Suitor algorithm on ``graph``.

    Returns the same matching as
    :func:`repro.matching.greedy.greedy_b_matching` (property-tested);
    ``rounds`` reports the number of proposal attempts made, a proxy
    for the work the proposal dynamics performed.
    """
    capacities = graph.capacities()
    # Per-node preference lists, best edge first under the total order.
    preferences: Dict[str, List[Tuple[str, float]]] = {}
    for node in graph.nodes():
        if capacities[node] <= 0:
            continue
        ranked = sorted(
            (
                (nbr, weight)
                for nbr, weight in graph.incident(node)
                if capacities.get(nbr, 0) > 0
            ),
            key=lambda nw: edge_sort_key(
                edge_key(node, nw[0]), nw[1]
            ),
        )
        preferences[node] = ranked

    cursor: Dict[str, int] = {node: 0 for node in preferences}
    pending: Dict[str, int] = {
        node: min(capacities[node], len(ranked))
        for node, ranked in preferences.items()
    }
    suitors: Dict[str, Dict[str, float]] = {
        node: {} for node in preferences
    }
    worklist: List[str] = sorted(
        (node for node, count in pending.items() if count > 0),
        reverse=True,  # pop() consumes in ascending node order
    )
    attempts = 0

    def worst_suitor(node: str) -> Tuple[str, float]:
        """The current suitor of ``node`` that greedy would keep last."""
        return max(
            suitors[node].items(),
            key=lambda kv: edge_sort_key(
                edge_key(node, kv[0]), kv[1]
            ),
        )

    while worklist:
        node = worklist.pop()
        while pending[node] > 0 and cursor[node] < len(
            preferences[node]
        ):
            partner, weight = preferences[node][cursor[node]]
            cursor[node] += 1
            attempts += 1
            heap = suitors[partner]
            if node in heap:
                continue
            if len(heap) < capacities[partner]:
                heap[node] = weight
                pending[node] -= 1
                continue
            loser, loser_weight = worst_suitor(partner)
            if edge_sort_key(
                edge_key(node, partner), weight
            ) < edge_sort_key(edge_key(loser, partner), loser_weight):
                del heap[loser]
                heap[node] = weight
                pending[node] -= 1
                pending[loser] += 1
                worklist.append(loser)
            # else: the proposal loses; try the next preference.

    matching = Matching()
    for node, heap in suitors.items():
        for suitor, weight in heap.items():
            if node < suitor and node in suitors.get(suitor, {}):
                matching.add(node, suitor, weight)
    return MatchingResult(
        matching=matching,
        algorithm="bSuitor",
        rounds=attempts,
        value_history=[matching.value],
    )
