"""GreedyMR: the MapReduce adaptation of the greedy algorithm (§5.4).

One MapReduce job per iteration (Algorithm 3 of the paper):

* **map** — each node ``v`` proposes its ``b(v)`` incident edges of
  maximum weight to its neighbors;
* **reduce** — each node intersects its own proposals with those of its
  neighbors; mutually proposed edges enter the matching, capacities
  shrink, saturated nodes leave the graph.

Determinism: proposals use the strict total edge order of
:func:`repro.graph.edges.edge_sort_key` (weight descending, edge key
ascending), so the parallel process simulates the sequential greedy —
``greedy_mr_b_matching`` returns exactly the matching of
:func:`repro.matching.greedy.greedy_b_matching` (property-tested), and
therefore inherits its ½-approximation guarantee.

Two properties the paper highlights are surfaced here:

* **any-time availability**: the matching is feasible after every
  iteration; ``value_history`` records the Figure 5 convergence curve;
* **worst case**: on an ascending-weight path the number of rounds is
  linear in the graph size (see ``repro.graph.generators.ascending_path``
  and the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import edge_key, edge_sort_key
from ..mapreduce import KeyValue, MapReduceJob, MapReduceRuntime
from ..mapreduce.errors import RoundLimitExceeded
from .types import Matching, MatchingResult

__all__ = ["GreedyNode", "GreedyRoundJob", "greedy_mr_b_matching"]


@dataclass(frozen=True)
class GreedyNode:
    """A node record: residual capacity and live incident edges."""

    b: int
    adj: Dict[str, float]


def _proposals(node: str, state: GreedyNode) -> Set[str]:
    """The neighbors of ``v``'s top-``b(v)`` edges by the global order.

    Called identically from map and reduce, so both phases agree without
    extra communication.
    """
    if state.b <= 0:
        return set()
    ranked = sorted(
        state.adj.items(),
        key=lambda item: edge_sort_key(
            edge_key(node, item[0]), item[1]
        ),
    )
    return {neighbor for neighbor, _ in ranked[: state.b]}


class GreedyRoundJob(MapReduceJob):
    """One GreedyMR iteration (Algorithm 3's parallel loop body)."""

    name = "greedy-round"

    def map(self, node: str, state: GreedyNode) -> Iterable[KeyValue]:
        proposals = _proposals(node, state)
        yield node, ("self", state)
        for neighbor in state.adj:
            yield neighbor, ("prop", node, neighbor in proposals)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[GreedyNode] = None
        neighbor_proposals: Dict[str, bool] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, proposed = value
                neighbor_proposals[neighbor] = proposed
        if state is None:
            # This node's record died in an earlier round; stray proposal
            # messages are ignored (the sender drops the edge likewise).
            return
        my_proposals = _proposals(node, state)
        new_adj: Dict[str, float] = {}
        matched: List[Tuple[str, float]] = []
        for neighbor, weight in state.adj.items():
            if neighbor not in neighbor_proposals:
                continue  # the neighbor died: retract the edge
            if neighbor in my_proposals and neighbor_proposals[neighbor]:
                matched.append((neighbor, weight))
            else:
                new_adj[neighbor] = weight
        for neighbor, weight in matched:
            if node < neighbor:
                yield ("matched", node, neighbor), weight
        new_b = state.b - len(matched)
        if new_b > 0 and new_adj:
            yield node, GreedyNode(b=new_b, adj=new_adj)


def _initial_records(graph: Graph) -> List[KeyValue]:
    """Node records for every capacitated node with live edges."""
    capacities = graph.capacities()
    records: List[KeyValue] = []
    for node in sorted(capacities):
        if capacities[node] <= 0 or graph.degree(node) == 0:
            continue
        adj = {
            nbr: w
            for nbr, w in graph.incident(node)
            if capacities.get(nbr, 0) > 0
        }
        if adj:
            records.append(
                (node, GreedyNode(b=capacities[node], adj=adj))
            )
    return records


def greedy_mr_b_matching(
    graph: Graph,
    runtime: Optional[MapReduceRuntime] = None,
    max_rounds: Optional[int] = None,
) -> MatchingResult:
    """Run GreedyMR on ``graph`` and return the matching with its history.

    ``value_history[i]`` is the (feasible) matching value after round
    ``i+1`` — the any-time property of §5.4 and the series of Figure 5.
    """
    runtime = runtime or MapReduceRuntime()
    if max_rounds is None:
        max_rounds = 2 * graph.num_edges + 4
    jobs_before = runtime.jobs_executed
    records = _initial_records(graph)
    matching = Matching()
    history: List[float] = []
    rounds = 0
    job = GreedyRoundJob()
    while records:
        if rounds >= max_rounds:
            raise RoundLimitExceeded("greedy-mr", max_rounds)
        output = runtime.run(job, records)
        records = []
        for key, value in output:
            if isinstance(key, tuple) and key[0] == "matched":
                matching.add(key[1], key[2], value)
            else:
                records.append((key, value))
        rounds += 1
        history.append(matching.value)
    return MatchingResult(
        matching=matching,
        algorithm="GreedyMR",
        rounds=rounds,
        mr_jobs=runtime.jobs_executed - jobs_before,
        value_history=history,
    )
