"""GreedyMR: the MapReduce adaptation of the greedy algorithm (§5.4).

One MapReduce job per iteration (Algorithm 3 of the paper):

* **map** — each node ``v`` proposes its ``b(v)`` incident edges of
  maximum weight to its neighbors;
* **reduce** — each node intersects its own proposals with those of its
  neighbors; mutually proposed edges enter the matching, capacities
  shrink, saturated nodes leave the graph.

Determinism: proposals use the strict total edge order of
:func:`repro.graph.edges.edge_sort_key` (weight descending, edge key
ascending), so the parallel process simulates the sequential greedy —
``greedy_mr_b_matching`` returns exactly the matching of
:func:`repro.matching.greedy.greedy_b_matching` (property-tested), and
therefore inherits its ½-approximation guarantee.

Two properties the paper highlights are surfaced here:

* **any-time availability**: the matching is feasible after every
  iteration; ``value_history`` records the Figure 5 convergence curve;
* **worst case**: on an ascending-weight path the number of rounds is
  linear in the graph size (see ``repro.graph.generators.ascending_path``
  and the ablation benchmark).

Delta rounds (the default, ``delta=True``)
------------------------------------------

The any-time curve of Figure 5 flattens fast: after the first few
rounds most nodes are *quiescent* — same capacity, same edges, same
proposals — yet the classic formulation re-ships every node record and
every proposal through the shuffle each round.  The delta path runs the
same Algorithm 3 on the runtime's delta iteration plane instead
(:meth:`~repro.mapreduce.runtime.MapReduceRuntime.run_stateful`,
frontier mode):

* node records live in a partition-aligned
  :class:`~repro.mapreduce.state.ResidentStateStore` and never enter
  the shuffle;
* each round, only nodes whose state *changed* last round run map
  — they re-propose to their neighbors and ping themselves — while each
  node's resident ``inbox`` caches the last proposal received from
  every live neighbor, so quiescent neighbors need not re-send;
* a node that leaves the graph retires with explicit death notices
  (:class:`~repro.mapreduce.state.Retired`) to its surviving
  neighbors, replacing the full path's absence-of-message signal;
* convergence is an empty delta stream.

The two paths produce bit-identical matchings, ``value_history``,
round counts, and job counts (property-tested and pinned by the golden
convergence curves); only the shuffle volume differs, which is the
point — ``iteration.quiescent_records`` meters what the frontier
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import edge_key, edge_sort_key
from ..mapreduce import (
    IterativeDriver,
    KeyValue,
    MapReduceJob,
    MapReduceRuntime,
    Quiet,
    Retired,
)
from .types import Matching, MatchingResult

__all__ = [
    "GreedyNode",
    "GreedyDeltaNode",
    "GreedyRoundJob",
    "GreedyDeltaRoundJob",
    "default_max_rounds",
    "greedy_mr_b_matching",
]


@dataclass(frozen=True)
class GreedyNode:
    """A node record: residual capacity and live incident edges."""

    b: int
    adj: Dict[str, float]


@dataclass(frozen=True)
class GreedyDeltaNode:
    """A resident node record of the delta path.

    On top of :class:`GreedyNode`'s fields it carries the incremental
    bookkeeping that lets quiescent neighbors stay silent:

    * ``inbox`` — the last proposal bit received from each live
      neighbor (the full-state path re-receives every bit every round);
    * ``props`` — the node's own current proposal set, which is also
      exactly what its neighbors' inboxes hold (``None`` until first
      computed).  Proposals are a pure function of ``(b, adj)``, so
      this caches the ranking sort until the core actually changes;
    * ``flips`` — the neighbors whose proposal bit changed with the
      last core change: the only ones the next map must message.
    """

    b: int
    adj: Dict[str, float]
    inbox: Dict[str, bool]
    props: Optional[FrozenSet[str]] = None
    flips: Tuple[str, ...] = ()


def _proposals(node: str, state) -> Set[str]:
    """The neighbors of ``v``'s top-``b(v)`` edges by the global order.

    Called identically from map and reduce, so both phases agree without
    extra communication.
    """
    if state.b <= 0:
        return set()
    ranked = sorted(
        state.adj.items(),
        key=lambda item: edge_sort_key(
            edge_key(node, item[0]), item[1]
        ),
    )
    return {neighbor for neighbor, _ in ranked[: state.b]}


class GreedyRoundJob(MapReduceJob):
    """One GreedyMR iteration (Algorithm 3's parallel loop body)."""

    name = "greedy-round"

    def map(self, node: str, state: GreedyNode) -> Iterable[KeyValue]:
        proposals = _proposals(node, state)
        yield node, ("self", state)
        for neighbor in state.adj:
            yield neighbor, ("prop", node, neighbor in proposals)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[GreedyNode] = None
        neighbor_proposals: Dict[str, bool] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, proposed = value
                neighbor_proposals[neighbor] = proposed
        if state is None:
            # This node's record died in an earlier round; stray proposal
            # messages are ignored (the sender drops the edge likewise).
            return
        my_proposals = _proposals(node, state)
        new_adj: Dict[str, float] = {}
        matched: List[Tuple[str, float]] = []
        for neighbor, weight in state.adj.items():
            if neighbor not in neighbor_proposals:
                continue  # the neighbor died: retract the edge
            if neighbor in my_proposals and neighbor_proposals[neighbor]:
                matched.append((neighbor, weight))
            else:
                new_adj[neighbor] = weight
        for neighbor, weight in matched:
            if node < neighbor:
                yield ("matched", node, neighbor), weight
        new_b = state.b - len(matched)
        if new_b > 0 and new_adj:
            yield node, GreedyNode(b=new_b, adj=new_adj)


class GreedyDeltaRoundJob(MapReduceJob):
    """One GreedyMR iteration on the delta plane (frontier mode).

    Same round semantics as :class:`GreedyRoundJob`, expressed over
    deltas: only changed nodes map, proposals from quiescent neighbors
    come from the resident inbox, and departures are announced with
    explicit ``("dead", node)`` notices instead of message absence.
    The job name is shared so job logs and counter groups line up
    across the two paths.
    """

    name = "greedy-round"

    def map_delta(self, node: str, delta) -> Iterable[KeyValue]:
        if isinstance(delta, Retired):
            for neighbor in delta.notify:
                yield neighbor, ("dead", node)
            return
        # The self-ping guarantees a changed node re-evaluates even
        # when all its neighbors stayed quiet (its own proposal set may
        # now form a mutual pair with a cached inbox entry).
        yield node, ("ping",)
        if delta.props is None:
            # First broadcast: every neighbor needs every bit.
            proposals = _proposals(node, delta)
            for neighbor in delta.adj:
                yield neighbor, ("prop", node, neighbor in proposals)
            return
        # Incremental broadcast: neighbors whose bit did not flip
        # already hold the correct value in their inbox.
        for neighbor in delta.flips:
            yield neighbor, ("prop", node, neighbor in delta.props)

    def reduce_state(
        self, node: str, state: Optional[GreedyDeltaNode], values: List
    ) -> Tuple[object, List[KeyValue]]:
        if state is None:
            return None, []  # stray messages to a departed node
        inbox = dict(state.inbox)
        dead: Set[str] = set()
        for value in values:
            tag = value[0]
            if tag == "prop":
                if value[1] in state.adj:
                    inbox[value[1]] = value[2]
            elif tag == "dead":
                dead.add(value[1])
        if state.props is not None:
            my_proposals: FrozenSet[str] = state.props
        else:
            my_proposals = frozenset(_proposals(node, state))
        new_adj: Dict[str, float] = {}
        matched: List[Tuple[str, float]] = []
        for neighbor, weight in state.adj.items():
            if neighbor in dead:
                continue  # the neighbor died: retract the edge
            if neighbor in my_proposals and inbox.get(neighbor, False):
                matched.append((neighbor, weight))
            else:
                new_adj[neighbor] = weight
        outputs: List[KeyValue] = [
            (("matched", node, neighbor), weight)
            for neighbor, weight in matched
            if node < neighbor
        ]
        new_b = state.b - len(matched)
        if new_b > 0 and new_adj:
            new_inbox = {nbr: inbox[nbr] for nbr in new_adj}
            if new_b != state.b or new_adj != state.adj:
                # Core change: recompute proposals once, diff against
                # what the neighbors' inboxes hold (= my_proposals),
                # and schedule messages only for the flipped bits.
                new_props = frozenset(
                    _proposals(
                        node, GreedyNode(b=new_b, adj=new_adj)
                    )
                )
                flips = tuple(
                    sorted(
                        nbr
                        for nbr in new_adj
                        if (nbr in new_props) != (nbr in my_proposals)
                    )
                )
                return (
                    GreedyDeltaNode(
                        b=new_b,
                        adj=new_adj,
                        inbox=new_inbox,
                        props=new_props,
                        flips=flips,
                    ),
                    outputs,
                )
            new_state = GreedyDeltaNode(
                b=new_b,
                adj=new_adj,
                inbox=new_inbox,
                props=my_proposals,
                flips=(),
            )
            if new_state != state:
                # Inbox-only change (or a first proposal computation):
                # nothing this node sends can change — remember the
                # bookkeeping, stay off the frontier.
                return Quiet(new_state), outputs
            return state, outputs
        # The node leaves; survivors it still held edges to must hear
        # about it (the runtime prunes peers that left this same round).
        return Retired(tuple(sorted(new_adj))), outputs


def default_max_rounds(graph: Graph) -> int:
    """The round cap derived from the delta plane's progress guarantee.

    Every GreedyMR round with live edges matches at least one edge (the
    globally maximum edge in the residual graph is mutually proposed),
    and matched edges never return — equivalently, no round's delta
    stream is empty before convergence.  Rounds are therefore bounded
    by the number of edges; the ``+ 1`` covers the empty graph.  The
    previous default (``2·|E| + 4``) was loose enough to make
    :class:`~repro.mapreduce.errors.RoundLimitExceeded` effectively
    unreachable on adversarial inputs like ``ascending_path``.
    """
    return graph.num_edges + 1


def _initial_records(graph: Graph) -> List[KeyValue]:
    """Node records for every capacitated node with live edges."""
    capacities = graph.capacities()
    records: List[KeyValue] = []
    for node in sorted(capacities):
        if capacities[node] <= 0 or graph.degree(node) == 0:
            continue
        adj = {
            nbr: w
            for nbr, w in graph.incident(node)
            if capacities.get(nbr, 0) > 0
        }
        if adj:
            records.append(
                (node, GreedyNode(b=capacities[node], adj=adj))
            )
    return records


def _collect_round(
    output: List[KeyValue], matching: Matching
) -> List[KeyValue]:
    """Split one round's output into matches (applied) and records."""
    records: List[KeyValue] = []
    for key, value in output:
        if isinstance(key, tuple) and key[0] == "matched":
            matching.add(key[1], key[2], value)
        else:
            records.append((key, value))
    return records


def greedy_mr_b_matching(
    graph: Graph,
    runtime: Optional[MapReduceRuntime] = None,
    max_rounds: Optional[int] = None,
    delta: bool = True,
    on_round_end=None,
) -> MatchingResult:
    """Run GreedyMR on ``graph`` and return the matching with its history.

    ``value_history[i]`` is the (feasible) matching value after round
    ``i+1`` — the any-time property of §5.4 and the series of Figure 5.

    ``delta`` selects the execution plane: ``True`` (default) runs
    resident-state frontier rounds, ``False`` the classic
    full-state-per-round formulation.  Matchings, ``value_history``,
    round counts, and job counts are bit-identical either way; only
    shuffle volume and wall-clock differ (see
    ``benchmarks/bench_matching_rounds.py``).  ``on_round_end(state,
    round_number)`` is forwarded to the :class:`IterativeDriver` for
    per-round instrumentation.
    """
    runtime = runtime or MapReduceRuntime()
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    jobs_before = runtime.jobs_executed
    records = _initial_records(graph)
    matching = Matching()
    history: List[float] = []
    if not records:
        return MatchingResult(
            matching=matching,
            algorithm="GreedyMR",
            rounds=0,
            mr_jobs=0,
            value_history=history,
        )
    driver: IterativeDriver = IterativeDriver(
        runtime,
        name="greedy-mr",
        max_rounds=max_rounds,
        on_round_end=on_round_end,
    )
    if delta:
        job = GreedyDeltaRoundJob()
        seeds = [
            (node, GreedyDeltaNode(b=state.b, adj=state.adj, inbox={}))
            for node, state in records
        ]
        driver.create_store(seeds)

        def step(deltas, round_number):
            output, next_deltas = driver.run_stateful(job, deltas=deltas)
            _collect_round(output, matching)
            history.append(matching.value)
            return next_deltas, not next_deltas

        try:
            driver.iterate(step, seeds)
        finally:
            driver.close()
    else:
        job = GreedyRoundJob()

        def step(records, round_number):
            output = runtime.run(job, records)
            next_records = _collect_round(output, matching)
            history.append(matching.value)
            return next_records, not next_records

        driver.iterate(step, records)
    return MatchingResult(
        matching=matching,
        algorithm="GreedyMR",
        rounds=driver.rounds_completed,
        mr_jobs=runtime.jobs_executed - jobs_before,
        value_history=history,
    )
