"""Result types shared by all b-matching algorithms.

A :class:`Matching` is a set of weighted edges with O(1) membership and
running totals; a :class:`MatchingResult` wraps it with the execution
metadata the paper's evaluation reports (rounds, MapReduce jobs, any-time
value history, capacity violations, dual upper bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..graph.edges import EdgeKey, edge_key
from ..graph.validation import ViolationReport, check_matching

__all__ = ["Matching", "MatchingResult"]


class Matching:
    """A set of weighted edges forming a (candidate) b-matching.

    Mutating helpers keep the total value and per-node degrees
    incrementally up to date, so the any-time experiments can query the
    current value after every round at O(1) cost.
    """

    def __init__(self) -> None:
        self._edges: Dict[EdgeKey, float] = {}
        self._degrees: Dict[str, int] = {}
        self._value = 0.0

    def add(self, u: str, v: str, weight: float) -> None:
        """Add edge ``{u, v}``; raises if it is already matched."""
        key = edge_key(u, v)
        if key in self._edges:
            raise ValueError(f"edge {key} already in matching")
        self._edges[key] = float(weight)
        self._value += weight
        for node in key:
            self._degrees[node] = self._degrees.get(node, 0) + 1

    def discard(self, u: str, v: str) -> bool:
        """Remove edge ``{u, v}`` if present; returns whether it was."""
        key = edge_key(u, v)
        weight = self._edges.pop(key, None)
        if weight is None:
            return False
        self._value -= weight
        for node in key:
            self._degrees[node] -= 1
            if self._degrees[node] == 0:
                del self._degrees[node]
        return True

    def __contains__(self, key: EdgeKey) -> bool:
        return key in self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[EdgeKey]:
        return iter(self._edges)

    @property
    def value(self) -> float:
        """Total weight of the matching (the objective of Problem 1)."""
        return self._value

    def weight(self, u: str, v: str) -> float:
        """Weight of a matched edge; raises ``KeyError`` if unmatched."""
        return self._edges[edge_key(u, v)]

    def degree(self, node: str) -> int:
        """Matched degree ``|M(v)|`` of ``node``."""
        return self._degrees.get(node, 0)

    def degrees(self) -> Dict[str, int]:
        """A copy of all non-zero matched degrees."""
        return dict(self._degrees)

    def edges(self) -> List[Tuple[str, str, float]]:
        """The matching as sorted ``(u, v, weight)`` rows."""
        return [
            (u, v, w) for (u, v), w in sorted(self._edges.items())
        ]

    def edge_weights(self) -> Dict[EdgeKey, float]:
        """A copy of the key -> weight mapping."""
        return dict(self._edges)

    def copy(self) -> "Matching":
        """An independent copy."""
        clone = Matching()
        clone._edges = dict(self._edges)
        clone._degrees = dict(self._degrees)
        clone._value = self._value
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching(edges={len(self)}, value={self.value:.4f})"


@dataclass
class MatchingResult:
    """The output of a matching algorithm plus execution metadata.

    Attributes
    ----------
    matching:
        The computed b-matching.
    algorithm:
        Human-readable algorithm name (``"GreedyMR"``, ``"StackMR"``, ...).
    rounds:
        Algorithm-level iterations (greedy rounds; stack push+pop rounds).
    mr_jobs:
        Simulated MapReduce jobs executed (0 for centralized algorithms).
        This is the paper's efficiency metric.
    value_history:
        Any-time curve: total matching value after each round.  For
        GreedyMR this is the Figure 5 series.
    duals:
        Final dual variables ``y_v`` (stack algorithms only).
    dual_upper_bound:
        ``(3+2ε)·Σ_v y_v`` — a certified upper bound on the optimum
        derived from dual feasibility of the scaled duals (stack
        algorithms only).
    layers:
        Number of stack layers (stack algorithms only).
    """

    matching: Matching
    algorithm: str
    rounds: int = 0
    mr_jobs: int = 0
    value_history: List[float] = field(default_factory=list)
    duals: Optional[Dict[str, float]] = None
    dual_upper_bound: Optional[float] = None
    layers: int = 0

    @property
    def value(self) -> float:
        """Total weight of the matching."""
        return self.matching.value

    def violations(
        self, capacities: Mapping[str, int]
    ) -> ViolationReport:
        """Capacity-violation report (the ε′ statistic of Figure 4)."""
        return check_matching(capacities, iter(self.matching))

    def iterations_to_fraction(self, fraction: float) -> Optional[int]:
        """First round whose value reaches ``fraction`` of the final value.

        Supports the Figure 5 analysis ("GreedyMR reaches 95% of its
        final b-matching value within X% of the iterations").  Returns
        ``None`` when no history was recorded.
        """
        if not self.value_history:
            return None
        target = fraction * self.value_history[-1]
        for round_number, value in enumerate(self.value_history, start=1):
            if value >= target:
                return round_number
        return len(self.value_history)
