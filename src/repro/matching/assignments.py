"""Turn a matching into the application-level delivery plan.

The matching is a set of undirected edges; applications consume it as
"which items does consumer c receive" / "which consumers does item t
reach" (the paper's featured-item component, §1).  These helpers
project a matching onto a :class:`~repro.graph.bipartite.
BipartiteGraph`'s sides, sparing callers the normalized-edge-order
bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.bipartite import ITEM_SIDE, BipartiteGraph
from .types import Matching

__all__ = ["deliveries_by_consumer", "audiences_by_item"]

Ranked = List[Tuple[str, float]]


def _split(
    graph: BipartiteGraph, matching: Matching
) -> List[Tuple[str, str, float]]:
    rows = []
    for u, v, weight in matching.edges():
        if graph.side(u) == ITEM_SIDE:
            rows.append((u, v, weight))
        else:
            rows.append((v, u, weight))
    return rows


def deliveries_by_consumer(
    graph: BipartiteGraph, matching: Matching
) -> Dict[str, Ranked]:
    """Map each matched consumer to its items, best-first.

    >>> # feed = deliveries_by_consumer(graph, result.matching)
    >>> # feed["alice"] -> [("sunset-photo", 0.9), ...]
    """
    plan: Dict[str, Ranked] = {}
    for item, consumer, weight in _split(graph, matching):
        plan.setdefault(consumer, []).append((item, weight))
    for ranked in plan.values():
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
    return plan


def audiences_by_item(
    graph: BipartiteGraph, matching: Matching
) -> Dict[str, Ranked]:
    """Map each matched item to its audience, best-first."""
    plan: Dict[str, Ranked] = {}
    for item, consumer, weight in _split(graph, matching):
        plan.setdefault(item, []).append((consumer, weight))
    for ranked in plan.values():
        ranked.sort(key=lambda entry: (-entry[1], entry[0]))
    return plan
