"""b-matching algorithms — the paper's core contribution.

Centralized references::

    from repro.matching import greedy_b_matching, stack_b_matching
    from repro.matching import flow_b_matching, lp_b_matching

MapReduce algorithms (the paper's GreedyMR / StackMR / StackGreedyMR)::

    from repro.matching import greedy_mr_b_matching, stack_mr_b_matching

or by name through the registry::

    from repro.matching import solve
    result = solve(graph, "stack_mr", epsilon=1.0, seed=7)
"""

from .assignments import audiences_by_item, deliveries_by_consumer
from .base import ALGORITHMS, solve
from .bruteforce import bruteforce_b_matching
from .exact import (
    exact_b_matching,
    flow_b_matching,
    lp_b_matching,
    lp_upper_bound,
)
from .greedy import greedy_b_matching
from .greedy_mr import greedy_mr_b_matching
from .maximal import (
    MARKING_STRATEGIES,
    is_maximal,
    maximal_b_matching,
    maximal_b_matching_adjacency,
)
from .maximal_mr import mm_records_from_adjacency, mr_maximal_b_matching
from .stack import StackLayer, layer_capacities, stack_b_matching
from .stack_mr import stack_mr_b_matching
from .suitor import suitor_b_matching
from .types import Matching, MatchingResult

__all__ = [
    "ALGORITHMS",
    "MARKING_STRATEGIES",
    "Matching",
    "MatchingResult",
    "StackLayer",
    "audiences_by_item",
    "bruteforce_b_matching",
    "deliveries_by_consumer",
    "exact_b_matching",
    "flow_b_matching",
    "greedy_b_matching",
    "greedy_mr_b_matching",
    "is_maximal",
    "layer_capacities",
    "lp_b_matching",
    "lp_upper_bound",
    "maximal_b_matching",
    "maximal_b_matching_adjacency",
    "mm_records_from_adjacency",
    "mr_maximal_b_matching",
    "solve",
    "stack_b_matching",
    "stack_mr_b_matching",
    "suitor_b_matching",
]
