"""StackMR / StackGreedyMR: the MapReduce stack algorithm (§5.2–5.3).

Each *push* iteration consists of

1. the maximal ``⌈ε·b⌉``-matching subroutine
   (:mod:`repro.matching.maximal_mr`; four MapReduce jobs per inner
   round) producing a stack *layer*,
2. an **update** job that propagates ``y_u/b(u)`` across the layer's
   edges so both endpoints raise their duals by the same
   ``δ(e) = (w(e) − y_u/b(u) − y_v/b(v))/2``, and
3. a **coverage** job that broadcasts the new dual ratios and deletes
   every *weakly covered* edge (Definition 1: coverage at least
   ``w(e)/(3+2ε)``).

The paper folds (2) and (3) into one phase; we split them because the
weak-coverage test needs post-update duals from *both* endpoints, which
costs one extra round of communication per push iteration (job counts
are reported accordingly).

The *pop* phase runs one job per layer, from the top of the stack: all
surviving edges of the layer enter the solution in parallel, nodes whose
residual capacity reaches zero drop their remaining stacked edges.  A
node's capacity can overflow by at most the layer size ``⌈ε·b(v)⌉ − 1``
plus one layer, i.e. the (1+ε)-violation guarantee of Theorem 1.

StackGreedyMR is this exact pipeline with ``strategy="greedy"`` (the
maximal-matching marking stage proposes the heaviest edges instead of
uniform-random ones); ``strategy="weighted"`` gives the third variant
mentioned in §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import EdgeKey, edge_key
from ..mapreduce import KeyValue, MapReduceJob, MapReduceRuntime
from ..mapreduce.errors import RoundLimitExceeded
from .maximal_mr import mm_records_from_adjacency, mr_maximal_b_matching
from .stack import COVERAGE_TOLERANCE, layer_capacities
from .types import Matching, MatchingResult

__all__ = ["stack_mr_b_matching", "StackNode", "PopNode"]

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class StackNode:
    """Push-phase node record: original budget, dual, and live edges."""

    b: int
    y: float
    adj: Dict[str, float]
    stacked_now: FrozenSet[str] = _EMPTY


@dataclass(frozen=True)
class PopNode:
    """Pop-phase node record: residual budget and stacked edges by level."""

    residual: int
    stacked: Dict[str, Tuple[int, float]]


class _UpdateJob(MapReduceJob):
    """Raise duals across the freshly stacked layer (push step 2)."""

    name = "stack-update"

    def map(self, node: str, state: StackNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        ratio = state.y / state.b
        for neighbor in state.stacked_now:
            yield neighbor, ("ratio", node, ratio)

    def reduce(self, node, values: List) -> Iterable[KeyValue]:
        if isinstance(node, tuple):
            yield node, values[0]
            return
        state: Optional[StackNode] = None
        ratios: Dict[str, float] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, ratio = value
                ratios[neighbor] = ratio
        assert state is not None, "push-phase records never vanish"
        my_ratio = state.y / state.b
        increment = 0.0
        for neighbor in state.stacked_now:
            weight = state.adj[neighbor]
            delta = (weight - ratios[neighbor] - my_ratio) / 2.0
            increment += delta
            if node < neighbor:
                yield ("delta", node, neighbor), delta
        new_adj = {
            nbr: w
            for nbr, w in state.adj.items()
            if nbr not in state.stacked_now
        }
        yield node, StackNode(
            b=state.b, y=state.y + increment, adj=new_adj
        )


class _CoverageJob(MapReduceJob):
    """Delete weakly covered edges under the new duals (push step 3)."""

    name = "stack-coverage"

    def __init__(self, epsilon: float) -> None:
        super().__init__()
        self.threshold_factor = 1.0 / (3.0 + 2.0 * epsilon)

    def map(self, node: str, state: StackNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        ratio = state.y / state.b
        for neighbor in state.adj:
            yield neighbor, ("ratio", node, ratio)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[StackNode] = None
        ratios: Dict[str, float] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, ratio = value
                ratios[neighbor] = ratio
        assert state is not None, "push-phase records never vanish"
        my_ratio = state.y / state.b
        new_adj: Dict[str, float] = {}
        for neighbor, weight in state.adj.items():
            coverage = my_ratio + ratios[neighbor]
            if (
                coverage
                < self.threshold_factor * weight - COVERAGE_TOLERANCE
            ):
                new_adj[neighbor] = weight
        yield node, StackNode(b=state.b, y=state.y, adj=new_adj)


class _PopLayerJob(MapReduceJob):
    """Pop one stack layer into the solution (Algorithm 2's pop loop)."""

    name = "stack-pop"

    def __init__(self, level: int) -> None:
        super().__init__()
        self.level = level

    def map(self, node: str, state: PopNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        for neighbor, (level, _) in state.stacked.items():
            if level == self.level:
                yield neighbor, ("inc", node)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[PopNode] = None
        confirmations = set()
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                confirmations.add(value[1])
        if state is None:
            return  # node died in a higher layer; ignore stray messages
        included: List[Tuple[str, float]] = []
        new_stacked: Dict[str, Tuple[int, float]] = {}
        for neighbor, (level, weight) in state.stacked.items():
            if level == self.level:
                if neighbor in confirmations:
                    included.append((neighbor, weight))
                # else: the neighbor died earlier -> the edge is gone
            else:
                new_stacked[neighbor] = (level, weight)
        for neighbor, weight in included:
            if node < neighbor:
                yield ("matched", node, neighbor), weight
        residual = state.residual - len(included)
        if residual > 0 and new_stacked:
            yield node, PopNode(residual=residual, stacked=new_stacked)


def stack_mr_b_matching(
    graph: Graph,
    epsilon: float = 1.0,
    seed: int = 0,
    strategy: str = "uniform",
    runtime: Optional[MapReduceRuntime] = None,
    max_push_rounds: int = 10_000,
    max_inner_rounds: int = 10_000,
) -> MatchingResult:
    """Run StackMR on ``graph`` through the MapReduce simulator.

    Parameters mirror :func:`repro.matching.stack.stack_b_matching`;
    ``strategy="greedy"`` yields StackGreedyMR.  The returned result
    carries the dual variables, the certified dual upper bound
    ``(3+2ε)·Σy_v``, the number of stack layers, and the number of
    simulated MapReduce jobs (the paper's efficiency metric).
    """
    runtime = runtime or MapReduceRuntime()
    jobs_before = runtime.jobs_executed
    capacities = graph.capacities()
    caps_layer = layer_capacities(capacities, epsilon)

    states: Dict[str, StackNode] = {}
    for node in sorted(capacities):
        if capacities[node] <= 0:
            continue
        adj = {
            nbr: w
            for nbr, w in graph.incident(node)
            if capacities.get(nbr, 0) > 0
        }
        states[node] = StackNode(b=capacities[node], y=0.0, adj=adj)

    layers: List[Dict[EdgeKey, float]] = []
    deltas: Dict[EdgeKey, float] = {}
    push_rounds = 0
    update_job = _UpdateJob()
    coverage_job = _CoverageJob(epsilon)

    while True:
        live_edges = sum(len(state.adj) for state in states.values())
        if live_edges == 0:
            break
        if push_rounds >= max_push_rounds:
            raise RoundLimitExceeded("stack-mr-push", max_push_rounds)
        mm_records = mm_records_from_adjacency(
            {node: state.adj for node, state in states.items()},
            caps_layer,
        )
        matched, _ = mr_maximal_b_matching(
            mm_records,
            runtime,
            seed=seed,
            strategy=strategy,
            round_offset=push_rounds * max_inner_rounds,
            max_rounds=max_inner_rounds,
        )
        layers.append(matched)
        stacked_by_node: Dict[str, set] = {}
        for u, v in matched:
            stacked_by_node.setdefault(u, set()).add(v)
            stacked_by_node.setdefault(v, set()).add(u)
        update_records: List[KeyValue] = [
            (
                node,
                StackNode(
                    b=state.b,
                    y=state.y,
                    adj=state.adj,
                    stacked_now=frozenset(
                        stacked_by_node.get(node, ())
                    ),
                ),
            )
            for node, state in sorted(states.items())
        ]
        updated = runtime.run(update_job, update_records)
        states = {}
        for key, value in updated:
            if isinstance(key, tuple) and key[0] == "delta":
                deltas[edge_key(key[1], key[2])] = value
            else:
                states[key] = value
        covered = runtime.run(
            coverage_job, sorted(states.items())
        )
        states = dict(covered)
        push_rounds += 1

    duals = {node: state.y for node, state in states.items()}
    upper_bound = (3.0 + 2.0 * epsilon) * sum(duals.values())

    # ---- pop phase: one job per layer, from the top of the stack ----
    stacked_edges: Dict[str, Dict[str, Tuple[int, float]]] = {}
    for level, layer in enumerate(layers):
        for (u, v), weight in layer.items():
            stacked_edges.setdefault(u, {})[v] = (level, weight)
            stacked_edges.setdefault(v, {})[u] = (level, weight)
    pop_records: List[KeyValue] = [
        (node, PopNode(residual=capacities[node], stacked=stacked))
        for node, stacked in sorted(stacked_edges.items())
    ]
    matching = Matching()
    for level in range(len(layers) - 1, -1, -1):
        output = runtime.run(_PopLayerJob(level), pop_records)
        pop_records = []
        for key, value in output:
            if isinstance(key, tuple) and key[0] == "matched":
                matching.add(key[1], key[2], value)
            else:
                pop_records.append((key, value))

    name = "StackMR" if strategy == "uniform" else (
        "StackGreedyMR" if strategy == "greedy" else "StackWeightedMR"
    )
    return MatchingResult(
        matching=matching,
        algorithm=name,
        rounds=push_rounds + len(layers),
        mr_jobs=runtime.jobs_executed - jobs_before,
        value_history=[matching.value],
        duals=duals,
        dual_upper_bound=upper_bound,
        layers=len(layers),
    )
