"""StackMR / StackGreedyMR: the MapReduce stack algorithm (§5.2–5.3).

Each *push* iteration consists of

1. the maximal ``⌈ε·b⌉``-matching subroutine
   (:mod:`repro.matching.maximal_mr`; four MapReduce jobs per inner
   round) producing a stack *layer*,
2. an **update** job that propagates ``y_u/b(u)`` across the layer's
   edges so both endpoints raise their duals by the same
   ``δ(e) = (w(e) − y_u/b(u) − y_v/b(v))/2``, and
3. a **coverage** job that broadcasts the new dual ratios and deletes
   every *weakly covered* edge (Definition 1: coverage at least
   ``w(e)/(3+2ε)``).

The paper folds (2) and (3) into one phase; we split them because the
weak-coverage test needs post-update duals from *both* endpoints, which
costs one extra round of communication per push iteration (job counts
are reported accordingly).

The *pop* phase runs one job per layer, from the top of the stack: all
surviving edges of the layer enter the solution in parallel, nodes whose
residual capacity reaches zero drop their remaining stacked edges.  A
node's capacity can overflow by at most the layer size ``⌈ε·b(v)⌉ − 1``
plus one layer, i.e. the (1+ε)-violation guarantee of Theorem 1.

StackGreedyMR is this exact pipeline with ``strategy="greedy"`` (the
maximal-matching marking stage proposes the heaviest edges instead of
uniform-random ones); ``strategy="weighted"`` gives the third variant
mentioned in §6.

Resident-state rounds (``delta=True``, the default)
---------------------------------------------------

On the delta iteration plane every push- and pop-phase job runs in
scan mode (:meth:`~repro.mapreduce.runtime.MapReduceRuntime.
run_stateful`): the ``StackNode``/``PopNode`` records live in a
partition-aligned resident store (spillable to the runtime's
filesystem) and only the lightweight messages — dual ratios for (2)
and (3), pop confirmations for the pop jobs — flow through the
shuffle.  The update job receives the fresh layer's stacked sets as
side data instead of re-shipping annotated copies of every node
record, and nodes outside the layer are quiescent: the scan visits
them, finds nothing changed, and emits no delta.  The maximal
subroutine (1) runs its four stages on the same plane.  Matchings,
duals, layer and round counts, and job counts are bit-identical to the
full-state path (``delta=False``), which remains available for A/B
benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import EdgeKey, edge_key
from ..mapreduce import KeyValue, MapReduceJob, MapReduceRuntime, Retired
from ..mapreduce.errors import RoundLimitExceeded
from .maximal_mr import mm_records_from_adjacency, mr_maximal_b_matching
from .stack import COVERAGE_TOLERANCE, layer_capacities
from .types import Matching, MatchingResult

__all__ = ["stack_mr_b_matching", "StackNode", "PopNode"]

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class StackNode:
    """Push-phase node record: original budget, dual, and live edges."""

    b: int
    y: float
    adj: Dict[str, float]
    stacked_now: FrozenSet[str] = _EMPTY


@dataclass(frozen=True)
class PopNode:
    """Pop-phase node record: residual budget and stacked edges by level."""

    residual: int
    stacked: Dict[str, Tuple[int, float]]


class _UpdateJob(MapReduceJob):
    """Raise duals across the freshly stacked layer (push step 2)."""

    name = "stack-update"

    def map(self, node: str, state: StackNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        ratio = state.y / state.b
        # Sorted iteration: frozenset order depends on the process's
        # string hash seed, and the dual increment below is a float
        # sum, so a deterministic order is what makes runs (and the
        # golden convergence curves) bit-identical across machines.
        for neighbor in sorted(state.stacked_now):
            yield neighbor, ("ratio", node, ratio)

    def reduce(self, node, values: List) -> Iterable[KeyValue]:
        if isinstance(node, tuple):
            yield node, values[0]
            return
        state: Optional[StackNode] = None
        ratios: Dict[str, float] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, ratio = value
                ratios[neighbor] = ratio
        assert state is not None, "push-phase records never vanish"
        my_ratio = state.y / state.b
        increment = 0.0
        for neighbor in sorted(state.stacked_now):
            weight = state.adj[neighbor]
            delta = (weight - ratios[neighbor] - my_ratio) / 2.0
            increment += delta
            if node < neighbor:
                yield ("delta", node, neighbor), delta
        new_adj = {
            nbr: w
            for nbr, w in state.adj.items()
            if nbr not in state.stacked_now
        }
        yield node, StackNode(
            b=state.b, y=state.y + increment, adj=new_adj
        )

    # -- the resident-state (scan-mode) variant ----------------------------
    #
    # On the delta plane the layer's stacked sets travel as side data
    # (``side_data["stacked"]``) instead of being baked into per-round
    # copies of every node record, and only the stacked nodes exchange
    # ratio messages — everyone else is visited by the scan, matches
    # the quiescent fast path, and emits nothing.

    def map_resident(
        self, node: str, state: StackNode
    ) -> Iterable[KeyValue]:
        stacked = self.side_data["stacked"].get(node)
        if not stacked:
            return
        ratio = state.y / state.b
        for neighbor in sorted(stacked):
            yield neighbor, ("ratio", node, ratio)

    def reduce_state(self, node, state: Optional[StackNode], values: List):
        if state is None:
            return None, []
        stacked = self.side_data["stacked"].get(node)
        if not stacked:
            return state, []  # quiescent: no layer edges at this node
        ratios = {value[1]: value[2] for value in values}
        my_ratio = state.y / state.b
        increment = 0.0
        outputs: List[KeyValue] = []
        for neighbor in sorted(stacked):
            weight = state.adj[neighbor]
            delta = (weight - ratios[neighbor] - my_ratio) / 2.0
            increment += delta
            if node < neighbor:
                outputs.append((("delta", node, neighbor), delta))
        new_adj = {
            nbr: w
            for nbr, w in state.adj.items()
            if nbr not in stacked
        }
        new_state = StackNode(
            b=state.b, y=state.y + increment, adj=new_adj
        )
        return new_state, outputs


class _CoverageJob(MapReduceJob):
    """Delete weakly covered edges under the new duals (push step 3)."""

    name = "stack-coverage"

    def __init__(self, epsilon: float) -> None:
        super().__init__()
        self.threshold_factor = 1.0 / (3.0 + 2.0 * epsilon)

    def map(self, node: str, state: StackNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        ratio = state.y / state.b
        for neighbor in state.adj:
            yield neighbor, ("ratio", node, ratio)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[StackNode] = None
        ratios: Dict[str, float] = {}
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                _, neighbor, ratio = value
                ratios[neighbor] = ratio
        assert state is not None, "push-phase records never vanish"
        my_ratio = state.y / state.b
        new_adj: Dict[str, float] = {}
        for neighbor, weight in state.adj.items():
            coverage = my_ratio + ratios[neighbor]
            if (
                coverage
                < self.threshold_factor * weight - COVERAGE_TOLERANCE
            ):
                new_adj[neighbor] = weight
        yield node, StackNode(b=state.b, y=state.y, adj=new_adj)

    # -- the resident-state (scan-mode) variant ----------------------------

    def map_resident(
        self, node: str, state: StackNode
    ) -> Iterable[KeyValue]:
        ratio = state.y / state.b
        for neighbor in state.adj:
            yield neighbor, ("ratio", node, ratio)

    def reduce_state(self, node, state: Optional[StackNode], values: List):
        if state is None:
            return None, []
        if not state.adj and not values:
            return state, []  # isolated node: nothing to re-cover
        ratios = {value[1]: value[2] for value in values}
        my_ratio = state.y / state.b
        new_adj: Dict[str, float] = {}
        for neighbor, weight in state.adj.items():
            coverage = my_ratio + ratios[neighbor]
            if (
                coverage
                < self.threshold_factor * weight - COVERAGE_TOLERANCE
            ):
                new_adj[neighbor] = weight
        if new_adj == state.adj:
            return state, []  # quiescent: no edge became covered
        return StackNode(b=state.b, y=state.y, adj=new_adj), []


class _PopLayerJob(MapReduceJob):
    """Pop one stack layer into the solution (Algorithm 2's pop loop)."""

    name = "stack-pop"

    def __init__(self, level: int) -> None:
        super().__init__()
        self.level = level

    def map(self, node: str, state: PopNode) -> Iterable[KeyValue]:
        yield node, ("self", state)
        for neighbor, (level, _) in state.stacked.items():
            if level == self.level:
                yield neighbor, ("inc", node)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        state: Optional[PopNode] = None
        confirmations = set()
        for value in values:
            if value[0] == "self":
                state = value[1]
            else:
                confirmations.add(value[1])
        if state is None:
            return  # node died in a higher layer; ignore stray messages
        included: List[Tuple[str, float]] = []
        new_stacked: Dict[str, Tuple[int, float]] = {}
        for neighbor, (level, weight) in state.stacked.items():
            if level == self.level:
                if neighbor in confirmations:
                    included.append((neighbor, weight))
                # else: the neighbor died earlier -> the edge is gone
            else:
                new_stacked[neighbor] = (level, weight)
        for neighbor, weight in included:
            if node < neighbor:
                yield ("matched", node, neighbor), weight
        residual = state.residual - len(included)
        if residual > 0 and new_stacked:
            yield node, PopNode(residual=residual, stacked=new_stacked)

    # -- the resident-state (scan-mode) variant ----------------------------

    def map_resident(
        self, node: str, state: PopNode
    ) -> Iterable[KeyValue]:
        for neighbor, (level, _) in state.stacked.items():
            if level == self.level:
                yield neighbor, ("inc", node)

    def reduce_state(self, node, state: Optional[PopNode], values: List):
        if state is None:
            return None, []  # node died in a higher layer
        confirmations = {value[1] for value in values}
        included: List[Tuple[str, float]] = []
        new_stacked: Dict[str, Tuple[int, float]] = {}
        for neighbor, (level, weight) in state.stacked.items():
            if level == self.level:
                if neighbor in confirmations:
                    included.append((neighbor, weight))
                # else: the neighbor died earlier -> the edge is gone
            else:
                new_stacked[neighbor] = (level, weight)
        outputs: List[KeyValue] = [
            (("matched", node, neighbor), weight)
            for neighbor, weight in included
            if node < neighbor
        ]
        residual = state.residual - len(included)
        if residual > 0 and new_stacked:
            return (
                PopNode(residual=residual, stacked=new_stacked),
                outputs,
            )
        return Retired(), outputs


def _initial_states(
    graph: Graph, capacities: Dict[str, int]
) -> List[Tuple[str, StackNode]]:
    """The push-phase seed records, in sorted node order."""
    states: List[Tuple[str, StackNode]] = []
    for node in sorted(capacities):
        if capacities[node] <= 0:
            continue
        adj = {
            nbr: w
            for nbr, w in graph.incident(node)
            if capacities.get(nbr, 0) > 0
        }
        states.append((node, StackNode(b=capacities[node], y=0.0, adj=adj)))
    return states


def _stacked_by_node(matched: Dict[EdgeKey, float]) -> Dict[str, frozenset]:
    """Each node's partners in a freshly stacked layer."""
    stacked: Dict[str, set] = {}
    for u, v in matched:
        stacked.setdefault(u, set()).add(v)
        stacked.setdefault(v, set()).add(u)
    return {node: frozenset(partners) for node, partners in stacked.items()}


def stack_mr_b_matching(
    graph: Graph,
    epsilon: float = 1.0,
    seed: int = 0,
    strategy: str = "uniform",
    runtime: Optional[MapReduceRuntime] = None,
    max_push_rounds: int = 10_000,
    max_inner_rounds: int = 10_000,
    delta: bool = True,
) -> MatchingResult:
    """Run StackMR on ``graph`` through the MapReduce simulator.

    Parameters mirror :func:`repro.matching.stack.stack_b_matching`;
    ``strategy="greedy"`` yields StackGreedyMR.  The returned result
    carries the dual variables, the certified dual upper bound
    ``(3+2ε)·Σy_v``, the number of stack layers, and the number of
    simulated MapReduce jobs (the paper's efficiency metric).

    ``delta`` selects the execution plane: ``True`` (default) keeps
    push- and pop-phase node records resident
    (:meth:`~repro.mapreduce.runtime.MapReduceRuntime.run_stateful`,
    scan mode — the maximal subroutine included), ``False`` re-ships
    the full state through every job as the paper's formulation does.
    Matchings, duals, layer/round counts, and job counts are
    bit-identical across the two paths.
    """
    runtime = runtime or MapReduceRuntime()
    jobs_before = runtime.jobs_executed
    capacities = graph.capacities()
    caps_layer = layer_capacities(capacities, epsilon)
    initial = _initial_states(graph, capacities)

    layers: List[Dict[EdgeKey, float]] = []
    deltas: Dict[EdgeKey, float] = {}
    push_rounds = 0
    update_job = _UpdateJob()
    coverage_job = _CoverageJob(epsilon)

    push_store = None
    states: Dict[str, StackNode] = {}
    if delta:
        push_store = runtime.state_store("stack-push")
        push_store.load(initial)
        # No driver-side copy: the store is the single owner, so its
        # out-of-core parking actually bounds between-round memory.
        del initial
    else:
        states = dict(initial)

    def current_states() -> List[Tuple[str, StackNode]]:
        if push_store is not None:
            return list(push_store.records())
        return list(states.items())

    try:
        while True:
            snapshot = current_states()
            live_edges = sum(len(state.adj) for _, state in snapshot)
            if live_edges == 0:
                break
            if push_rounds >= max_push_rounds:
                raise RoundLimitExceeded(
                    "stack-mr-push", max_push_rounds
                )
            mm_records = mm_records_from_adjacency(
                {node: state.adj for node, state in snapshot},
                caps_layer,
            )
            matched, _ = mr_maximal_b_matching(
                mm_records,
                runtime,
                seed=seed,
                strategy=strategy,
                round_offset=push_rounds * max_inner_rounds,
                max_rounds=max_inner_rounds,
                delta=delta,
            )
            layers.append(matched)
            stacked = _stacked_by_node(matched)
            if push_store is not None:
                updated, _ = runtime.run_stateful(
                    update_job,
                    push_store,
                    scan=True,
                    side_data={"stacked": stacked},
                )
                for key, value in updated:
                    deltas[edge_key(key[1], key[2])] = value
                runtime.run_stateful(
                    coverage_job, push_store, scan=True
                )
            else:
                update_records: List[KeyValue] = [
                    (
                        node,
                        StackNode(
                            b=state.b,
                            y=state.y,
                            adj=state.adj,
                            stacked_now=stacked.get(node, _EMPTY),
                        ),
                    )
                    for node, state in sorted(states.items())
                ]
                updated = runtime.run(update_job, update_records)
                states = {}
                for key, value in updated:
                    if isinstance(key, tuple) and key[0] == "delta":
                        deltas[edge_key(key[1], key[2])] = value
                    else:
                        states[key] = value
                covered = runtime.run(
                    coverage_job, sorted(states.items())
                )
                states = dict(covered)
            push_rounds += 1

        duals = {node: state.y for node, state in current_states()}
    finally:
        if push_store is not None:
            push_store.close()
    upper_bound = (3.0 + 2.0 * epsilon) * sum(
        duals[node] for node in sorted(duals)
    )

    # ---- pop phase: one job per layer, from the top of the stack ----
    stacked_edges: Dict[str, Dict[str, Tuple[int, float]]] = {}
    for level, layer in enumerate(layers):
        for (u, v), weight in layer.items():
            stacked_edges.setdefault(u, {})[v] = (level, weight)
            stacked_edges.setdefault(v, {})[u] = (level, weight)
    pop_records: List[KeyValue] = [
        (node, PopNode(residual=capacities[node], stacked=stacked))
        for node, stacked in sorted(stacked_edges.items())
    ]
    matching = Matching()
    if delta:
        pop_store = runtime.state_store("stack-pop")
        pop_store.load(pop_records)
        try:
            for level in range(len(layers) - 1, -1, -1):
                output, _ = runtime.run_stateful(
                    _PopLayerJob(level), pop_store, scan=True
                )
                for key, value in output:
                    matching.add(key[1], key[2], value)
        finally:
            pop_store.close()
    else:
        for level in range(len(layers) - 1, -1, -1):
            output = runtime.run(_PopLayerJob(level), pop_records)
            pop_records = []
            for key, value in output:
                if isinstance(key, tuple) and key[0] == "matched":
                    matching.add(key[1], key[2], value)
                else:
                    pop_records.append((key, value))

    name = "StackMR" if strategy == "uniform" else (
        "StackGreedyMR" if strategy == "greedy" else "StackWeightedMR"
    )
    return MatchingResult(
        matching=matching,
        algorithm=name,
        rounds=push_rounds + len(layers),
        mr_jobs=runtime.jobs_executed - jobs_before,
        value_history=[matching.value],
        duals=duals,
        dual_upper_bound=upper_bound,
        layers=len(layers),
    )
