"""Algorithm registry: one entry point for every b-matching solver.

The experiment harness and the examples address algorithms by name;
:func:`solve` dispatches and forwards algorithm-specific keyword
arguments (``epsilon``, ``seed``, ``strategy``, ``runtime``, ...).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..graph.bipartite import Graph
from .bruteforce import bruteforce_b_matching
from .exact import exact_b_matching, flow_b_matching, lp_b_matching
from .greedy import greedy_b_matching
from .greedy_mr import greedy_mr_b_matching
from .stack import stack_b_matching
from .stack_mr import stack_mr_b_matching
from .suitor import suitor_b_matching
from .types import MatchingResult

__all__ = ["ALGORITHMS", "solve"]


def _stack_centralized(graph: Graph, **kwargs) -> MatchingResult:
    return stack_b_matching(graph, **kwargs)


def _stack_feasible(graph: Graph, **kwargs) -> MatchingResult:
    return stack_b_matching(graph, feasible=True, **kwargs)


def _stack_greedy_centralized(graph: Graph, **kwargs) -> MatchingResult:
    return stack_b_matching(graph, strategy="greedy", **kwargs)


def _stack_greedy_mr(graph: Graph, **kwargs) -> MatchingResult:
    return stack_mr_b_matching(graph, strategy="greedy", **kwargs)


def _stack_weighted_mr(graph: Graph, **kwargs) -> MatchingResult:
    return stack_mr_b_matching(graph, strategy="weighted", **kwargs)


#: Registry of all matching algorithms by harness name.
ALGORITHMS: Dict[str, Callable[..., MatchingResult]] = {
    "greedy": greedy_b_matching,
    "greedy_mr": greedy_mr_b_matching,
    "stack": _stack_centralized,
    "stack_greedy": _stack_greedy_centralized,
    "stack_feasible": _stack_feasible,
    "stack_mr": stack_mr_b_matching,
    "stack_greedy_mr": _stack_greedy_mr,
    "stack_weighted_mr": _stack_weighted_mr,
    "suitor": suitor_b_matching,
    "exact_flow": flow_b_matching,
    "exact_lp": lp_b_matching,
    "exact": exact_b_matching,
    "bruteforce": bruteforce_b_matching,
}


def solve(graph: Graph, algorithm: str, **kwargs) -> MatchingResult:
    """Run the named algorithm on ``graph``.

    >>> from repro.graph import star_graph
    >>> solve(star_graph(4, 2), "greedy").value
    7.0
    """
    try:
        runner = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {known}"
        ) from None
    return runner(graph, **kwargs)
