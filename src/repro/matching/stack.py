"""The centralized stack (primal-dual) b-matching algorithm (§5.2).

This is the sequential reference for StackMR.  Both the paper's variants
are implemented on a shared push phase:

* **Algorithm 2** (:func:`stack_b_matching` with ``feasible=False``) —
  the StackMR variant evaluated in the paper: the pop phase includes
  entire layers in parallel and may violate capacities by a factor of at
  most ``(1+ε)``.  Approximation guarantee ``1/(6+ε)``.
* **Algorithm 1** (``feasible=True``) — the variant that satisfies all
  capacities exactly: layer edges that would overflow a node become
  *overflow edges* and are repaired afterwards through maximal-matching
  sublayers filtered by the ``(1+ε)·δ`` dominance rule.

Push phase
----------
While edges remain, compute a maximal ``⌈ε·b⌉``-matching (a *layer*),
raise the dual of each stacked edge ``e=(u,v)`` by

    δ(e) = (w(e) − y_u/b(u) − y_v/b(v)) / 2

on both endpoints (all edges of a layer in parallel, i.e. against the
pre-layer duals), then delete every *weakly covered* edge, i.e. any
remaining edge with

    y_u/b(u) + y_v/b(v) ≥ w(e) / (3+2ε)             (Definition 1).

Note on the ε: the paper's text extraction dropped every ε glyph; the
layer capacity must be ``⌈ε·b(v)⌉`` (not ``⌈b(v)⌉``) for the claimed
``(1+ε)`` violation bound to hold — see DESIGN.md.

On termination every original edge is covered at least ``1/(3+2ε)``
of its weight, so the scaled duals ``(3+2ε)·y`` are dual-feasible and
``(3+2ε)·Σ_v y_v`` is a certified upper bound on the optimum (exposed as
``MatchingResult.dual_upper_bound``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import EdgeKey, edge_key
from ..mapreduce.errors import RoundLimitExceeded
from .maximal import maximal_b_matching_adjacency
from .types import Matching, MatchingResult

__all__ = ["StackLayer", "stack_b_matching", "layer_capacities", "COVERAGE_TOLERANCE"]

#: Numerical slack when testing Definition 1 (weak coverage).
COVERAGE_TOLERANCE = 1e-12


@dataclass
class StackLayer:
    """One layer of the distributed stack: a maximal ⌈εb⌉-matching.

    ``deltas`` records δ(e) for every stacked edge — needed by
    Algorithm 1's repair phase and by the dual bookkeeping tests.
    """

    edges: Dict[EdgeKey, float] = field(default_factory=dict)
    deltas: Dict[EdgeKey, float] = field(default_factory=dict)


def layer_capacities(
    capacities: Dict[str, int], epsilon: float
) -> Dict[str, int]:
    """Per-layer budgets ``⌈ε·b(v)⌉`` (at least 1 for capacitated nodes)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return {
        node: max(1, math.ceil(epsilon * b)) if b > 0 else 0
        for node, b in capacities.items()
    }


def _push_phase(
    graph: Graph,
    epsilon: float,
    rng: random.Random,
    strategy: str,
    max_rounds: int,
) -> Tuple[List[StackLayer], Dict[str, float]]:
    """Run the push phase; returns the stack and the final duals."""
    capacities = graph.capacities()
    adjacency = {
        node: {
            nbr: w
            for nbr, w in nbrs.items()
            if capacities.get(nbr, 0) > 0
        }
        for node, nbrs in graph.adjacency_copy().items()
        if capacities.get(node, 0) > 0
    }
    duals = {node: 0.0 for node in adjacency}
    caps_layer = layer_capacities(capacities, epsilon)
    threshold_factor = 1.0 / (3.0 + 2.0 * epsilon)
    layers: List[StackLayer] = []

    for _ in range(max_rounds):
        if not any(adjacency.values()):
            return layers, duals
        matched = maximal_b_matching_adjacency(
            adjacency, caps_layer, rng=rng, strategy=strategy
        )
        layer = StackLayer()
        increments: Dict[str, float] = {}
        for (u, v), weight in matched.items():
            delta = (
                weight
                - duals[u] / capacities[u]
                - duals[v] / capacities[v]
            ) / 2.0
            layer.edges[(u, v)] = weight
            layer.deltas[(u, v)] = delta
            increments[u] = increments.get(u, 0.0) + delta
            increments[v] = increments.get(v, 0.0) + delta
            del adjacency[u][v]
            del adjacency[v][u]
        for node, increment in increments.items():
            duals[node] += increment
        # Delete weakly covered edges (Definition 1) under the new duals.
        for node in list(adjacency):
            neighbors = adjacency[node]
            for nbr in [n for n in neighbors if node < n]:
                weight = neighbors[nbr]
                coverage = (
                    duals[node] / capacities[node]
                    + duals[nbr] / capacities[nbr]
                )
                if coverage >= threshold_factor * weight - COVERAGE_TOLERANCE:
                    del adjacency[node][nbr]
                    del adjacency[nbr][node]
        layers.append(layer)
    raise RoundLimitExceeded("stack-push", max_rounds)


def _pop_violating(
    layers: List[StackLayer], capacities: Dict[str, int]
) -> Matching:
    """Algorithm 2's pop: include whole layers; allow (1+ε) violations."""
    residual = dict(capacities)
    dead: Set[str] = set()
    matching = Matching()
    for layer in reversed(layers):
        included_nodes: Dict[str, int] = {}
        for (u, v), weight in sorted(layer.edges.items()):
            if u in dead or v in dead:
                continue
            matching.add(u, v, weight)
            included_nodes[u] = included_nodes.get(u, 0) + 1
            included_nodes[v] = included_nodes.get(v, 0) + 1
        for node, count in included_nodes.items():
            residual[node] -= count
            if residual[node] <= 0:
                dead.add(node)
    return matching


def _pop_feasible(
    layers: List[StackLayer],
    capacities: Dict[str, int],
    epsilon: float,
    rng: random.Random,
    strategy: str,
    max_rounds: int,
) -> Matching:
    """Algorithm 1's pop: overflow edges are set aside and repaired."""
    residual = dict(capacities)
    dead: Set[str] = set()
    matching = Matching()
    overflow: Dict[EdgeKey, Tuple[float, float]] = {}  # key -> (w, δ)

    for layer in reversed(layers):
        live = {
            key: weight
            for key, weight in layer.edges.items()
            if key[0] not in dead and key[1] not in dead
        }
        counts: Dict[str, int] = {}
        for u, v in live:
            counts[u] = counts.get(u, 0) + 1
            counts[v] = counts.get(v, 0) + 1
        exceeded = {
            node
            for node, count in counts.items()
            if count > residual[node]
        }
        for key, weight in sorted(live.items()):
            u, v = key
            if u in exceeded or v in exceeded:
                overflow[key] = (weight, layer.deltas[key])
            else:
                matching.add(u, v, weight)
                residual[u] -= 1
                residual[v] -= 1
        # Nodes whose tentative inclusion overflowed lose their remaining
        # (lower-layer) stacked edges; saturated nodes die as usual.
        dead.update(exceeded)
        dead.update(node for node, r in residual.items() if r <= 0)

    # Repair: drain the overflow edges through dominance-filtered
    # maximal-matching sublayers (lines 19-25 of Algorithm 1).
    for _ in range(max_rounds):
        overflow = {
            key: value
            for key, value in overflow.items()
            if residual[key[0]] > 0 and residual[key[1]] > 0
        }
        if not overflow:
            return matching
        best_delta: Dict[str, float] = {}
        second_delta: Dict[str, float] = {}
        for (u, v), (_, delta) in overflow.items():
            for node in (u, v):
                if delta > best_delta.get(node, float("-inf")):
                    second_delta[node] = best_delta.get(
                        node, float("-inf")
                    )
                    best_delta[node] = delta
                elif delta > second_delta.get(node, float("-inf")):
                    second_delta[node] = delta
        eligible: Dict[EdgeKey, float] = {}
        for key, (weight, delta) in overflow.items():
            dominated = False
            for node in key:
                # The strongest incompatible δ at this endpoint: the best
                # one, unless that best is this edge itself.
                rival = best_delta[node]
                if rival == delta and second_delta[node] <= delta:
                    rival = second_delta[node]
                if rival > (1.0 + epsilon) * delta:
                    dominated = True
                    break
            if not dominated:
                eligible[key] = weight
        adjacency: Dict[str, Dict[str, float]] = {}
        for (u, v), weight in eligible.items():
            adjacency.setdefault(u, {})[v] = weight
            adjacency.setdefault(v, {})[u] = weight
        sublayer = maximal_b_matching_adjacency(
            adjacency, residual, rng=rng, strategy=strategy
        )
        for (u, v), weight in sublayer.items():
            matching.add(u, v, weight)
            residual[u] -= 1
            residual[v] -= 1
            del overflow[(u, v)]
    raise RoundLimitExceeded("stack-repair", max_rounds)


def stack_b_matching(
    graph: Graph,
    epsilon: float = 1.0,
    seed: int = 0,
    strategy: str = "uniform",
    feasible: bool = False,
    max_rounds: int = 100_000,
) -> MatchingResult:
    """Run the centralized stack algorithm on ``graph``.

    Parameters
    ----------
    epsilon:
        The slack parameter ε > 0: layer capacity factor, weak-coverage
        threshold ``1/(3+2ε)``, and (for Algorithm 2) the allowed
        capacity-violation factor ``1+ε``.
    seed, strategy:
        Seed and marking strategy for the randomized maximal-matching
        engine (``"uniform"``, ``"greedy"``, ``"weighted"``).
    feasible:
        ``False`` → Algorithm 2 (may violate capacities, the paper's
        StackMR); ``True`` → Algorithm 1 (strictly feasible).
    """
    rng = random.Random(seed)
    layers, duals = _push_phase(
        graph, epsilon, rng, strategy, max_rounds
    )
    capacities = graph.capacities()
    if feasible:
        matching = _pop_feasible(
            layers, capacities, epsilon, rng, strategy, max_rounds
        )
        name = "StackFeasible"
    else:
        matching = _pop_violating(layers, capacities)
        name = "Stack" if strategy == "uniform" else "StackGreedy"
    upper_bound = (3.0 + 2.0 * epsilon) * sum(duals.values())
    return MatchingResult(
        matching=matching,
        algorithm=name,
        rounds=2 * len(layers),  # one push + one pop round per layer
        value_history=[matching.value],
        duals=duals,
        dual_upper_bound=upper_bound,
        layers=len(layers),
    )
