"""MapReduce implementation of Garrido et al.'s maximal b-matching (§5.3).

One MapReduce job per stage (marking, selection, matching, cleanup), all
sharing the communication pattern the paper describes: the graph is kept
as node-keyed adjacency lists; each map emits, for every incident edge,
the node's local view of the edge state to *both* endpoints, and each
reduce unifies the two views back into a consistent adjacency list.

Edge states of the paper map onto this implementation as follows:

=====  =========================================================
``E``  edge present in ``MMNode.adj`` with empty mark/select sets
``K``  edge present with a non-empty ``marked`` set
``F``  edge present with a non-empty ``selected`` set
``M``  edge emitted as a ``("matched", u, v)`` output record
``D``  edge absent from both endpoints' adjacency lists
=====  =========================================================

Randomness is per-node and derived from ``stable_hash((seed, round,
stage, node))``, so runs are reproducible and independent of task
placement — exactly what a deterministic-seeded Hadoop job would do.

Resident-state rounds (``delta=True``)
--------------------------------------

On the delta iteration plane (:meth:`~repro.mapreduce.runtime.
MapReduceRuntime.run_stateful`, scan mode) the node records stay in a
partition-aligned resident store and each stage's map emits only the
*cross* view — ``(neighbor, ("edge", node, view))`` — instead of
posting every view to both endpoints plus a capacity self-message.
The reduce recomputes the node's own local views from resident state
(the per-node RNG makes that free of coordination) and merges them
with the arrived neighbor views, halving the shuffled records per
stage while producing bit-identical matchings, round counts, and job
counts (the state-unification rules are symmetric, so merge order
cannot matter).  StackMR drives this path for its inner subroutine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..graph.edges import EdgeKey, edge_key
from ..mapreduce import (
    KeyValue,
    MapReduceJob,
    MapReduceRuntime,
    Retired,
    RoundLimitExceeded,
    stable_hash,
)
from ..mapreduce.state import ResidentStateStore
from .maximal import choose_edges

__all__ = ["MMEdge", "MMNode", "mm_records_from_adjacency", "mr_maximal_b_matching"]

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class MMEdge:
    """One endpoint's view of an edge's state in the maximal matching."""

    weight: float
    marked: FrozenSet[str] = _EMPTY
    selected: FrozenSet[str] = _EMPTY


@dataclass(frozen=True)
class MMNode:
    """A node record: remaining capacity and incident edge views."""

    b: int
    adj: Dict[str, MMEdge]


def mm_records_from_adjacency(
    adjacency: Dict[str, Dict[str, float]],
    capacities: Dict[str, int],
) -> List[KeyValue]:
    """Build the initial node records for the subroutine.

    Nodes with no capacity or no live edges are excluded up front (their
    edges can never be matched, mirroring the centralized preprocessing).
    """
    records: List[KeyValue] = []
    for node in sorted(adjacency):
        if capacities.get(node, 0) <= 0:
            continue
        adj = {
            nbr: MMEdge(weight=w)
            for nbr, w in adjacency[node].items()
            if capacities.get(nbr, 0) > 0
        }
        if adj:
            records.append((node, MMNode(b=int(capacities[node]), adj=adj)))
    return records


def _node_rng(seed: int, round_index: int, stage: str, node: str) -> random.Random:
    """A reproducible per-node, per-stage random generator."""
    return random.Random(stable_hash((seed, round_index, stage, node)))


class _StageJob(MapReduceJob):
    """Shared communication pattern for all four stages.

    Subclasses implement :meth:`local_views` (the stage's local decision,
    returning each edge's updated view) and :meth:`merge` (the state
    unification rule applied in the reduce).
    """

    stage = "abstract"

    def __init__(self, seed: int, round_index: int, strategy: str) -> None:
        self.name = f"maximal-{self.stage}"
        super().__init__()
        self.seed = seed
        self.round_index = round_index
        self.strategy = strategy

    # -- to be provided by each stage -------------------------------------

    def local_views(
        self, node: str, state: MMNode, rng: random.Random
    ) -> Dict[str, MMEdge]:
        raise NotImplementedError

    def merge(self, mine: MMEdge, theirs: MMEdge) -> MMEdge:
        raise NotImplementedError

    def new_capacity(self, state: MMNode, views: Dict[str, MMEdge]) -> int:
        """Capacity after this stage (only cleanup changes it)."""
        return state.b

    def extra_output(
        self, node: str, state: MMNode, views: Dict[str, MMEdge]
    ) -> Iterable[KeyValue]:
        """Additional output records (cleanup emits matched edges)."""
        return ()

    def keep_view(self, view: MMEdge) -> bool:
        """Whether the local view keeps the edge alive (cleanup prunes)."""
        return True

    # -- the shared pattern ----------------------------------------------------

    def map(self, node: str, state: MMNode) -> Iterable[KeyValue]:
        rng = _node_rng(self.seed, self.round_index, self.stage, node)
        views = self.local_views(node, state, rng)
        yield node, ("cap", self.new_capacity(state, views))
        for neighbor, view in views.items():
            if not self.keep_view(view):
                continue
            yield node, ("edge", neighbor, view)
            yield neighbor, ("edge", node, view)
        yield from self.extra_output(node, state, views)

    def reduce(self, node: str, values: List) -> Iterable[KeyValue]:
        if isinstance(node, tuple) and node and node[0] == "matched":
            # Matched-edge records emitted by cleanup maps: pass through
            # (emitted once, from the smaller endpoint).
            yield node, values[0]
            return
        capacity: Optional[int] = None
        views: Dict[str, List[MMEdge]] = {}
        for value in values:
            kind = value[0]
            if kind == "cap":
                capacity = value[1]
            else:
                _, neighbor, view = value
                views.setdefault(neighbor, []).append(view)
        if capacity is None:
            # The node itself was dropped earlier; ignore stray messages.
            return
        adj: Dict[str, MMEdge] = {}
        for neighbor, pair in sorted(views.items()):
            if len(pair) != 2:
                continue  # one side dropped the edge -> it is dead
            adj[neighbor] = self.merge(pair[0], pair[1])
        if capacity > 0 and adj:
            yield node, MMNode(b=capacity, adj=adj)

    # -- the resident-state (scan-mode) variant ----------------------------

    def map_resident(
        self, node: str, state: MMNode
    ) -> Iterable[KeyValue]:
        """Emit only the cross views; the self copy stays resident."""
        rng = _node_rng(self.seed, self.round_index, self.stage, node)
        views = self.local_views(node, state, rng)
        for neighbor, view in views.items():
            if not self.keep_view(view):
                continue
            yield neighbor, ("edge", node, view)
        yield from self.extra_output(node, state, views)

    def reduce_state(self, node, state: Optional[MMNode], values: List):
        if isinstance(node, tuple) and node and node[0] == "matched":
            # Matched-edge records emitted by cleanup maps: pass through
            # (emitted once, from the smaller endpoint).
            return None, [(node, values[0])]
        if state is None:
            # The node itself left earlier; ignore stray messages.
            return None, []
        rng = _node_rng(self.seed, self.round_index, self.stage, node)
        views = self.local_views(node, state, rng)
        theirs: Dict[str, MMEdge] = {}
        for value in values:
            theirs[value[1]] = value[2]
        capacity = self.new_capacity(state, views)
        adj: Dict[str, MMEdge] = {}
        for neighbor in sorted(views):
            view = views[neighbor]
            if not self.keep_view(view):
                continue  # this side dropped the edge -> it is dead
            their_view = theirs.get(neighbor)
            if their_view is None:
                continue  # the neighbor dropped the edge (or died)
            adj[neighbor] = self.merge(view, their_view)
        if capacity > 0 and adj:
            return MMNode(b=capacity, adj=adj), []
        return Retired(), []


class _MarkJob(_StageJob):
    """Stage 1: each node marks ``⌈b/2⌉`` incident edges."""

    stage = "mark"

    def local_views(
        self, node: str, state: MMNode, rng: random.Random
    ) -> Dict[str, MMEdge]:
        quota = (state.b + 1) // 2
        candidates = sorted(
            (nbr, e.weight) for nbr, e in state.adj.items()
        )
        chosen = set(
            choose_edges(candidates, quota, rng, self.strategy)
        )
        return {
            nbr: MMEdge(
                weight=e.weight,
                marked=frozenset({node}) if nbr in chosen else _EMPTY,
            )
            for nbr, e in state.adj.items()
        }

    def merge(self, mine: MMEdge, theirs: MMEdge) -> MMEdge:
        return MMEdge(
            weight=mine.weight,
            marked=mine.marked | theirs.marked,
            selected=_EMPTY,
        )


class _SelectJob(_StageJob):
    """Stage 2: each node selects among edges marked by its neighbors."""

    stage = "select"

    def local_views(
        self, node: str, state: MMNode, rng: random.Random
    ) -> Dict[str, MMEdge]:
        candidates = sorted(
            (nbr, e.weight)
            for nbr, e in state.adj.items()
            if nbr in e.marked
        )
        quota = max(state.b // 2, 1)
        chosen = set(
            choose_edges(candidates, quota, rng, self.strategy)
        )
        return {
            nbr: MMEdge(
                weight=e.weight,
                marked=e.marked,
                selected=frozenset({node}) if nbr in chosen else _EMPTY,
            )
            for nbr, e in state.adj.items()
        }

    def merge(self, mine: MMEdge, theirs: MMEdge) -> MMEdge:
        return MMEdge(
            weight=mine.weight,
            marked=mine.marked | theirs.marked,
            selected=mine.selected | theirs.selected,
        )


class _MatchFixJob(_StageJob):
    """Stage 3: capacity-1 nodes with two selected edges drop one."""

    stage = "matchfix"

    def local_views(
        self, node: str, state: MMNode, rng: random.Random
    ) -> Dict[str, MMEdge]:
        in_f = sorted(
            nbr for nbr, e in state.adj.items() if e.selected
        )
        demoted: set = set()
        if state.b == 1 and len(in_f) >= 2:
            keep = rng.choice(in_f)
            demoted = {nbr for nbr in in_f if nbr != keep}
        views: Dict[str, MMEdge] = {}
        for nbr, e in state.adj.items():
            selected = _EMPTY if nbr in demoted else e.selected
            views[nbr] = MMEdge(
                weight=e.weight, marked=e.marked, selected=selected
            )
        return views

    def merge(self, mine: MMEdge, theirs: MMEdge) -> MMEdge:
        # Demotion by either endpoint wins: intersect the selections.
        return MMEdge(
            weight=mine.weight,
            marked=mine.marked | theirs.marked,
            selected=mine.selected & theirs.selected,
        )


class _CleanupJob(_StageJob):
    """Stage 4: commit F to the matching, shrink budgets, drop saturated."""

    stage = "cleanup"

    def local_views(
        self, node: str, state: MMNode, rng: random.Random
    ) -> Dict[str, MMEdge]:
        matched = {nbr for nbr, e in state.adj.items() if e.selected}
        new_b = state.b - len(matched)
        views: Dict[str, MMEdge] = {}
        for nbr, e in state.adj.items():
            if nbr in matched:
                continue  # leaves the graph as part of the matching
            if new_b <= 0:
                continue  # this node is saturated: its edges die
            views[nbr] = MMEdge(weight=e.weight)
        return views

    def new_capacity(self, state: MMNode, views: Dict[str, MMEdge]) -> int:
        matched = sum(1 for e in state.adj.values() if e.selected)
        return state.b - matched

    def extra_output(
        self, node: str, state: MMNode, views: Dict[str, MMEdge]
    ) -> Iterable[KeyValue]:
        for nbr, e in state.adj.items():
            if e.selected and node < nbr:
                yield ("matched", node, nbr), e.weight

    def merge(self, mine: MMEdge, theirs: MMEdge) -> MMEdge:
        return MMEdge(weight=mine.weight)


def mr_maximal_b_matching(
    records: List[KeyValue],
    runtime: MapReduceRuntime,
    seed: int = 0,
    strategy: str = "uniform",
    round_offset: int = 0,
    max_rounds: int = 10_000,
    delta: bool = False,
) -> Tuple[Dict[EdgeKey, float], int]:
    """Run the four-stage loop to a maximal b-matching.

    Parameters
    ----------
    records:
        Initial node records from :func:`mm_records_from_adjacency`.
    round_offset:
        Distinguishes RNG streams when StackMR invokes the subroutine
        many times with the same seed.
    delta:
        ``True`` runs the stages as resident-state scan rounds (node
        records never shuffle); ``False`` (the default for direct
        callers) keeps the classic full-state formulation.  Matched
        edges, rounds, and job counts are bit-identical either way.

    Returns the matched edges and the number of (four-job) iterations.
    """
    if delta:
        return _mr_maximal_delta(
            records, runtime, seed, strategy, round_offset, max_rounds
        )
    matched: Dict[EdgeKey, float] = {}
    rounds = 0
    while records:
        if rounds >= max_rounds:
            raise RoundLimitExceeded("mr-maximal-b-matching", max_rounds)
        round_index = round_offset + rounds
        for stage_class in (_MarkJob, _SelectJob, _MatchFixJob):
            job = stage_class(seed, round_index, strategy)
            records = runtime.run(job, records)
        cleanup_output = runtime.run(
            _CleanupJob(seed, round_index, strategy), records
        )
        records = []
        for key, value in cleanup_output:
            if isinstance(key, tuple) and key[0] == "matched":
                matched[edge_key(key[1], key[2])] = value
            else:
                records.append((key, value))
        rounds += 1
    return matched, rounds


def _mr_maximal_delta(
    records: List[KeyValue],
    runtime: MapReduceRuntime,
    seed: int,
    strategy: str,
    round_offset: int,
    max_rounds: int,
) -> Tuple[Dict[EdgeKey, float], int]:
    """The four-stage loop over a resident state store (scan rounds)."""
    matched: Dict[EdgeKey, float] = {}
    rounds = 0
    store: ResidentStateStore = runtime.state_store("maximal-mm")
    store.load(records)
    try:
        while len(store):
            if rounds >= max_rounds:
                raise RoundLimitExceeded(
                    "mr-maximal-b-matching", max_rounds
                )
            round_index = round_offset + rounds
            for stage_class in (_MarkJob, _SelectJob, _MatchFixJob):
                job = stage_class(seed, round_index, strategy)
                runtime.run_stateful(job, store, scan=True)
            output, _ = runtime.run_stateful(
                _CleanupJob(seed, round_index, strategy),
                store,
                scan=True,
            )
            for key, value in output:
                matched[edge_key(key[1], key[2])] = value
            rounds += 1
    finally:
        store.close()
    return matched, rounds
