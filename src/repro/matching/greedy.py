"""The sequential greedy ½-approximation for weighted b-matching (§5.4).

Process edges by decreasing weight; take an edge whenever both endpoints
still have residual capacity.  Theorem 2 of the paper proves the
½-approximation guarantee; Appendix A's triangle instance (available as
:func:`repro.graph.generators.greedy_tightness_triangle`) shows it tight.

Ties are broken by the normalized edge key, giving a *strict* total order
on edges — the same order GreedyMR's per-node proposal lists use, so the
parallel algorithm simulates this sequential one (tested property).
"""

from __future__ import annotations

from typing import Dict

from ..graph.bipartite import Graph
from ..graph.edges import edge_sort_key
from .types import Matching, MatchingResult

__all__ = ["greedy_b_matching"]


def greedy_b_matching(graph: Graph) -> MatchingResult:
    """Run the centralized greedy algorithm on ``graph``.

    Returns a feasible matching with value at least half the optimum.
    Runs in ``O(|E| log |E|)`` time; ``rounds`` is reported as 1 since
    the algorithm is a single sequential sweep.
    """
    residual: Dict[str, int] = graph.capacities()
    matching = Matching()
    ordered = sorted(
        graph.edges(), key=lambda e: edge_sort_key(e.key, e.weight)
    )
    for edge in ordered:
        if residual[edge.u] > 0 and residual[edge.v] > 0:
            matching.add(edge.u, edge.v, edge.weight)
            residual[edge.u] -= 1
            residual[edge.v] -= 1
    return MatchingResult(
        matching=matching,
        algorithm="Greedy",
        rounds=1,
        value_history=[matching.value],
    )
