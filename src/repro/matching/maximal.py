"""Maximal b-matching via the randomized algorithm of Garrido et al.

This is the inner engine of StackMR (§5.3): each push round stacks a
*maximal* (not maximum) b-matching computed by iterating four stages —

1. **marking**: each node ``v`` marks ``⌈b(v)/2⌉`` incident edges;
2. **selection**: each node ``v`` selects ``max{⌊b(v)/2⌋, 1}`` edges
   *marked by its neighbors*;
3. **matching**: a node with ``b(v) = 1`` and two selected incident edges
   randomly drops one (the only case where stages 1–2 can oversubscribe);
4. **cleanup**: selected edges join the matching, capacities decrease,
   and saturated nodes leave the graph with their edges.

Garrido et al. prove expected ``O(log³ n)`` rounds.  The *marking
strategy* is the knob behind the paper's StackGreedyMR variant (§6):

* ``"uniform"`` — uniform random marks/selections (StackMR);
* ``"greedy"`` — prefer the heaviest edges (StackGreedyMR);
* ``"weighted"`` — random with probability proportional to weight (the
  third variant the paper mentions and dismisses).

This module is the *centralized* implementation, shared by the
centralized stack algorithm and used as the reference for the MapReduce
implementation in :mod:`repro.matching.maximal_mr`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph.bipartite import Graph
from ..graph.edges import EdgeKey, edge_key
from ..mapreduce.errors import RoundLimitExceeded

__all__ = [
    "MARKING_STRATEGIES",
    "choose_edges",
    "maximal_b_matching_adjacency",
    "maximal_b_matching",
    "is_maximal",
]

MARKING_STRATEGIES = ("uniform", "greedy", "weighted")

Adjacency = Dict[str, Dict[str, float]]


def choose_edges(
    candidates: List[Tuple[str, float]],
    count: int,
    rng: random.Random,
    strategy: str,
) -> List[str]:
    """Choose up to ``count`` neighbors from ``(neighbor, weight)`` pairs.

    ``candidates`` must be pre-sorted deterministically by the caller
    (the helpers here sort by neighbor id) so that a seeded RNG yields
    reproducible draws.
    """
    if strategy not in MARKING_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of "
            f"{MARKING_STRATEGIES}"
        )
    if count >= len(candidates):
        return [neighbor for neighbor, _ in candidates]
    if strategy == "greedy":
        heaviest = sorted(candidates, key=lambda nw: (-nw[1], nw[0]))
        return [neighbor for neighbor, _ in heaviest[:count]]
    if strategy == "uniform":
        return rng.sample([neighbor for neighbor, _ in candidates], count)
    # strategy == "weighted": sequential weighted sampling w/o replacement
    pool = list(candidates)
    chosen: List[str] = []
    for _ in range(count):
        total = sum(weight for _, weight in pool)
        if total <= 0:
            chosen.extend(n for n, _ in pool[: count - len(chosen)])
            break
        pick = rng.random() * total
        cumulative = 0.0
        for index, (neighbor, weight) in enumerate(pool):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(neighbor)
                pool.pop(index)
                break
        else:  # floating-point tail: take the last candidate
            chosen.append(pool.pop()[0])
    return chosen


def maximal_b_matching_adjacency(
    adjacency: Adjacency,
    capacities: Dict[str, int],
    rng: Optional[random.Random] = None,
    strategy: str = "uniform",
    max_rounds: int = 10_000,
) -> Dict[EdgeKey, float]:
    """Compute a maximal b-matching of an adjacency-dict graph.

    The inputs are not mutated.  Nodes with capacity ``<= 0`` are treated
    as saturated from the start (their edges can never be matched).
    Returns matched edges as ``edge_key -> weight``.
    """
    rng = rng or random.Random(0)
    # Working copies; drop edges at saturated nodes immediately.
    caps = {node: int(b) for node, b in capacities.items()}
    adj: Adjacency = {}
    for node, neighbors in adjacency.items():
        if caps.get(node, 0) <= 0:
            continue
        kept = {
            nbr: w for nbr, w in neighbors.items() if caps.get(nbr, 0) > 0
        }
        if kept:
            adj[node] = kept

    matched: Dict[EdgeKey, float] = {}
    for _ in range(max_rounds):
        if not any(adj.values()):
            return matched
        marked = _marking_stage(adj, caps, rng, strategy)
        selected = _selection_stage(adj, caps, marked, rng, strategy)
        fixed = _matching_stage(adj, caps, selected, rng)
        _cleanup_stage(adj, caps, fixed, matched)
    raise RoundLimitExceeded("maximal-b-matching", max_rounds)


def _marking_stage(
    adj: Adjacency,
    caps: Dict[str, int],
    rng: random.Random,
    strategy: str,
) -> Dict[EdgeKey, Set[str]]:
    """Stage 1: each node marks ``⌈b(v)/2⌉`` incident edges."""
    marked: Dict[EdgeKey, Set[str]] = {}
    for node in sorted(adj):
        neighbors = adj[node]
        if not neighbors:
            continue
        quota = (caps[node] + 1) // 2  # ceil(b/2)
        candidates = sorted(neighbors.items())
        for neighbor in choose_edges(candidates, quota, rng, strategy):
            marked.setdefault(edge_key(node, neighbor), set()).add(node)
    return marked


def _selection_stage(
    adj: Adjacency,
    caps: Dict[str, int],
    marked: Dict[EdgeKey, Set[str]],
    rng: random.Random,
    strategy: str,
) -> Dict[EdgeKey, Set[str]]:
    """Stage 2: each node selects among edges marked by its neighbors."""
    selected: Dict[EdgeKey, Set[str]] = {}
    for node in sorted(adj):
        neighbors = adj[node]
        candidates = sorted(
            (nbr, w)
            for nbr, w in neighbors.items()
            if nbr in marked.get(edge_key(node, nbr), ())
        )
        if not candidates:
            continue
        quota = max(caps[node] // 2, 1)
        for neighbor in choose_edges(candidates, quota, rng, strategy):
            selected.setdefault(edge_key(node, neighbor), set()).add(node)
    return selected


def _matching_stage(
    adj: Adjacency,
    caps: Dict[str, int],
    selected: Dict[EdgeKey, Set[str]],
    rng: random.Random,
) -> Set[EdgeKey]:
    """Stage 3: capacity-1 nodes with two selected edges drop one.

    Decisions are taken simultaneously from the pre-stage selected set,
    mirroring the distributed algorithm; an edge survives only if no
    endpoint dropped it.
    """
    incident: Dict[str, List[EdgeKey]] = {}
    for key in selected:
        for endpoint in key:
            incident.setdefault(endpoint, []).append(key)
    dropped: Set[EdgeKey] = set()
    for node in sorted(incident):
        keys = incident[node]
        if caps[node] == 1 and len(keys) >= 2:
            keep = rng.choice(sorted(keys))
            dropped.update(key for key in keys if key != keep)
    return set(selected) - dropped


def _cleanup_stage(
    adj: Adjacency,
    caps: Dict[str, int],
    fixed: Set[EdgeKey],
    matched: Dict[EdgeKey, float],
) -> None:
    """Stage 4: commit matched edges, update capacities, drop saturated."""
    for u, v in fixed:
        weight = adj[u][v]
        matched[(u, v)] = weight
        del adj[u][v]
        del adj[v][u]
        caps[u] -= 1
        caps[v] -= 1
    saturated = [node for node in adj if caps[node] <= 0]
    for node in saturated:
        for neighbor in list(adj[node]):
            del adj[neighbor][node]
        adj[node] = {}


def maximal_b_matching(
    graph: Graph,
    rng: Optional[random.Random] = None,
    strategy: str = "uniform",
    capacities: Optional[Dict[str, int]] = None,
    max_rounds: int = 10_000,
) -> Dict[EdgeKey, float]:
    """Graph-level convenience wrapper for the adjacency version.

    ``capacities`` overrides the graph's own budgets — StackMR uses this
    to compute layers under the reduced ``⌈ε·b(v)⌉`` capacities.
    """
    adjacency = graph.adjacency_copy()
    caps = capacities if capacities is not None else graph.capacities()
    return maximal_b_matching_adjacency(
        adjacency, caps, rng=rng, strategy=strategy, max_rounds=max_rounds
    )


def is_maximal(
    adjacency: Adjacency,
    capacities: Dict[str, int],
    matched: Iterable[EdgeKey],
) -> bool:
    """Check maximality: no remaining edge could be added to ``matched``.

    Used as a test invariant: a b-matching ``M`` is maximal iff every
    non-matched edge has at least one endpoint whose matched degree
    already equals its capacity.
    """
    matched = set(matched)
    residual = {node: capacities.get(node, 0) for node in adjacency}
    for u, v in matched:
        residual[u] -= 1
        residual[v] -= 1
    if any(r < 0 for r in residual.values()):
        return False  # not even feasible
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            key = edge_key(node, neighbor)
            if key in matched:
                continue
            if residual[node] > 0 and residual[neighbor] > 0:
                return False
    return True
