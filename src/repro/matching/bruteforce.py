"""Brute-force optimal b-matching for tiny graphs (test oracle).

Enumerates subsets of edges by depth-first search with residual-capacity
pruning and a simple optimistic bound.  Exponential — intended for
graphs with at most ~20 edges, where it serves as the ground truth for
property-based tests of every other solver (including the flow and LP
exact backends, and on *general* graphs where the LP is not integral).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.bipartite import Graph
from .types import Matching, MatchingResult

__all__ = ["bruteforce_b_matching"]

_MAX_EDGES = 26


def bruteforce_b_matching(graph: Graph) -> MatchingResult:
    """Return a maximum-weight b-matching by exhaustive search."""
    edges: List[Tuple[str, str, float]] = [
        (e.u, e.v, e.weight) for e in graph.edges()
    ]
    if len(edges) > _MAX_EDGES:
        raise ValueError(
            f"brute force limited to {_MAX_EDGES} edges, got {len(edges)}"
        )
    edges.sort(key=lambda row: -row[2])  # heavy first: better pruning
    suffix_weight = [0.0] * (len(edges) + 1)
    for i in range(len(edges) - 1, -1, -1):
        suffix_weight[i] = suffix_weight[i + 1] + edges[i][2]

    residual: Dict[str, int] = graph.capacities()
    best_value = 0.0
    best_choice: List[int] = []
    choice: List[int] = []

    def search(index: int, value: float) -> None:
        nonlocal best_value, best_choice
        if value > best_value:
            best_value = value
            best_choice = list(choice)
        if index == len(edges):
            return
        if value + suffix_weight[index] <= best_value:
            return  # optimistic bound cannot beat the incumbent
        u, v, w = edges[index]
        if residual[u] > 0 and residual[v] > 0:
            residual[u] -= 1
            residual[v] -= 1
            choice.append(index)
            search(index + 1, value + w)
            choice.pop()
            residual[u] += 1
            residual[v] += 1
        search(index + 1, value)

    search(0, 0.0)
    matching = Matching()
    for index in best_choice:
        u, v, w = edges[index]
        matching.add(u, v, w)
    return MatchingResult(
        matching=matching,
        algorithm="BruteForce",
        rounds=1,
        value_history=[matching.value],
    )
